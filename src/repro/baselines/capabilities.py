"""Table 5: qualitative comparison of the six systems.

The paper's Table 5 marks, per query type, whether each system can
handle the benchmark queries ("X", partial "(X)"/"(NO)", or "NO").  We
reproduce the table *behaviourally*: every baseline runs the thirteen
workload queries, every produced statement is evaluated against the
gold standard, and the marks are derived from the outcomes:

* ``X``    — all queries of that type answered with positive P and R,
* ``(X)``  — some (not all) answered correctly,
* ``(NO)`` — statements produced but none correct,
* ``NO``   — the system refuses or produces nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.banks import Banks
from repro.baselines.base import BaselineAnswer, KeywordSearchSystem
from repro.baselines.dbexplorer import DBExplorer
from repro.baselines.discover import Discover
from repro.baselines.keymantic import Keymantic
from repro.baselines.sqak import Sqak
from repro.core.evaluation import PrecisionRecall, evaluate_sql
from repro.errors import ReproError
from repro.experiments.reporting import format_rows
from repro.experiments.workload import WORKLOAD, ExperimentQuery
from repro.warehouse.warehouse import Warehouse

#: The query-type rows of Table 5, in paper order.
QUERY_TYPE_ROWS = (
    ("Base data", "B"),
    ("Schema", "S"),
    ("Inheritance", "I"),
    ("Domain ontology", "D"),
    ("Predicates", "P"),
    ("Aggregates", "A"),
)

#: The paper's published marks (for side-by-side reporting).
PAPER_TABLE5 = {
    ("B", "DBExplorer"): "(X)",
    ("B", "DISCOVER"): "(X)",
    ("B", "BANKS"): "X",
    ("B", "SQAK"): "NO",
    ("B", "Keymantic"): "(NO)",
    ("B", "SODA"): "X",
    ("S", "DBExplorer"): "NO",
    ("S", "DISCOVER"): "NO",
    ("S", "BANKS"): "X",
    ("S", "SQAK"): "NO",
    ("S", "Keymantic"): "X",
    ("S", "SODA"): "X",
    ("I", "DBExplorer"): "NO",
    ("I", "DISCOVER"): "NO",
    ("I", "BANKS"): "NO",
    ("I", "SQAK"): "NO",
    ("I", "Keymantic"): "NO",
    ("I", "SODA"): "X",
    ("D", "DBExplorer"): "NO",
    ("D", "DISCOVER"): "NO",
    ("D", "BANKS"): "NO",
    ("D", "SQAK"): "NO",
    ("D", "Keymantic"): "(X)",
    ("D", "SODA"): "X",
    ("P", "DBExplorer"): "NO",
    ("P", "DISCOVER"): "NO",
    ("P", "BANKS"): "NO",
    ("P", "SQAK"): "NO",
    ("P", "Keymantic"): "NO",
    ("P", "SODA"): "X",
    ("A", "DBExplorer"): "NO",
    ("A", "DISCOVER"): "NO",
    ("A", "BANKS"): "NO",
    ("A", "SQAK"): "X",
    ("A", "Keymantic"): "NO",
    ("A", "SODA"): "X",
}


@dataclass
class QueryEvaluation:
    """One system's behaviour on one workload query."""

    qid: str
    answered: bool
    best: PrecisionRecall | None
    caveat: str | None
    note: str

    @property
    def correct(self) -> bool:
        return self.best is not None and self.best.is_positive


@dataclass
class SystemEvaluation:
    """One system's behaviour across the workload."""

    system: str
    per_query: dict = field(default_factory=dict)

    def mark(self, type_tag: str, workload=WORKLOAD) -> str:
        tagged = [q for q in workload if q.uses(type_tag)]
        if not tagged:
            return "-"
        evaluations = [self.per_query[q.qid] for q in tagged]
        correct = sum(1 for e in evaluations if e.correct)
        answered = sum(1 for e in evaluations if e.answered)
        if correct == len(tagged):
            return "X"
        if correct > 0:
            return "(X)"
        if answered > 0:
            return "(NO)"
        return "NO"


def default_systems(warehouse: Warehouse) -> list:
    """Instantiate all five baselines against one warehouse."""
    database = warehouse.database
    inverted = warehouse.inverted
    synonyms = synonym_dictionary(warehouse)
    return [
        DBExplorer(database, inverted),
        Discover(database, inverted),
        Banks(database, inverted),
        Sqak(database, inverted),
        Keymantic(database, inverted, synonyms=synonyms),
    ]


def synonym_dictionary(warehouse: Warehouse) -> dict:
    """External lexical resource for Keymantic: term -> schema-ish term.

    Derived from the warehouse's DBpedia entries and ontology term names
    (Keymantic could consult WordNet/DBpedia; it could not consult
    SODA's metadata *graph*).
    """
    synonyms: dict = {}
    for ontology in warehouse.definition.ontologies:
        for term in ontology.terms:
            for target in term.classifies:
                __, name = target.split(":", 1)
                synonyms.setdefault(term.term, name.replace(".", " "))
    for entry in warehouse.definition.dbpedia:
        for target in entry.synonym_of:
            __, name = target.split(":", 1)
            synonyms.setdefault(entry.term, name.replace(".", " "))
    return synonyms


def evaluate_system(
    system: KeywordSearchSystem,
    warehouse: Warehouse,
    workload=WORKLOAD,
    max_rows: int = 500_000,
) -> SystemEvaluation:
    """Run one system over the workload and score every statement."""
    evaluation = SystemEvaluation(system=system.name)
    for query in workload:
        answer = system.answer(query.text)
        best: PrecisionRecall | None = None
        for sql in answer.sqls[:8]:
            try:
                metrics = evaluate_sql(
                    warehouse.database, sql, query.gold, max_rows=max_rows
                )
            except ReproError:
                continue
            if best is None or (metrics.precision, metrics.recall) > (
                best.precision, best.recall
            ):
                best = metrics
        evaluation.per_query[query.qid] = QueryEvaluation(
            qid=query.qid,
            answered=answer.answered,
            best=best,
            caveat=answer.caveat,
            note=answer.note,
        )
    return evaluation


def soda_evaluation(outcomes) -> SystemEvaluation:
    """Wrap SODA's experiment outcomes in the same evaluation shape."""
    evaluation = SystemEvaluation(system="SODA")
    for outcome in outcomes:
        best = outcome.best if outcome.statements else None
        evaluation.per_query[outcome.query.qid] = QueryEvaluation(
            qid=outcome.query.qid,
            answered=outcome.n_results > 0,
            best=best,
            caveat=None,
            note="",
        )
    return evaluation


def capability_matrix(evaluations: list, workload=WORKLOAD) -> dict:
    """(type_tag, system) -> measured mark."""
    matrix: dict = {}
    for evaluation in evaluations:
        for __, tag in QUERY_TYPE_ROWS:
            matrix[(tag, evaluation.system)] = evaluation.mark(tag, workload)
    return matrix


def format_table5(matrix: dict, systems: list) -> str:
    """Render measured marks with the paper's marks in parentheses."""
    headers = ["Query type"] + [s for s in systems]
    rows = []
    for label, tag in QUERY_TYPE_ROWS:
        row = [label]
        for system in systems:
            measured = matrix.get((tag, system), "-")
            paper = PAPER_TABLE5.get((tag, system), "-")
            row.append(f"{measured} [paper {paper}]")
        rows.append(row)
    return format_rows(headers, rows)
