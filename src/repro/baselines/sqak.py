"""SQAK (Tata, Lohman — SIGMOD 2008), simplified.

SQAK ("SQL Aggregates using Keywords") targets **aggregate** keyword
queries: the query must contain an aggregate keyword (sum, count, avg,
min, max); the remaining terms are matched against schema element names
(tables and columns); a SELECT-PROJECT-JOIN-GROUP-BY statement is
assembled over the shortest key/foreign-key join tree, respecting the
direction of the relationships.

Reproduced limitations (Table 5): *only* the pre-defined
SPJ-with-aggregate pattern is supported — "simple SELECT queries just do
not match SQAK's predefined pattern" — and there is no flexible metadata
integration (no ontology, no inheritance, no general predicates).
"""

from __future__ import annotations

import re

from repro.baselines.base import BaselineAnswer, KeywordSearchSystem, build_sql
from repro.index.inverted import tokenize_text

_AGG_RE = re.compile(r"\b(sum|count|avg|min|max)\b\s*(?:\(([^)]*)\))?",
                     re.IGNORECASE)
_GROUP_RE = re.compile(r"\bgroup\s+by\b\s*(?:\(([^)]*)\))?", re.IGNORECASE)


class Sqak(KeywordSearchSystem):
    name = "SQAK"
    features = {
        "base_data": False,
        "schema": False,  # schema terms only inside the aggregate pattern
        "inheritance": False,
        "domain_ontology": False,
        "predicates": False,
        "aggregates": True,
    }

    def answer(self, text: str) -> BaselineAnswer:
        answer = BaselineAnswer(system=self.name, query_text=text)
        agg_match = _AGG_RE.search(text)
        if agg_match is None:
            answer.supported = False
            answer.note = (
                "no aggregate keyword: the query does not match SQAK's "
                "predefined SPJ-with-aggregate pattern"
            )
            return answer

        func = agg_match.group(1).lower()
        argument = (agg_match.group(2) or "").strip().lower()
        group_match = _GROUP_RE.search(text)
        group_term = (group_match.group(1) or "").strip().lower() if group_match \
            else ""

        remaining = _AGG_RE.sub(" ", text)
        remaining = _GROUP_RE.sub(" ", remaining)
        remaining_terms = [
            term for term in tokenize_text(remaining) if term != "select"
        ]

        tables: set = set()
        agg_column = self._match_schema_column(argument) if argument else None
        if argument and agg_column is None:
            entity = self._match_schema_table(argument)
            if entity is not None:
                if func == "count":
                    # count(transactions): count the entity's key column
                    agg_column = (entity, self._key_column(entity))
                else:
                    # sum(investments): aggregate the entity's measure column
                    measure = self._measure_column(entity)
                    if measure is not None:
                        agg_column = (entity, measure)
        if agg_column is not None:
            tables.add(agg_column[0])
        elif argument:
            answer.supported = False
            answer.note = f"aggregation term {argument!r} matches no schema element"
            return answer

        group_column = None
        if group_term:
            group_column = self._match_schema_column(group_term)
            if group_column is None:
                answer.supported = False
                answer.note = f"group-by term {group_term!r} matches no column"
                return answer
            tables.add(group_column[0])

        for term in remaining_terms:
            table = self._match_schema_table(term)
            if table is not None:
                tables.add(table)

        if not tables:
            answer.supported = False
            answer.note = "no schema element matched the query terms"
            return answer

        joins = self.join_tree(sorted(tables))
        if joins is None:
            answer.note = "no join tree connects the matched schema elements"
            return answer
        involved = set(tables)
        for t1, __, t2, __ in joins:
            involved.add(t1)
            involved.add(t2)

        if agg_column is not None:
            aggregate = f"{func}({agg_column[0]}.{agg_column[1]})"
        else:
            aggregate = f"{func}(*)"
        group_sql = (
            f"{group_column[0]}.{group_column[1]}" if group_column else None
        )
        answer.sqls.append(
            build_sql(
                sorted(involved), joins, [],
                aggregate=aggregate, group_by=group_sql,
            )
        )
        return answer

    # ------------------------------------------------------------------
    def _match_schema_table(self, term: str) -> str | None:
        """Match a term against table names (plural/suffix tolerant).

        Physical names carry technical suffixes (``_td``, ``_hist``) that
        SQAK's name matcher ignores, and plural/singular forms unify.
        """
        wanted = _name_tokens(term)
        if not wanted:
            return None
        for name in self.database.table_names():
            if _name_tokens(name) == wanted:
                return name
        return None

    def _match_schema_column(self, term: str) -> "tuple | None":
        """Exact column-name match, tolerating a ``_cd``/``_nm`` suffix."""
        wanted = "_".join(tokenize_text(term))
        candidates = (wanted, f"{wanted}_cd", f"{wanted}_nm", f"{wanted}_dt")
        for name in self.database.table_names():
            table = self.database.catalog.table(name)
            for column in table.columns:
                if column.name in candidates:
                    return (name, column.name)
        return None

    def _key_column(self, table_name: str) -> str:
        table = self.database.catalog.table(table_name)
        keys = table.primary_key_columns()
        return keys[0] if keys else table.columns[0].name

    def _measure_column(self, table_name: str) -> str | None:
        """The first numeric non-key column (SQAK's aggregation target)."""
        from repro.sqlengine.types import SqlType

        table = self.database.catalog.table(table_name)
        for column in table.columns:
            if column.primary_key:
                continue
            if column.sql_type in (SqlType.REAL, SqlType.INTEGER):
                if column.name.endswith("_id"):
                    continue
                return column.name
        return None


_TECH_SUFFIXES = {"td", "hist", "cd", "nm", "dt"}


def _name_tokens(name: str) -> tuple:
    """Singularised tokens of a schema name, technical suffixes dropped."""
    tokens = [
        token.rstrip("s") if len(token) > 2 else token
        for token in tokenize_text(name)
        if token not in _TECH_SUFFIXES
    ]
    return tuple(tokens)
