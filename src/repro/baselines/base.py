"""Common interface for the related keyword-search systems of Table 5.

Each baseline is a (simplified but algorithmically faithful) Python
reimplementation of the published system.  They all consume the same
inputs a real deployment would have had: the physical catalog with its
foreign keys, and — where the original system used one — an inverted
index over the base data.  None of them sees SODA's metadata graph;
that is precisely the comparison the paper's Table 5 makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx

from repro.index.inverted import InvertedIndex, tokenize_text
from repro.sqlengine.database import Database


@dataclass
class BaselineAnswer:
    """What one baseline produced for one query."""

    system: str
    query_text: str
    sqls: list = field(default_factory=list)
    supported: bool = True
    caveat: str | None = None  # partial support, e.g. cycles in the schema
    note: str = ""

    @property
    def answered(self) -> bool:
        return self.supported and bool(self.sqls)


class KeywordSearchSystem:
    """Base class: holds the database handle and shared helpers."""

    name = "abstract"
    #: static feature claims, used as documentation and checked by tests
    features: dict = {}

    def __init__(self, database: Database, inverted: InvertedIndex | None = None):
        self.database = database
        self.inverted = inverted or InvertedIndex.build(database.catalog)

    # ------------------------------------------------------------------
    def answer(self, text: str) -> BaselineAnswer:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def fk_graph(self) -> "nx.MultiGraph":
        """The schema graph: tables as nodes, FK constraints as edges."""
        graph = nx.MultiGraph()
        for name in self.database.table_names():
            graph.add_node(name)
        for from_table, to_table, fk in self.database.catalog.foreign_key_edges():
            graph.add_edge(
                from_table,
                to_table,
                key=f"{from_table}.{fk.columns[0]}",
                fk=(from_table, fk.columns[0], to_table, fk.ref_columns[0]),
            )
        return graph

    def schema_has_cycle(self, tables: Sequence[str]) -> bool:
        """True if the schema subgraph spanning *tables* contains a cycle.

        Parallel FK edges between two tables (transactions has two
        foreign keys to parties) count as a cycle — the situation that
        breaks DBExplorer's and DISCOVER's candidate-network generation.
        """
        graph = self.fk_graph()
        try:
            subgraph = graph.subgraph(tables)
            return bool(nx.cycle_basis(nx.Graph(subgraph))) or any(
                subgraph.number_of_edges(u, v) > 1
                for u in subgraph
                for v in subgraph
                if u < v
            )
        except nx.NetworkXError:  # pragma: no cover - defensive
            return False

    def join_tree(self, tables: Sequence[str]) -> "list | None":
        """Connect *tables* with FK joins (shortest paths, SODA-free).

        Returns a list of (t1, c1, t2, c2) join conditions, or None if
        some pair cannot be connected.
        """
        wanted = sorted(set(tables))
        if len(wanted) <= 1:
            return []
        graph = self.fk_graph()
        joins: list = []
        seen_pairs: set = set()
        used_tables = set(wanted)
        for i, source in enumerate(wanted):
            for target in wanted[i + 1:]:
                try:
                    path = nx.shortest_path(graph, source, target)
                except (nx.NetworkXNoPath, nx.NodeNotFound):
                    return None
                for u, v in zip(path, path[1:]):
                    pair = (min(u, v), max(u, v))
                    if pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                    used_tables.add(u)
                    used_tables.add(v)
                    edge_data = graph.get_edge_data(u, v)
                    first_key = sorted(edge_data)[0]
                    joins.append(edge_data[first_key]["fk"])
        return joins

    def keyword_hits(self, term: str) -> list:
        """Base-data hits of a term, one per (table, column)."""
        seen: set = set()
        hits: list = []
        for posting in self.inverted.lookup_phrase(term):
            key = (posting.table, posting.column)
            if key not in seen:
                seen.add(key)
                hits.append(key)
        return hits

    def segment(self, text: str) -> list:
        """Greedy longest-match segmentation against the base data."""
        words = tokenize_text(text)
        segments: list = []
        position = 0
        while position < len(words):
            matched = False
            for size in range(min(3, len(words) - position), 0, -1):
                phrase = " ".join(words[position:position + size])
                if self.inverted.lookup_phrase(phrase):
                    segments.append(phrase)
                    position += size
                    matched = True
                    break
            if not matched:
                segments.append(words[position])
                position += 1
        return segments


def build_sql(
    tables: Sequence[str],
    joins: Sequence[tuple],
    filters: Sequence[tuple],
    select: str = "*",
    group_by: str | None = None,
    aggregate: str | None = None,
) -> str:
    """Render a simple SPJ(+GROUP BY) statement."""
    parts = ["SELECT"]
    if aggregate is not None:
        select_list = aggregate
        if group_by is not None:
            select_list += f", {group_by}"
        parts.append(select_list)
    else:
        parts.append(select)
    parts.append("FROM " + ", ".join(sorted(set(tables))))
    conditions = [
        f"{t1}.{c1} = {t2}.{c2}" for t1, c1, t2, c2 in joins
    ]
    conditions.extend(
        f"{table}.{column} LIKE '%{value}%'" for table, column, value in filters
    )
    if conditions:
        parts.append("WHERE " + " AND ".join(conditions))
    if group_by is not None:
        parts.append(f"GROUP BY {group_by}")
    return " ".join(parts)
