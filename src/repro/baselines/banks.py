"""BANKS (Bhalotia et al. — ICDE 2002), simplified.

BANKS models the database as a **data graph**: one node per tuple, one
edge per foreign-key reference between tuples.  A keyword query selects
the node sets containing each keyword (keywords may also match table
names — BANKS handles schema terms, unlike DBExplorer/DISCOVER), and a
*backward expanding search* grows shortest-path trees from each node set
until a connection tree covering all keywords is found.  Results are at
the granularity of individual tuple trees.

Because BANKS returns tuple trees rather than SQL, `answer` renders each
group of connection trees rooted in the same table combination as one
SQL statement over that combination — the closest SQL-shaped equivalent
that preserves the tuple granularity for evaluation.

Reproduced limitations (Table 5): no inheritance semantics, no domain
ontology, no predicates, no aggregates.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

import networkx as nx

from repro.baselines.base import BaselineAnswer, KeywordSearchSystem, build_sql
from repro.index.inverted import tokenize_text


class Banks(KeywordSearchSystem):
    name = "BANKS"
    features = {
        "base_data": True,
        "schema": True,
        "inheritance": False,
        "domain_ontology": False,
        "predicates": False,
        "aggregates": False,
    }

    max_answers = 10

    # ------------------------------------------------------------------
    def answer(self, text: str) -> BaselineAnswer:
        answer = BaselineAnswer(system=self.name, query_text=text)
        if any(symbol in text for symbol in ("(", ">", "<", "=")):
            answer.supported = False
            answer.note = "operators and aggregates are outside the model"
            return answer

        graph = self._data_graph()
        segments = self.segment(text)
        keyword_nodes: list = []
        for segment in segments:
            nodes = self._nodes_for_keyword(graph, segment)
            if not nodes:
                answer.supported = False
                answer.note = f"no tuple or table matches keyword {segment!r}"
                return answer
            keyword_nodes.append(nodes)

        trees = self._backward_search(graph, keyword_nodes)
        if not trees:
            answer.note = "no connection tree found"
            return answer

        # group connection trees by the set of tables they span and emit
        # one statement per table combination
        by_tables: dict = defaultdict(list)
        for tree_nodes in trees:
            tables = tuple(sorted({node[0] for node in tree_nodes}))
            by_tables[tables].append(tree_nodes)
        for tables in sorted(by_tables):
            joins = self.join_tree(list(tables))
            if joins is None:
                continue
            involved = set(tables)
            for t1, __, t2, __ in joins:
                involved.add(t1)
                involved.add(t2)
            filters = []
            for segment in segments:
                hits = [
                    (table, column)
                    for table, column in self.keyword_hits(segment)
                    if table in tables
                ]
                if hits:
                    table, column = hits[0]
                    filters.append((table, column, segment))
            answer.sqls.append(build_sql(sorted(involved), joins, filters))
        if not answer.sqls:
            answer.note = "connection trees could not be rendered as SQL"
        return answer

    # ------------------------------------------------------------------
    def _data_graph(self) -> "nx.Graph":
        """Tuple-level graph: nodes (table, pk-ish id), edges FK references."""
        graph = nx.Graph()
        catalog = self.database.catalog
        # index rows by (table, key value) for FK targets
        row_index: dict = {}
        for table in catalog.tables():
            keys = table.primary_key_columns()
            key_col = keys[0] if keys else table.columns[0].name
            key_position = table.column_index(key_col)
            for row_number, row in enumerate(table.rows):
                node = (table.name, row_number)
                graph.add_node(node)
                row_index[(table.name, row[key_position])] = node
        for table in catalog.tables():
            for fk in table.foreign_keys:
                local_position = table.column_index(fk.columns[0])
                for row_number, row in enumerate(table.rows):
                    target = row_index.get((fk.ref_table, row[local_position]))
                    if target is not None:
                        graph.add_edge((table.name, row_number), target)
        return graph

    def _nodes_for_keyword(self, graph: "nx.Graph", segment: str) -> list:
        """Tuple nodes containing the keyword, plus whole-table matches."""
        nodes: list = []
        catalog = self.database.catalog
        for table, column in self.keyword_hits(segment):
            table_object = catalog.table(table)
            position = table_object.column_index(column)
            needle = " " + segment + " "
            for row_number, row in enumerate(table_object.rows):
                value = row[position]
                if value is None:
                    continue
                haystack = " " + " ".join(tokenize_text(str(value))) + " "
                if needle in haystack:
                    nodes.append((table, row_number))
        # metadata nodes: keywords matching a table name select all tuples
        normalized = segment.replace(" ", "_")
        for table_name in self.database.table_names():
            stripped = table_name.rstrip("s")
            if normalized in (table_name, stripped):
                table_object = catalog.table(table_name)
                nodes.extend(
                    (table_name, row_number)
                    for row_number in range(min(len(table_object.rows), 200))
                )
        return nodes

    def _backward_search(self, graph: "nx.Graph", keyword_nodes: list) -> list:
        """Backward expanding search; returns connection-tree node sets."""
        if len(keyword_nodes) == 1:
            return [[node] for node in keyword_nodes[0][: self.max_answers]]

        # multi-source BFS from each keyword set, recording origins
        distances: list = []
        parents: list = []
        for nodes in keyword_nodes:
            dist: dict = {}
            parent: dict = {}
            frontier = list(dict.fromkeys(nodes))
            for node in frontier:
                dist[node] = 0
                parent[node] = None
            depth = 0
            while frontier and depth < 6:
                depth += 1
                next_frontier = []
                for node in frontier:
                    if node not in graph:
                        continue
                    for neighbour in graph.neighbors(node):
                        if neighbour not in dist:
                            dist[neighbour] = depth
                            parent[neighbour] = node
                            next_frontier.append(neighbour)
                frontier = next_frontier
            distances.append(dist)
            parents.append(parent)

        # candidate roots reachable from every keyword set
        candidates = []
        common = set(distances[0])
        for dist in distances[1:]:
            common &= set(dist)
        for node in common:
            cost = sum(dist[node] for dist in distances)
            candidates.append((cost, node))
        candidates.sort(key=lambda item: (item[0], str(item[1])))

        trees = []
        for __, root in candidates[: self.max_answers]:
            tree_nodes = set()
            for parent in parents:
                node = root
                while node is not None:
                    tree_nodes.add(node)
                    node = parent.get(node)
            trees.append(sorted(tree_nodes))
        return trees
