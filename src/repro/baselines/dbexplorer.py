"""DBExplorer (Agrawal, Chaudhuri, Das — ICDE 2002), simplified.

DBExplorer builds a *symbol table* over the base data and answers a
keyword query by (1) looking every keyword up in the symbol table,
(2) enumerating combinations of per-keyword table assignments and
(3) connecting each combination with key/foreign-key join trees.
Results are at the granularity of *sets of business objects* (SQL
statements), which is what we emit.

Limitations reproduced from the paper's Table 5 discussion:

* keywords that only exist in the schema (not the base data) cannot be
  matched — there is no metadata lookup;
* no inheritance, ontology, predicate or aggregate support;
* cyclic schema subgraphs break candidate generation ("DBExplorer as
  well as DISCOVER cannot handle even simple queries if the schema
  involves cycles") — we flag such answers with a caveat.
"""

from __future__ import annotations

import itertools

from repro.baselines.base import BaselineAnswer, KeywordSearchSystem, build_sql


class DBExplorer(KeywordSearchSystem):
    name = "DBExplorer"
    features = {
        "base_data": "partial",  # (X): breaks on cycles
        "schema": False,
        "inheritance": False,
        "domain_ontology": False,
        "predicates": False,
        "aggregates": False,
    }

    #: cap on the combinatorial product of keyword assignments
    max_combinations = 24

    def answer(self, text: str) -> BaselineAnswer:
        answer = BaselineAnswer(system=self.name, query_text=text)
        if any(symbol in text for symbol in ("(", ">", "<", "=")):
            answer.supported = False
            answer.note = "operators and aggregates are not part of the model"
            return answer

        segments = self.segment(text)
        hit_lists = []
        for segment in segments:
            hits = self.keyword_hits(segment)
            if not hits:
                answer.supported = False
                answer.note = (
                    f"keyword {segment!r} not found in the symbol table "
                    f"(no metadata lookup available)"
                )
                return answer
            hit_lists.append([(segment, table, column) for table, column in hits])

        combinations = itertools.islice(
            itertools.product(*hit_lists), self.max_combinations
        )
        for combination in combinations:
            tables = sorted({table for __, table, __ in combination})
            joins = self.join_tree(tables)
            if joins is None:
                continue
            involved = set(tables)
            for t1, __, t2, __ in joins:
                involved.add(t1)
                involved.add(t2)
            if self.schema_has_cycle(involved):
                answer.caveat = "schema subgraph contains a cycle"
            filters = [
                (table, column, segment)
                for segment, table, column in combination
            ]
            answer.sqls.append(build_sql(sorted(involved), joins, filters))
        if not answer.sqls:
            answer.note = "no join tree connects the keyword tables"
        return answer
