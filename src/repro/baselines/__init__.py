"""Reimplementations of the related systems compared in Table 5."""

from repro.baselines.banks import Banks
from repro.baselines.base import BaselineAnswer, KeywordSearchSystem, build_sql
from repro.baselines.capabilities import (
    PAPER_TABLE5,
    QUERY_TYPE_ROWS,
    SystemEvaluation,
    capability_matrix,
    default_systems,
    evaluate_system,
    format_table5,
    soda_evaluation,
    synonym_dictionary,
)
from repro.baselines.dbexplorer import DBExplorer
from repro.baselines.discover import Discover
from repro.baselines.keymantic import Keymantic
from repro.baselines.sqak import Sqak

__all__ = [
    "Banks",
    "BaselineAnswer",
    "DBExplorer",
    "Discover",
    "KeywordSearchSystem",
    "Keymantic",
    "PAPER_TABLE5",
    "QUERY_TYPE_ROWS",
    "Sqak",
    "SystemEvaluation",
    "build_sql",
    "capability_matrix",
    "default_systems",
    "evaluate_system",
    "format_table5",
    "soda_evaluation",
    "synonym_dictionary",
]
