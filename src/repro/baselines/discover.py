"""DISCOVER (Hristidis, Papakonstantinou — VLDB 2002), simplified.

DISCOVER computes, per keyword, the *tuple set* of every table that
contains the keyword, then enumerates **candidate networks**: join
expressions over tuple sets and "free" intermediate tables, bounded by a
maximum size, using the schema's key/foreign-key edges.  Each candidate
network is translated to one SQL statement.

Reproduced limitations (Table 5): base data only (no schema/metadata
matching), no inheritance/ontology/predicates/aggregates, and cyclic
schema subgraphs break the candidate-network generator.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.baselines.base import BaselineAnswer, KeywordSearchSystem, build_sql


class Discover(KeywordSearchSystem):
    name = "DISCOVER"
    features = {
        "base_data": "partial",  # (X): breaks on cycles
        "schema": False,
        "inheritance": False,
        "domain_ontology": False,
        "predicates": False,
        "aggregates": False,
    }

    #: maximum candidate-network size (tables), the paper's Tmax
    max_network_size = 5
    max_networks = 12

    def answer(self, text: str) -> BaselineAnswer:
        answer = BaselineAnswer(system=self.name, query_text=text)
        if any(symbol in text for symbol in ("(", ">", "<", "=")):
            answer.supported = False
            answer.note = "operators and aggregates are outside the model"
            return answer

        segments = self.segment(text)
        tuple_sets = []
        for segment in segments:
            hits = self.keyword_hits(segment)
            if not hits:
                answer.supported = False
                answer.note = f"empty tuple set for keyword {segment!r}"
                return answer
            tuple_sets.append([(segment, table, column) for table, column in hits])

        networks = self._candidate_networks(tuple_sets)
        for tables, filters in networks[: self.max_networks]:
            joins = self.join_tree(tables)
            if joins is None:
                continue
            involved = set(tables)
            for t1, __, t2, __ in joins:
                involved.add(t1)
                involved.add(t2)
            if len(involved) > self.max_network_size:
                continue
            if self.schema_has_cycle(involved):
                answer.caveat = "candidate network touches a schema cycle"
            answer.sqls.append(build_sql(sorted(involved), joins, filters))
        if not answer.sqls:
            answer.note = "no candidate network within the size bound"
        return answer

    def _candidate_networks(self, tuple_sets: list) -> list:
        """All combinations of per-keyword tuple-set choices."""
        networks = []
        for combination in itertools.islice(
            itertools.product(*tuple_sets), 48
        ):
            tables = sorted({table for __, table, __ in combination})
            filters = [
                (table, column, segment)
                for segment, table, column in combination
            ]
            networks.append((tables, filters))
        return networks
