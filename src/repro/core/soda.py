"""The SODA facade: the five-step pipeline of Figure 4.

``Soda.search("customers Zurich financial instruments")`` runs the
:class:`~repro.core.pipeline.SearchPipeline`:

1. **lookup** — terms to entry points (combinatorial product),
2. **rank and top N** — heuristic location scores, keep the best N,
3. **tables** — graph traversal + pattern matching for tables and joins,
4. **filters** — input operators, base-data predicates, business terms,
5. **SQL** — assemble executable statements,

then executes the top statements to produce result snippets (up to
twenty tuples each), just like the paper's Google-style result page.
Per-step wall-clock timings are recorded for the Table 4 / Fig. 4
reproductions.

A `Soda` instance is designed to stay *warm*: its indexes come from the
warehouse (incrementally maintained, snapshot-loadable), and its lookup
and tables steps memoize term resolutions and join plans, so the
second search is much cheaper than the first.  :meth:`Soda.search_many`
serves a whole batch of queries over those shared caches, deduplicating
identical query texts.
"""

from __future__ import annotations

import json
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.caching import ResultCache
from repro.core.feedback import FeedbackStore
from repro.core.filters import FiltersStep
from repro.core.input_patterns import parse_query
from repro.core.lookup import Lookup
from repro.core.patterns import build_default_library
from repro.core.pipeline import (
    ExecuteStep,
    FiltersStage,
    FinalizeStep,
    LookupStep,
    RankStep,
    ScoredStatement,
    SearchContext,
    SearchPipeline,
    SearchResult,
    SqlGenStage,
    StepTimings,
    TablesStage,
)
from repro.core.query import SodaQuery
from repro.core.sqlgen import SqlGenerator
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.tracing import NULL_TRACER, Tracer, activate
from repro.resilience.deadline import (
    Deadline,
    current_deadline,
    deadline_scope,
)
from repro.core.tables import TablesResult, TablesStep
from repro.errors import SqlError
from repro.sqlengine.executor import ResultSet
from repro.warehouse.warehouse import Warehouse

__all__ = [
    "ScoredStatement",
    "SearchResult",
    "Soda",
    "SodaConfig",
    "StepTimings",
]

#: slow searches log one structured JSON line here (stdlib logging, so
#: applications route/format it like any other `repro.*` logger)
_SLOW_QUERY_LOG = logging.getLogger("repro.soda.slow_query")

_METRICS = _metrics_registry()
_SLOW_QUERIES = _METRICS.counter("soda.slow_queries")


@dataclass
class SodaConfig:
    """Tunable knobs of the pipeline (all paper-motivated).

    Serving knobs: ``max_statements`` early-terminates SQL generation
    after that many distinct statements (None: generate all, the paper
    behaviour); ``batch_dedup`` lets :meth:`Soda.search_many` serve
    duplicate query texts in a batch from one computation (the repeated
    result objects are shared, not copied).
    """

    top_n: int = 10  # interpretations kept by Step 2
    join_depth: int = 16  # traversal bound for join discovery
    max_interpretations: int = 200  # lookup product safety cap
    use_dbpedia: bool = True  # include the DBpedia layer in lookup
    index_physical_names: bool = False  # register physical names for lookup
    snippet_rows: int = 20  # "up to twenty tuples" per result
    max_execution_rows: int = 1_000_000  # skip executing blow-up queries
    ranking: str = "location"  # "location" (paper) or "specificity"
    pattern_overrides: dict = field(default_factory=dict)
    max_statements: "int | None" = None  # early-stop SQL generation
    batch_dedup: bool = True  # dedup identical texts in search_many
    #: searches slower than this (whole pipeline, ms) log one JSON line
    #: on the ``repro.soda.slow_query`` logger; None disables the log
    slow_query_ms: "float | None" = None


class Soda:
    """Search over DAta warehouse."""

    def __init__(self, warehouse: Warehouse, config: SodaConfig | None = None):
        self.warehouse = warehouse
        self.config = config or SodaConfig()
        self.classification = warehouse.classification_index(
            include_dbpedia=self.config.use_dbpedia,
            include_physical=self.config.index_physical_names,
        )
        self.library = build_default_library(self.config.pattern_overrides)
        self._lookup = Lookup(
            self.classification,
            warehouse.inverted,
            max_interpretations=self.config.max_interpretations,
        )
        self._tables = TablesStep(
            warehouse.graph, self.library, join_depth=self.config.join_depth
        )
        self._filters = FiltersStep(warehouse.graph, warehouse.database.catalog)
        self._sqlgen = SqlGenerator(warehouse.database.catalog)
        #: relevance feedback (paper Section 6.3): like/dislike statements
        self.feedback = FeedbackStore()
        #: engine-wide result cache, shared by every SearchSession and
        #: serving thread over this instance (see repro.core.caching)
        self.result_cache = ResultCache()
        #: the staged engine behind :meth:`search`; hooks may be added
        self.pipeline = SearchPipeline(
            [
                LookupStep(self._lookup),
                RankStep(),
                TablesStage(self._tables),
                FiltersStage(self._filters),
                SqlGenStage(self._sqlgen),
                # read self.feedback live so reassigning it keeps working
                FinalizeStep(lambda: self.feedback, self._estimate_rows),
                ExecuteStep(self._attach_snippet),
            ]
        )

    # ------------------------------------------------------------------
    def parse(self, text: str) -> SodaQuery:
        """Parse the input query text (input patterns only)."""
        return parse_query(text)

    def explain(self, sql: str, analyze: bool = False) -> str:
        """EXPLAIN an SQL statement against the warehouse database.

        Renders the optimized plan tree the engine would execute —
        works for generated statements (``result.best.sql``) as well as
        hand-written SQL.  ``analyze=True`` runs the statement and adds
        per-operator actual rows/batches and self-time to each line.
        """
        return self.warehouse.database.explain(sql, analyze=analyze)

    def plan_cache_stats(self):
        """Hit/miss counters of the database's LRU plan cache."""
        return self.warehouse.database.planner.cache.stats

    def metrics(self) -> dict:
        """Snapshot of the process-wide metrics registry.

        Refreshes the point-in-time gauges this engine owns — the
        shared result cache's entry count and capacity — at dump time,
        alongside the database's plan-cache gauges (all safe to read
        from any thread).  The ``serving.result_cache.hits/misses``
        counters accumulate process-wide as the cache is used.
        """
        reg = _metrics_registry()
        reg.gauge("serving.result_cache.entries").set(len(self.result_cache))
        reg.gauge("serving.result_cache.capacity").set(
            self.result_cache.capacity
        )
        return self.warehouse.database.metrics()

    def search(
        self, text: str, execute: bool = True, trace: bool = False
    ) -> SearchResult:
        """Run the full staged pipeline for *text*.

        With ``trace=True`` the search runs under a fresh
        :class:`~repro.obs.tracing.Tracer`; the returned result's
        ``trace`` holds the span tree (search → pipeline steps →
        plan/execute), renderable via ``result.trace.render()`` or
        exportable with ``to_json()``.  Results are byte-identical with
        tracing on or off.
        """
        tracer = Tracer() if trace else NULL_TRACER
        context = SearchContext(
            text=text, config=self.config, execute=execute, tracer=tracer
        )
        hits_before = self.plan_cache_stats().hits
        started = time.perf_counter()
        with deadline_scope(self._default_deadline()):
            with activate(tracer):
                with tracer.span("search", query=text):
                    self.pipeline.run(context)
        self._log_if_slow(
            text, context, time.perf_counter() - started, hits_before
        )
        return context.result()

    def _default_deadline(self) -> "Deadline | None":
        """A deadline from ``EngineConfig(request_timeout_ms=)``.

        None when no engine default is configured or when the caller
        (the HTTP front end's per-request ``?timeout_ms=``) already
        installed a deadline for this thread — the outermost request
        budget always wins.
        """
        timeout_ms = self.warehouse.database.config.request_timeout_ms
        if timeout_ms is None or current_deadline() is not None:
            return None
        return Deadline(timeout_ms)

    def _log_if_slow(
        self,
        text: str,
        context: SearchContext,
        elapsed: float,
        hits_before: int,
    ) -> None:
        """One structured JSON log line for searches over the threshold."""
        threshold = self.config.slow_query_ms
        if threshold is None:
            return
        total_ms = elapsed * 1000.0
        if total_ms < threshold:
            return
        if _METRICS.enabled:
            _SLOW_QUERIES.inc()
        timings = context.timings
        payload = {
            "query": text,
            "total_ms": round(total_ms, 3),
            "threshold_ms": threshold,
            "steps_ms": {
                name: round(getattr(timings, name) * 1000.0, 3)
                for name in (
                    "lookup", "rank", "tables", "filters", "sql", "execute"
                )
            },
            "statements": len(context.statements),
            "plan_cache_hit": self.plan_cache_stats().hits > hits_before,
        }
        _SLOW_QUERY_LOG.warning(json.dumps(payload, sort_keys=True))

    def search_many(
        self, texts, execute: bool = True, workers: "int | None" = None
    ) -> "list[SearchResult]":
        """Serve a batch of queries over this warm instance.

        Lookup term memos and tables-step join plans are shared across
        the whole batch, and (with ``config.batch_dedup``) duplicate
        query texts are computed once — the returned list then contains
        the *same* :class:`SearchResult` object at each duplicate
        position.  Results are byte-identical to sequential
        :meth:`search` calls.

        With ``workers > 1`` the deduplicated query texts run
        concurrently on a thread pool (each on its own thread-local
        tracer, each SQL execution over its own pinned snapshots when
        segmented storage is enabled).  Result order still matches the
        input, and per-step timings stay per-query.
        """
        texts = list(texts)
        if workers is not None and workers > 1 and len(texts) > 1:
            unique = (
                list(dict.fromkeys(texts)) if self.config.batch_dedup else texts
            )
            with ThreadPoolExecutor(
                max_workers=min(workers, len(unique)),
                thread_name_prefix="soda-search",
            ) as pool:
                futures = [
                    pool.submit(self.search, text, execute) for text in unique
                ]
                computed = [future.result() for future in futures]
            if not self.config.batch_dedup:
                return computed
            memo = dict(zip(unique, computed))
            return [memo[text] for text in texts]
        results: list = []
        memo: dict = {}
        for text in texts:
            if self.config.batch_dedup and text in memo:
                results.append(memo[text])
                continue
            result = self.search(text, execute=execute)
            memo[text] = result
            results.append(result)
        return results

    # ------------------------------------------------------------------
    def _estimate_rows(self, tables_result: TablesResult) -> int:
        """Crude upper-bound estimate: product over disconnected components."""
        estimate = 1
        for component in tables_result.components:
            component_rows = 1
            for table_name in component:
                if self.warehouse.database.catalog.has_table(table_name):
                    component_rows = max(
                        component_rows,
                        self.warehouse.database.row_count(table_name),
                    )
            estimate *= max(1, component_rows)
        return estimate

    def _attach_snippet(self, scored: ScoredStatement) -> None:
        """Execute a statement and keep up to ``snippet_rows`` tuples."""
        if scored.estimated_rows > self.config.max_execution_rows:
            scored.execution_error = (
                f"skipped: estimated {scored.estimated_rows} rows exceeds "
                f"the execution cap"
            )
            return
        try:
            result = self.warehouse.database.execute_select_ast(
                scored.statement.select
            )
        except SqlError as exc:
            scored.execution_error = str(exc)
            return
        scored.snippet = ResultSet(
            columns=result.columns, rows=result.rows[: self.config.snippet_rows]
        )
        try:
            scored.plan = self.warehouse.database.explain_select_ast(
                scored.statement.select
            )
        except SqlError:  # pragma: no cover - executable implies explainable
            scored.plan = None
