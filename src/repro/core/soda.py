"""The SODA facade: the five-step pipeline of Figure 4.

``Soda.search("customers Zurich financial instruments")`` runs:

1. **lookup** — terms to entry points (combinatorial product),
2. **rank and top N** — heuristic location scores, keep the best N,
3. **tables** — graph traversal + pattern matching for tables and joins,
4. **filters** — input operators, base-data predicates, business terms,
5. **SQL** — assemble executable statements,

then executes the top statements to produce result snippets (up to
twenty tuples each), just like the paper's Google-style result page.
Per-step wall-clock timings are recorded for the Table 4 / Fig. 4
reproductions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.feedback import FeedbackStore
from repro.core.filters import FiltersResult, FiltersStep
from repro.core.input_patterns import parse_query
from repro.core.lookup import Lookup, LookupResult
from repro.core.patterns import build_default_library
from repro.core.query import SodaQuery
from repro.core.ranking import RankedInterpretation, rank
from repro.core.sqlgen import GeneratedStatement, SqlGenerator
from repro.core.tables import TablesResult, TablesStep
from repro.errors import SqlError
from repro.sqlengine.executor import ResultSet
from repro.warehouse.graphbuilder import build_classification_index
from repro.warehouse.warehouse import Warehouse


@dataclass
class SodaConfig:
    """Tunable knobs of the pipeline (all paper-motivated)."""

    top_n: int = 10  # interpretations kept by Step 2
    join_depth: int = 16  # traversal bound for join discovery
    max_interpretations: int = 200  # lookup product safety cap
    use_dbpedia: bool = True  # include the DBpedia layer in lookup
    index_physical_names: bool = False  # register physical names for lookup
    snippet_rows: int = 20  # "up to twenty tuples" per result
    max_execution_rows: int = 1_000_000  # skip executing blow-up queries
    ranking: str = "location"  # "location" (paper) or "specificity"
    pattern_overrides: dict = field(default_factory=dict)


@dataclass
class StepTimings:
    """Wall-clock seconds per pipeline step (Fig. 4 / Table 4)."""

    lookup: float = 0.0
    rank: float = 0.0
    tables: float = 0.0
    filters: float = 0.0
    sql: float = 0.0
    execute: float = 0.0

    @property
    def soda_total(self) -> float:
        """Time to produce SQL (excludes executing it), as in Table 4."""
        return self.lookup + self.rank + self.tables + self.filters + self.sql

    @property
    def total(self) -> float:
        return self.soda_total + self.execute


@dataclass
class ScoredStatement:
    """One generated SQL statement with score, snippet and query plan."""

    sql: str
    score: float
    statement: GeneratedStatement
    tables_result: TablesResult
    filters_result: FiltersResult
    interpretation_description: str
    snippet: "ResultSet | None" = None
    execution_error: str | None = None
    estimated_rows: int = 0
    #: the optimizer's plan tree (populated when the statement executes)
    plan: str | None = None

    @property
    def disconnected(self) -> bool:
        return self.statement.disconnected


@dataclass
class SearchResult:
    """Everything one `Soda.search` call produced."""

    query: SodaQuery
    lookup: LookupResult
    statements: list
    timings: StepTimings

    @property
    def complexity(self) -> int:
        return self.lookup.complexity

    @property
    def best(self) -> "ScoredStatement | None":
        return self.statements[0] if self.statements else None

    def sql_texts(self) -> list:
        return [statement.sql for statement in self.statements]


class Soda:
    """Search over DAta warehouse."""

    def __init__(self, warehouse: Warehouse, config: SodaConfig | None = None):
        self.warehouse = warehouse
        self.config = config or SodaConfig()
        self.classification = build_classification_index(
            warehouse.graph,
            include_dbpedia=self.config.use_dbpedia,
            include_physical=self.config.index_physical_names,
        )
        self.library = build_default_library(self.config.pattern_overrides)
        self._lookup = Lookup(
            self.classification,
            warehouse.inverted,
            max_interpretations=self.config.max_interpretations,
        )
        self._tables = TablesStep(
            warehouse.graph, self.library, join_depth=self.config.join_depth
        )
        self._filters = FiltersStep(warehouse.graph, warehouse.database.catalog)
        self._sqlgen = SqlGenerator(warehouse.database.catalog)
        #: relevance feedback (paper Section 6.3): like/dislike statements
        self.feedback = FeedbackStore()

    # ------------------------------------------------------------------
    def parse(self, text: str) -> SodaQuery:
        """Parse the input query text (input patterns only)."""
        return parse_query(text)

    def explain(self, sql: str) -> str:
        """EXPLAIN an SQL statement against the warehouse database.

        Renders the optimized plan tree the engine would execute —
        works for generated statements (``result.best.sql``) as well as
        hand-written SQL.
        """
        return self.warehouse.database.explain(sql)

    def plan_cache_stats(self):
        """Hit/miss counters of the database's LRU plan cache."""
        return self.warehouse.database.planner.cache.stats

    def search(self, text: str, execute: bool = True) -> SearchResult:
        """Run the full five-step pipeline for *text*."""
        timings = StepTimings()

        started = time.perf_counter()
        query = parse_query(text)
        lookup_result = self._lookup.run(query)
        timings.lookup = time.perf_counter() - started

        started = time.perf_counter()
        ranked = rank(
            lookup_result,
            top_n=self.config.top_n,
            strategy=self.config.ranking,
        )
        timings.rank = time.perf_counter() - started

        statements: list = []
        seen_sql: set = set()
        for ranked_interpretation in ranked:
            scored = self._process_interpretation(
                query, lookup_result, ranked_interpretation, timings
            )
            if scored is None:
                continue
            if scored.sql in seen_sql:
                continue
            seen_sql.add(scored.sql)
            statements.append(scored)

        if len(self.feedback):
            for scored in statements:
                scored.score += self.feedback.bonus(scored.sql)
        statements.sort(key=lambda s: (-s.score, s.sql))

        if execute:
            started = time.perf_counter()
            for scored in statements:
                self._attach_snippet(scored)
            timings.execute = time.perf_counter() - started

        return SearchResult(
            query=query,
            lookup=lookup_result,
            statements=statements,
            timings=timings,
        )

    # ------------------------------------------------------------------
    def _process_interpretation(
        self,
        query: SodaQuery,
        lookup_result: LookupResult,
        ranked: RankedInterpretation,
        timings: StepTimings,
    ) -> "ScoredStatement | None":
        started = time.perf_counter()
        tables_result = self._tables.run(ranked.interpretation)
        timings.tables += time.perf_counter() - started

        started = time.perf_counter()
        filters_result = self._filters.run(
            ranked.interpretation, lookup_result.slots, tables_result, query
        )
        timings.filters += time.perf_counter() - started

        started = time.perf_counter()
        statement = self._sqlgen.generate(query, tables_result, filters_result)
        timings.sql += time.perf_counter() - started
        if statement is None:
            return None

        return ScoredStatement(
            sql=statement.sql,
            score=ranked.score,
            statement=statement,
            tables_result=tables_result,
            filters_result=filters_result,
            interpretation_description=ranked.interpretation.describe(
                lookup_result.slots
            ),
            estimated_rows=self._estimate_rows(tables_result),
        )

    def _estimate_rows(self, tables_result: TablesResult) -> int:
        """Crude upper-bound estimate: product over disconnected components."""
        estimate = 1
        for component in tables_result.components:
            component_rows = 1
            for table_name in component:
                if self.warehouse.database.catalog.has_table(table_name):
                    component_rows = max(
                        component_rows,
                        self.warehouse.database.row_count(table_name),
                    )
            estimate *= max(1, component_rows)
        return estimate

    def _attach_snippet(self, scored: ScoredStatement) -> None:
        """Execute a statement and keep up to ``snippet_rows`` tuples."""
        if scored.estimated_rows > self.config.max_execution_rows:
            scored.execution_error = (
                f"skipped: estimated {scored.estimated_rows} rows exceeds "
                f"the execution cap"
            )
            return
        try:
            result = self.warehouse.database.execute_select_ast(
                scored.statement.select
            )
        except SqlError as exc:
            scored.execution_error = str(exc)
            return
        scored.snippet = ResultSet(
            columns=result.columns, rows=result.rows[: self.config.snippet_rows]
        )
        try:
            scored.plan = self.warehouse.database.explain_select_ast(
                scored.statement.select
            )
        except SqlError:  # pragma: no cover - executable implies explainable
            scored.plan = None
