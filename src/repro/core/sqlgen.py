"""Step 5 — SQL generation (paper Section 3, Step 5).

Combines everything collected earlier into one "reasonable, executable"
SQL statement: the FROM list is the final table set, the WHERE clause
holds the selected join conditions (including inheritance joins) and the
filters, aggregation queries get their GROUP BY / ORDER BY ... DESC
(the paper's Query 4 orders by the aggregate descending), and ``top N``
becomes ``LIMIT N``.

The statement is built as a :mod:`repro.sqlengine` AST, so it is
executable by construction; ``to_sql()`` renders the text shown to the
user.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.filters import FiltersResult, ResolvedAggregation
from repro.core.query import SodaQuery
from repro.core.tables import TablesResult
from repro.index.classification import EntrySource
from repro.sqlengine.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    OrderItem,
    Select,
    SelectItem,
    TableRef,
)
from repro.sqlengine.catalog import Catalog


@dataclass
class GeneratedStatement:
    """One executable statement plus provenance."""

    select: Select
    sql: str
    tables: tuple
    disconnected: bool

    def describe(self) -> str:
        state = " (disconnected)" if self.disconnected else ""
        return f"{self.sql}{state}"


class SqlGenerator:
    """Step 5, bound to the physical catalog (for key inference)."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def generate(
        self,
        query: SodaQuery,
        tables_result: TablesResult,
        filters_result: FiltersResult,
    ) -> GeneratedStatement | None:
        """Build the statement; returns None if no tables were found."""
        if not tables_result.tables:
            return None

        aggregations = list(filters_result.aggregations)
        if not aggregations and query.top_n is not None:
            aggregations.extend(self._business_aggregations(tables_result))

        group_refs = [
            ColumnRef(group.table, group.column)
            for group in filters_result.group_by
        ]
        if aggregations and query.top_n is not None and not group_refs:
            inferred = self._infer_group_key(tables_result)
            if inferred is not None:
                group_refs.append(inferred)

        where = self._where_clause(tables_result, filters_result)

        if aggregations:
            items = [
                SelectItem(expr=self._aggregate_expr(agg)) for agg in aggregations
            ]
            items.extend(SelectItem(expr=ref) for ref in group_refs)
            order_by = ()
            if group_refs or query.top_n is not None:
                order_by = (
                    OrderItem(
                        expr=self._aggregate_expr(aggregations[0]),
                        descending=True,
                    ),
                )
            select = Select(
                items=tuple(items),
                tables=tuple(
                    TableRef(name) for name in tables_result.tables
                ),
                where=where,
                group_by=tuple(group_refs),
                order_by=order_by,
                limit=query.top_n,
            )
        else:
            select = Select(
                items=(SelectItem(expr=None),),  # SELECT *
                tables=tuple(TableRef(name) for name in tables_result.tables),
                where=where,
                limit=query.top_n,
            )

        return GeneratedStatement(
            select=select,
            sql=select.to_sql(),
            tables=tuple(tables_result.tables),
            disconnected=not tables_result.is_connected,
        )

    # ------------------------------------------------------------------
    def _where_clause(
        self, tables_result: TablesResult, filters_result: FiltersResult
    ) -> Expr | None:
        conjuncts: list = []
        for join in tables_result.joins:
            conjuncts.append(
                BinaryOp(
                    "=",
                    ColumnRef(join.left_table, join.left_column),
                    ColumnRef(join.right_table, join.right_column),
                )
            )
        for condition in filters_result.filters:
            conjuncts.append(condition.expr)
        if not conjuncts:
            return None
        clause = conjuncts[0]
        for conjunct in conjuncts[1:]:
            clause = BinaryOp("AND", clause, conjunct)
        return clause

    @staticmethod
    def _aggregate_expr(agg: ResolvedAggregation) -> Expr:
        if agg.column is None:
            return FuncCall(name=agg.func, star=True)
        return FuncCall(name=agg.func, args=(ColumnRef(agg.table, agg.column),))

    @staticmethod
    def _business_aggregations(tables_result: TablesResult) -> list:
        """Metadata-defined aggregations ("trading volume" -> sum(amount))."""
        found: list = []
        for expansion in tables_result.expansions:
            for business in expansion.business_aggregations:
                agg = ResolvedAggregation(
                    func=business.func, table=business.table, column=business.column
                )
                if agg not in found:
                    found.append(agg)
        return found

    def _infer_group_key(self, tables_result: TablesResult):
        """Group key for ``top N`` entity rankings: the entity's PK.

        Picks the first metadata entry point that expanded to tables and
        uses the inheritance root of its expansion (the stable key for
        mutually exclusive children), falling back to the first table.
        """
        metadata_sources = (
            EntrySource.DOMAIN_ONTOLOGY,
            EntrySource.CONCEPTUAL_SCHEMA,
            EntrySource.LOGICAL_SCHEMA,
        )
        for expansion in tables_result.expansions:
            if expansion.entry.source not in metadata_sources:
                continue
            if not expansion.tables:
                continue
            if expansion.business_aggregations:
                continue  # the aggregation term itself is not the entity
            parents = {
                tables_result.inheritance_parents.get(name)
                for name in expansion.tables
            }
            parents.discard(None)
            roots = sorted(parent for parent in parents
                           if parent in expansion.tables)
            table_name = roots[0] if roots else sorted(expansion.tables)[0]
            if not self._catalog.has_table(table_name):
                continue
            table = self._catalog.table(table_name)
            keys = table.primary_key_columns()
            if keys:
                return ColumnRef(table_name, keys[0])
        return None
