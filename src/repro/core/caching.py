"""The shared cross-session result cache.

One :class:`ResultCache` lives on each :class:`~repro.core.soda.Soda`
instance; every :class:`~repro.core.serving.SearchSession` over that
engine (and every thread of the HTTP front end) serves repeated query
texts from it.  Entries are keyed by ``(query text, execute, limit)``
and guarded by the session layer's *engine token* — the version
counters of every input a search result depends on — so any write that
could change an answer empties the cache wholesale rather than risking
a stale hit.

Thread-safe by a plain lock around each operation; a compute that
raced a write (its token went stale while the search ran) is returned
to its caller but **not** stored, so the cache never holds a result
the current engine state couldn't have produced.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.concurrency import SharedRLock
from repro.obs.metrics import registry as _metrics_registry

#: results memoized per cache unless overridden (0 disables caching)
DEFAULT_RESULT_CACHE_SIZE = 64

# local counters keep the public cache_stats() dict shape; the same
# events are mirrored process-wide for `repro stats --metrics`
_METRICS = _metrics_registry()
_RESULT_HITS = _METRICS.counter("serving.result_cache.hits")
_RESULT_MISSES = _METRICS.counter("serving.result_cache.misses")


class ResultCache:
    """A token-guarded LRU of search results, safe to share across threads."""

    def __init__(self, capacity: int = DEFAULT_RESULT_CACHE_SIZE) -> None:
        self.capacity = max(0, capacity)
        self._lock = SharedRLock()
        self._token = None
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, token, key):
        """The cached result for *key* under *token*, or None (a miss).

        A token change (any engine write since the last call) drops
        every entry first — the classic all-or-nothing invalidation the
        per-session memo used, now enforced under one lock.
        """
        if self.capacity == 0:
            return None
        with self._lock:
            if self._token != token:
                self._token = token
                self._entries.clear()
            hit = self._entries.get(key)
            if hit is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                if _METRICS.enabled:
                    _RESULT_HITS.inc()
                return hit
            self.misses += 1
            if _METRICS.enabled:
                _RESULT_MISSES.inc()
            return None

    def store(self, token, key, result) -> None:
        """Insert a freshly computed result, unless its token went stale.

        The re-check closes the compute-then-store race: a write that
        landed while the search ran changed the engine token, and a
        result computed from the older state must not be served to
        later callers.
        """
        if self.capacity == 0:
            return
        with self._lock:
            if self._token != token:
                return
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
