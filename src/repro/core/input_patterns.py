"""Input patterns: parse keyword/operator queries (paper Section 4.2.2).

Three kinds of input patterns exist:

* **Keywords** — free word runs, later segmented with the
  longest-word-combination algorithm against the classification index.
* **Comparison operators** — small binary patterns (``>``, ``>=``, ``=``,
  ``<=``, ``<``, ``like``) applied to the keywords before/after them;
  values may be numbers, ``date(YYYY-MM-DD)`` literals or quoted strings.
  ``between v1 v2`` builds a range condition.
* **Aggregation operators** — ``sum(attr)``, ``count(attr)``, ``count()``
  with optional ``group by (attr, ...)`` and the ``top N`` prefix.
"""

from __future__ import annotations

import datetime
import re

from repro.errors import QueryParseError
from repro.core.query import Aggregation, Comparison, RangeCondition, SodaQuery

_DATE_RE = re.compile(r"date\(\s*(\d{4}-\d{2}-\d{2})\s*\)", re.IGNORECASE)
_AGG_RE = re.compile(
    r"\b(sum|count|avg|min|max)\s*\(([^)]*)\)", re.IGNORECASE
)
_GROUP_BY_RE = re.compile(r"\bgroup\s+by\s*\(([^)]*)\)", re.IGNORECASE)
_VALID_AT_RE = re.compile(
    r"\bvalid\s+at\s+date\(\s*(\d{4}-\d{2}-\d{2})\s*\)", re.IGNORECASE
)

#: spelled-out counts accepted by the ``top N`` pattern ("top ten")
_NUMBER_WORDS = {
    "one": 1, "two": 2, "three": 3, "four": 4, "five": 5, "six": 6,
    "seven": 7, "eight": 8, "nine": 9, "ten": 10, "twenty": 20,
    "fifty": 50, "hundred": 100,
}
_TOP_RE = re.compile(
    r"\btop\s+(\d+|" + "|".join(_NUMBER_WORDS) + r")\b", re.IGNORECASE
)
_NUMBER_RE = re.compile(r"^\d+(\.\d+)?$")
_QUOTED_RE = re.compile(r'"([^"]*)"')

_COMPARISON_OPS = (">=", "<=", "<>", ">", "<", "=")

#: Filler words dropped before segmentation.  The paper's intro queries
#: are conversational ("Show me all my wealthy customers who live in
#: Zurich"); stopwords must never accidentally hit the base data.
STOPWORDS = frozenset(
    """a an the me my our your all any show find give list who what which
    is are was were in of for to with that live lives terms""".split()
)


class _Marker:
    """A placeholder for an already-extracted construct."""

    def __init__(self, kind: str, payload: object) -> None:
        self.kind = kind
        self.payload = payload


def parse_query(text: str) -> SodaQuery:
    """Parse an input query into a :class:`SodaQuery`.

    >>> query = parse_query("salary >= 100000 and birthday = date(1981-04-23)")
    >>> [c.op for c in query.comparisons]
    ['>=', '=']
    >>> parse_query("sum (amount) group by (transaction date)").group_by
    ('transaction date',)
    """
    if not text or not text.strip():
        raise QueryParseError("empty query")
    remaining = text.strip()

    markers: list = []

    def stash(kind: str):
        def _replace(match: "re.Match[str]") -> str:
            markers.append(_Marker(kind, match))
            return f" \x00{len(markers) - 1}\x00 "

        return _replace

    # extraction order matters: group-by before aggregations (both use
    # parentheses), valid-at before dates, dates before plain words.
    remaining = _GROUP_BY_RE.sub(stash("group_by"), remaining)
    remaining = _VALID_AT_RE.sub(stash("valid_at"), remaining)
    remaining = _AGG_RE.sub(stash("agg"), remaining)
    remaining = _DATE_RE.sub(stash("date"), remaining)
    remaining = _QUOTED_RE.sub(stash("quoted"), remaining)
    remaining = _TOP_RE.sub(stash("top"), remaining)

    tokens = _tokenize(remaining, markers)

    aggregations: list = []
    group_by: list = []
    comparisons: list = []
    ranges: list = []
    keywords: list = []
    connectors: list = []
    top_n: int | None = None
    valid_at: "datetime.date | None" = None

    current_words: list = []

    def flush_words() -> None:
        if current_words:
            keywords.append(tuple(current_words))
            current_words.clear()

    index = 0
    while index < len(tokens):
        token = tokens[index]
        if isinstance(token, _Marker):
            match = token.payload
            if token.kind == "group_by":
                group_by.extend(
                    term.strip().lower()
                    for term in match.group(1).split(",")
                    if term.strip()
                )
            elif token.kind == "agg":
                func = match.group(1).lower()
                argument = match.group(2).strip().lower() or None
                aggregations.append(Aggregation(func=func, argument=argument))
            elif token.kind == "top":
                count = match.group(1).lower()
                top_n = _NUMBER_WORDS.get(count) or int(count)
            elif token.kind == "valid_at":
                valid_at = datetime.date.fromisoformat(match.group(1))
            elif token.kind in ("date", "quoted"):
                # a bare value token without an operator: treat as keyword
                current_words.append(_marker_value_text(token))
            index += 1
            continue

        lowered = token.lower()
        if lowered == "select":
            # the paper's Q9.0 writes "select count()" — swallow "select"
            index += 1
            continue
        if lowered in STOPWORDS:
            index += 1
            continue
        if lowered in ("and", "or"):
            connectors.append(lowered)
            flush_words()
            index += 1
            continue
        if lowered in _COMPARISON_OPS or lowered == "like":
            op = "like" if lowered == "like" else lowered
            value, consumed = _parse_value(tokens, index + 1)
            comparisons.append(
                Comparison(left_words=tuple(current_words), op=op, value=value)
            )
            current_words.clear()
            index += 1 + consumed
            continue
        if lowered == "between":
            low, consumed_low = _parse_value(tokens, index + 1)
            high, consumed_high = _parse_value(tokens, index + 1 + consumed_low)
            ranges.append(
                RangeCondition(left_words=tuple(current_words), low=low, high=high)
            )
            current_words.clear()
            index += 1 + consumed_low + consumed_high
            continue
        current_words.append(lowered)
        index += 1

    flush_words()

    return SodaQuery(
        raw=text,
        keywords=tuple(keywords),
        comparisons=tuple(comparisons),
        ranges=tuple(ranges),
        aggregations=tuple(aggregations),
        group_by=tuple(group_by),
        top_n=top_n,
        connectors=tuple(connectors),
        valid_at=valid_at,
    )


def _tokenize(text: str, markers: list) -> list:
    """Split into word tokens, operator tokens and marker references."""
    raw = re.findall(r"\x00\d+\x00|>=|<=|<>|[><=]|[A-Za-z0-9_.\-]+", text)
    tokens: list = []
    for piece in raw:
        if piece.startswith("\x00"):
            tokens.append(markers[int(piece.strip("\x00"))])
        else:
            tokens.append(piece)
    return tokens


def _marker_value_text(marker: _Marker) -> str:
    match = marker.payload
    if marker.kind == "date":
        return match.group(1)
    return match.group(1).lower()


def _marker_value(marker: _Marker) -> object:
    match = marker.payload
    if marker.kind == "date":
        return datetime.date.fromisoformat(match.group(1))
    return match.group(1)


def _parse_value(tokens: list, index: int) -> tuple:
    """Parse the operator operand at *index*; returns (value, consumed)."""
    if index >= len(tokens):
        raise QueryParseError("comparison operator is missing its value")
    token = tokens[index]
    if isinstance(token, _Marker):
        return _marker_value(token), 1
    if _NUMBER_RE.match(token):
        return (float(token) if "." in token else int(token)), 1
    return token, 1
