"""The Credit Suisse metadata graph pattern set (paper Section 4.2.1).

Every pattern is written in the paper's SPARQL-filter-inspired textual
syntax and parsed with :func:`repro.graph.pattern.parse_pattern`.  The
SODA steps evaluate these patterns at graph nodes during traversal:

* ``table`` / ``column`` — the basic patterns (Fig. 7),
* ``foreign_key`` — the simple join pattern (Fig. 8),
* ``join_relationship`` — the Credit Suisse variant with an explicit
  join node pointing at the foreign-key and primary-key columns,
* ``inheritance_child`` — tested at a child to collect the parent table,
* ``business_filter`` / ``business_aggregation`` — metadata-defined
  predicates ("wealthy customers") and aggregations ("trading volume").

Porting SODA to another warehouse means swapping this module's pattern
text while the algorithm stays the same — exactly the paper's pitch.
"""

from __future__ import annotations

from repro.graph.node import Vocab
from repro.graph.pattern import Pattern, PatternLibrary, parse_pattern

#: Resolver mapping the bare words used in pattern text to vocabulary URIs.
DEFAULT_RESOLVER: dict = {
    "type": Vocab.TYPE,
    "tablename": Vocab.TABLENAME,
    "columnname": Vocab.COLUMNNAME,
    "column": Vocab.COLUMN,
    "belongs_to": Vocab.BELONGS_TO,
    "foreign_key": Vocab.FOREIGN_KEY,
    "join_left": Vocab.JOIN_LEFT,
    "join_right": Vocab.JOIN_RIGHT,
    "has_join": Vocab.HAS_JOIN,
    "inheritance_parent": Vocab.INHERITANCE_PARENT,
    "inheritance_child": Vocab.INHERITANCE_CHILD,
    "filter_column": Vocab.FILTER_COLUMN,
    "filter_op": Vocab.FILTER_OP,
    "filter_value": Vocab.FILTER_VALUE,
    "agg_func": Vocab.AGG_FUNC,
    "agg_column": Vocab.AGG_COLUMN,
    "physical_table": Vocab.PHYSICAL_TABLE,
    "physical_column": Vocab.PHYSICAL_COLUMN,
    "inheritance_node": Vocab.INHERITANCE_NODE,
    "join_node": Vocab.JOIN_NODE,
    "business_term": Vocab.BUSINESS_TERM,
}

#: Pattern sources, verbatim in the paper's syntax.
PATTERN_SOURCES: dict = {
    # Fig. 7 — the Table pattern
    "table": "( x tablename t:y ) & ( x type physical_table )",
    # the Column pattern: a named physical column with an incoming
    # `column` edge from its table z
    "column": (
        "( x columnname t:y ) & ( x type physical_column ) & ( z column x )"
    ),
    # Fig. 8 — the simple Foreign Key pattern
    "foreign_key": (
        "( x foreign_key y ) & ( x matches-column ) & ( y matches-column )"
    ),
    # the Credit Suisse Join-Relationship pattern: explicit join node with
    # outgoing edges to the foreign-key (left) and primary-key (right) column
    "join_relationship": (
        "( x type join_node ) & ( x join_left l ) & ( x join_right r ) & "
        "( l matches-column ) & ( r matches-column )"
    ),
    # the Inheritance Child pattern, tested at a child node x
    "inheritance_child": (
        "( y inheritance_child x ) & ( y type inheritance_node ) & "
        "( y inheritance_parent p ) & ( y inheritance_child c1 ) & "
        "( y inheritance_child c2 )"
    ),
    # metadata-defined filter attached to a business term
    "business_filter": (
        "( x type business_term ) & ( x filter_column c ) & "
        "( x filter_op t:op ) & ( x filter_value t:v )"
    ),
    # metadata-defined aggregation attached to a business term
    "business_aggregation": (
        "( x type business_term ) & ( x agg_func t:f ) & ( x agg_column c )"
    ),
}


def build_default_library(
    overrides: dict | None = None,
) -> PatternLibrary:
    """Parse the default pattern set (optionally with replaced sources).

    *overrides* maps pattern names to replacement source text — the
    extension point the paper describes for porting SODA to warehouses
    with different modelling conventions.
    """
    sources = dict(PATTERN_SOURCES)
    if overrides:
        sources.update(overrides)
    library = PatternLibrary()
    for name, source in sources.items():
        library.add(parse_pattern(name, source, DEFAULT_RESOLVER))
    return library
