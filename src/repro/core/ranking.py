"""Step 2 — Rank and top N (paper Section 3, Step 2).

The default ranking applies *"a simple heuristic which uses the location
of the entry points in the metadata graph"*: a keyword found in the
domain ontology scores higher than one found in DBpedia, because the
ontology was built by domain experts.  The score of an interpretation is
the mean of its entry-point scores; the best N interpretations continue
through the pipeline.

The paper notes that "more sophisticated ranking algorithms such as
BLINKS" exist; as a second strategy this module offers **specificity
ranking**, which additionally rewards unambiguous terms: an entry point
competing with many alternatives for the same slot is discounted, so
interpretations built from specific terms rise.  Select it with
``SodaConfig(ranking="specificity")``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lookup import Interpretation, LookupResult
from repro.errors import ReproError
from repro.index.classification import EntrySource

#: Location scores, ordered by how much the heuristic trusts each source.
SOURCE_SCORES: dict = {
    EntrySource.DOMAIN_ONTOLOGY: 1.00,
    EntrySource.CONCEPTUAL_SCHEMA: 0.90,
    EntrySource.LOGICAL_SCHEMA: 0.85,
    EntrySource.PHYSICAL_SCHEMA: 0.80,
    EntrySource.BASE_DATA: 0.75,
    EntrySource.DBPEDIA: 0.50,
}

#: Score assigned to a slot whose term resolved to nothing.
UNRESOLVED_SCORE = 0.10


@dataclass(frozen=True)
class RankedInterpretation:
    """An interpretation with its heuristic score."""

    interpretation: Interpretation
    score: float

    def sort_key(self) -> tuple:
        """Descending score; deterministic tie-break on entry nodes."""
        nodes = tuple(
            assignment.entry.node if assignment.entry is not None else ""
            for assignment in self.interpretation.assignments
        )
        return (-self.score, nodes)


def score_interpretation(interpretation: Interpretation) -> float:
    """Mean location score over all slots of the interpretation."""
    scores = []
    for assignment in interpretation.assignments:
        if assignment.entry is None:
            scores.append(UNRESOLVED_SCORE)
        else:
            scores.append(SOURCE_SCORES[assignment.entry.source])
    if not scores:
        return 0.0
    return sum(scores) / len(scores)


def score_interpretation_specificity(
    interpretation: Interpretation, lookup_result: LookupResult
) -> float:
    """Location score discounted by per-slot ambiguity.

    Each slot contributes ``location_score / (1 + log2(alternatives))``,
    so a term with a unique meaning keeps its full score while a term
    with eight alternatives contributes a quarter of it.
    """
    import math

    scores = []
    for assignment in interpretation.assignments:
        slot = lookup_result.slots[assignment.slot_index]
        options = max(1, len(slot.alternatives))
        discount = 1.0 + math.log2(options)
        if assignment.entry is None:
            scores.append(UNRESOLVED_SCORE / discount)
        else:
            scores.append(SOURCE_SCORES[assignment.entry.source] / discount)
    if not scores:
        return 0.0
    return sum(scores) / len(scores)


#: Available ranking strategies (``SodaConfig.ranking``).
STRATEGIES = ("location", "specificity")


def rank(
    lookup_result: LookupResult, top_n: int = 10, strategy: str = "location"
) -> list:
    """Score every interpretation and keep the best *top_n*.

    Returns :class:`RankedInterpretation` objects sorted best-first with
    a deterministic tie-break.  *strategy* selects the scoring function
    (see module docstring).
    """
    if strategy == "location":
        def score(interpretation):
            return score_interpretation(interpretation)
    elif strategy == "specificity":
        def score(interpretation):
            return score_interpretation_specificity(
                interpretation, lookup_result
            )
    else:
        raise ReproError(
            f"unknown ranking strategy {strategy!r}; choose from {STRATEGIES}"
        )

    ranked = [
        RankedInterpretation(
            interpretation=interpretation, score=score(interpretation)
        )
        for interpretation in lookup_result.interpretations
    ]
    ranked.sort(key=RankedInterpretation.sort_key)
    return ranked[:top_n]
