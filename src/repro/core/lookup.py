"""Step 1 — Lookup: map query terms to metadata/base-data entry points.

The lookup step matches the keywords of the input query against the
classification index (metadata terms) and the inverted index (base
data), using the longest-word-combination algorithm of Section 4.2.2.
Every term yields a set of alternative entry points; the output of the
step is the combinatorial product of all alternatives (Fig. 5 "Query
Classification"), whose size is the paper's *query complexity* metric
(Table 4, column 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.query import Aggregation, Comparison, RangeCondition, SodaQuery
from repro.index.classification import ClassificationIndex, EntrySource
from repro.index.inverted import InvertedIndex
from repro.obs.metrics import registry as _metrics_registry
from repro.warehouse.graphbuilder import column_uri

_METRICS = _metrics_registry()
_MEMO_HITS = _METRICS.counter("lookup.memo.hits")
_MEMO_MISSES = _METRICS.counter("lookup.memo.misses")


@dataclass(frozen=True)
class EntryPoint:
    """One way a query term can anchor into the warehouse."""

    term: str
    source: EntrySource
    node: str  # metadata graph node URI (column node for base-data hits)
    table: str | None = None  # base-data hits: the posting's table
    column: str | None = None  # base-data hits: the posting's column

    @property
    def is_base_data(self) -> bool:
        return self.source is EntrySource.BASE_DATA

    def describe(self) -> str:
        if self.is_base_data:
            return f"{self.term!r} in base data ({self.table}.{self.column})"
        return f"{self.term!r} in {self.source.value} ({self.node})"

    def sort_key(self) -> tuple:
        return (self.source.value, self.node)


@dataclass
class Slot:
    """One resolved position of the query (keyword, operator operand, ...)."""

    kind: str  # keyword | comparison | range | aggregation | groupby
    term: str | None
    alternatives: tuple
    payload: object = None  # Comparison / RangeCondition / Aggregation

    def option_count(self) -> int:
        return max(1, len(self.alternatives))


@dataclass(frozen=True)
class Assignment:
    """One chosen entry point (or None) for one slot."""

    slot_index: int
    entry: EntryPoint | None


@dataclass(frozen=True)
class Interpretation:
    """One element of the combinatorial lookup product."""

    assignments: tuple

    def entry_points(self) -> list:
        return [a.entry for a in self.assignments if a.entry is not None]

    def describe(self, slots: list) -> str:
        parts = []
        for assignment in self.assignments:
            slot = slots[assignment.slot_index]
            if assignment.entry is None:
                parts.append(f"{slot.term!r}: (unresolved)")
            else:
                parts.append(assignment.entry.describe())
        return "; ".join(parts)


@dataclass
class LookupResult:
    """Everything Step 1 produces for one query."""

    query: SodaQuery
    slots: list
    interpretations: list
    complexity: int
    ignored_terms: tuple = ()
    truncated: bool = False

    def classification_summary(self) -> dict:
        """term -> sorted list of sources found (Fig. 5 reproduction)."""
        summary: dict = {}
        for slot in self.slots:
            if slot.term is None:
                continue
            sources = sorted({e.source.value for e in slot.alternatives})
            summary[slot.term] = sources
        return summary


class Lookup:
    """The lookup step, bound to the two indexes of one warehouse."""

    def __init__(
        self,
        classification: ClassificationIndex,
        inverted: InvertedIndex,
        max_interpretations: int = 200,
    ) -> None:
        self._classification = classification
        self._inverted = inverted
        self._max_interpretations = max_interpretations
        # term -> tuple[EntryPoint] memos; valid while both indexes keep
        # the version they had when the entry was cached
        self._alternatives_cache: dict[str, tuple] = {}
        self._metadata_cache: dict[str, tuple] = {}
        self._cache_stamp = (classification.version, inverted.version)

    def _check_cache_stamp(self) -> None:
        """Drop term memos when either underlying index has changed."""
        stamp = (self._classification.version, self._inverted.version)
        if stamp != self._cache_stamp:
            self._alternatives_cache.clear()
            self._metadata_cache.clear()
            self._cache_stamp = stamp

    # ------------------------------------------------------------------
    def run(self, query: SodaQuery) -> LookupResult:
        """Execute Step 1 for a parsed query."""
        slots: list = []
        ignored: list = []

        for words in query.keywords:
            segments, unknown = self.segment_words(list(words))
            ignored.extend(unknown)
            for term in segments:
                slots.append(
                    Slot(
                        kind="keyword",
                        term=term,
                        alternatives=tuple(self.alternatives(term)),
                    )
                )

        for comparison in query.comparisons:
            slots.extend(self._operator_slots(comparison, ignored))
        for range_condition in query.ranges:
            slots.extend(self._operator_slots(range_condition, ignored))

        for aggregation in query.aggregations:
            if aggregation.argument is None:
                slots.append(
                    Slot(kind="aggregation", term=None, alternatives=(),
                         payload=aggregation)
                )
            else:
                slots.append(
                    Slot(
                        kind="aggregation",
                        term=aggregation.argument,
                        alternatives=tuple(
                            self.metadata_alternatives(aggregation.argument)
                        ),
                        payload=aggregation,
                    )
                )

        for term in query.group_by:
            slots.append(
                Slot(
                    kind="groupby",
                    term=term,
                    alternatives=tuple(self.metadata_alternatives(term)),
                )
            )

        interpretations, truncated = self._product(slots)
        complexity = 1
        for slot in slots:
            complexity *= slot.option_count()

        return LookupResult(
            query=query,
            slots=slots,
            interpretations=interpretations,
            complexity=complexity,
            ignored_terms=tuple(ignored),
            truncated=truncated,
        )

    # ------------------------------------------------------------------
    def segment_words(self, words: list) -> tuple:
        """Longest-word-combination segmentation (Section 4.2.2).

        Returns ``(segments, unknown_words)``.  At each position the
        longest phrase found in either index wins; unmatched single
        words are ignored (the paper: "*and* might be unknown and we
        therefore ignore it").
        """
        max_window = max(self._classification.max_term_words, 3)
        segments: list = []
        unknown: list = []
        position = 0
        while position < len(words):
            matched = False
            limit = min(max_window, len(words) - position)
            for size in range(limit, 0, -1):
                phrase = " ".join(words[position:position + size])
                if phrase in self._classification or self._inverted.lookup_phrase(
                    phrase
                ):
                    segments.append(phrase)
                    position += size
                    matched = True
                    break
            if not matched:
                unknown.append(words[position])
                position += 1
        return segments, unknown

    def alternatives(self, term: str) -> list:
        """All entry points of one term (metadata + base data), memoized."""
        self._check_cache_stamp()
        cached = self._alternatives_cache.get(term)
        if cached is None:
            if _METRICS.enabled:
                _MEMO_MISSES.inc()
            found = list(self.metadata_alternatives(term))
            found.extend(self.base_data_alternatives(term))
            cached = tuple(sorted(found, key=EntryPoint.sort_key))
            self._alternatives_cache[term] = cached
        elif _METRICS.enabled:
            _MEMO_HITS.inc()
        return list(cached)

    def metadata_alternatives(self, term: str) -> list:
        """Entry points of *term* in the classification index only."""
        self._check_cache_stamp()
        cached = self._metadata_cache.get(term)
        if cached is None:
            if _METRICS.enabled:
                _MEMO_MISSES.inc()
            cached = tuple(
                sorted(
                    (
                        EntryPoint(
                            term=term, source=match.source, node=match.node
                        )
                        for match in self._classification.lookup(term)
                    ),
                    key=EntryPoint.sort_key,
                )
            )
            self._metadata_cache[term] = cached
        elif _METRICS.enabled:
            _MEMO_HITS.inc()
        return list(cached)

    def base_data_alternatives(self, term: str) -> list:
        """Entry points of *term* in the inverted index, one per column."""
        seen: set = set()
        found: list = []
        for posting in self._inverted.lookup_phrase(term):
            key = (posting.table, posting.column)
            if key in seen:
                continue
            seen.add(key)
            found.append(
                EntryPoint(
                    term=term,
                    source=EntrySource.BASE_DATA,
                    node=column_uri(posting.table, posting.column),
                    table=posting.table,
                    column=posting.column,
                )
            )
        return sorted(found, key=EntryPoint.sort_key)

    # ------------------------------------------------------------------
    def _operator_slots(self, operator, ignored: list) -> list:
        """Slots for a comparison/range: leading keywords + the operand."""
        slots: list = []
        segments, unknown = self.segment_words(list(operator.left_words))
        ignored.extend(unknown)
        if segments:
            for term in segments[:-1]:
                slots.append(
                    Slot(
                        kind="keyword",
                        term=term,
                        alternatives=tuple(self.alternatives(term)),
                    )
                )
            operand = segments[-1]
            kind = "range" if isinstance(operator, RangeCondition) else "comparison"
            slots.append(
                Slot(
                    kind=kind,
                    term=operand,
                    alternatives=tuple(self.metadata_alternatives(operand)),
                    payload=operator,
                )
            )
        else:
            kind = "range" if isinstance(operator, RangeCondition) else "comparison"
            slots.append(Slot(kind=kind, term=None, alternatives=(), payload=operator))
        return slots

    def _product(self, slots: list) -> tuple:
        """Cartesian product of slot alternatives, capped for safety."""
        option_lists: list = []
        for index, slot in enumerate(slots):
            if slot.alternatives:
                option_lists.append(
                    [Assignment(index, entry) for entry in slot.alternatives]
                )
            else:
                option_lists.append([Assignment(index, None)])

        interpretations: list = []
        truncated = False
        for combo in itertools.product(*option_lists):
            if len(interpretations) >= self._max_interpretations:
                truncated = True
                break
            interpretations.append(Interpretation(assignments=tuple(combo)))
        return interpretations, truncated
