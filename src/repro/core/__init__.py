"""SODA core: the staged keyword-to-SQL search pipeline."""

from repro.core.evaluation import (
    PrecisionRecall,
    compare_results,
    evaluate_sql,
    match_columns,
)
from repro.core.feedback import FeedbackStore
from repro.core.filters import FiltersResult, FiltersStep
from repro.core.input_patterns import parse_query
from repro.core.lookup import EntryPoint, Interpretation, Lookup, LookupResult
from repro.core.patterns import (
    DEFAULT_RESOLVER,
    PATTERN_SOURCES,
    build_default_library,
)
from repro.core.query import Aggregation, Comparison, RangeCondition, SodaQuery
from repro.core.ranking import (
    SOURCE_SCORES,
    STRATEGIES,
    rank,
    score_interpretation,
    score_interpretation_specificity,
)
from repro.core.pipeline import (
    PipelineStep,
    SearchContext,
    SearchPipeline,
)
from repro.core.results import ResultEntry, ResultPage, render_page
from repro.core.serving import SearchSession
from repro.core.soda import (
    ScoredStatement,
    SearchResult,
    Soda,
    SodaConfig,
    StepTimings,
)
from repro.core.sqlgen import GeneratedStatement, SqlGenerator
from repro.core.tables import JoinEdge, TablesResult, TablesStep

__all__ = [
    "Aggregation",
    "Comparison",
    "DEFAULT_RESOLVER",
    "EntryPoint",
    "FeedbackStore",
    "FiltersResult",
    "FiltersStep",
    "GeneratedStatement",
    "Interpretation",
    "JoinEdge",
    "Lookup",
    "LookupResult",
    "PATTERN_SOURCES",
    "PipelineStep",
    "PrecisionRecall",
    "RangeCondition",
    "ResultEntry",
    "ResultPage",
    "SOURCE_SCORES",
    "STRATEGIES",
    "ScoredStatement",
    "SearchContext",
    "SearchPipeline",
    "SearchResult",
    "SearchSession",
    "Soda",
    "SodaConfig",
    "SodaQuery",
    "SqlGenerator",
    "StepTimings",
    "TablesResult",
    "TablesStep",
    "build_default_library",
    "compare_results",
    "evaluate_sql",
    "match_columns",
    "parse_query",
    "rank",
    "render_page",
    "score_interpretation",
    "score_interpretation_specificity",
]
