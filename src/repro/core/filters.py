"""Step 4 — Filters: collect filter conditions (paper Section 3, Step 4).

Filters come from three places:

* **the input query** — comparison operators (``salary >= 100000``),
  range conditions and date literals, whose operand terms are resolved
  down the refinement chain to a physical column;
* **the base data** — a keyword found through the inverted index becomes
  an equality-ish predicate on the posting's column (``Zurich`` →
  ``addresses.city LIKE '%zurich%'``);
* **the metadata** — business terms carry metadata-defined predicates
  ("wealthy individuals" → a salary threshold stored in the ontology).
"""

from __future__ import annotations

import datetime
from collections import deque
from dataclasses import dataclass

from repro.graph.node import Text, Vocab
from repro.graph.triples import TripleStore
from repro.core.lookup import Interpretation, Slot
from repro.core.query import Comparison, RangeCondition
from repro.core.tables import TablesResult
from repro.core.query import SodaQuery
from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    IsNull,
    Like,
    Literal,
)
from repro.sqlengine.catalog import Catalog

#: column-name convention of bi-temporal validity intervals
_VALID_FROM = "valid_from_dt"
_VALID_TO = "valid_to_dt"


@dataclass(frozen=True)
class FilterCondition:
    """One WHERE-clause predicate plus the table it constrains."""

    table: str
    expr: Expr
    origin: str  # 'base_data' | 'input' | 'metadata' | 'temporal'

    def sort_key(self) -> tuple:
        return (self.table, self.expr.to_sql())


@dataclass(frozen=True)
class ResolvedAggregation:
    """An aggregate ready for SQL generation: func over table.column."""

    func: str
    table: str | None  # None: count(*)
    column: str | None


@dataclass(frozen=True)
class ResolvedGroupBy:
    table: str
    column: str


@dataclass
class FiltersResult:
    """Output of Step 4 for one interpretation."""

    filters: list
    aggregations: list  # ResolvedAggregation
    group_by: list  # ResolvedGroupBy
    unresolved: list  # slot terms that could not be resolved


#: Edges walked when resolving a metadata entry down to a physical column.
_RESOLUTION_EDGES = (
    Vocab.REFINES,
    Vocab.CLASSIFIES,
    Vocab.HAS_ATTRIBUTE,
    Vocab.SYNONYM_OF,
)


class FiltersStep:
    """Step 4, bound to one metadata graph and physical catalog."""

    def __init__(self, store: TripleStore, catalog: Catalog) -> None:
        self._store = store
        self._catalog = catalog

    # ------------------------------------------------------------------
    def run(
        self,
        interpretation: Interpretation,
        slots: list,
        tables_result: TablesResult,
        query: SodaQuery | None = None,
    ) -> FiltersResult:
        allowed = set(tables_result.tables)
        filters: list = []
        aggregations: list = []
        group_by: list = []
        unresolved: list = []

        for assignment in interpretation.assignments:
            slot = slots[assignment.slot_index]
            entry = assignment.entry

            if slot.kind == "keyword":
                if entry is not None and entry.is_base_data:
                    filters.append(self._base_data_filter(entry))
                continue

            if slot.kind in ("comparison", "range"):
                location = self._resolve_column(slot, entry, allowed)
                if location is None:
                    unresolved.append(slot.term or "?")
                    continue
                table, column = location
                filters.append(
                    self._operator_filter(table, column, slot.payload)
                )
                continue

            if slot.kind == "aggregation":
                payload = slot.payload
                if slot.term is None:
                    aggregations.append(
                        ResolvedAggregation(func=payload.func, table=None,
                                            column=None)
                    )
                    continue
                location = self._resolve_column(slot, entry, allowed)
                if location is None:
                    unresolved.append(slot.term)
                    continue
                aggregations.append(
                    ResolvedAggregation(
                        func=payload.func, table=location[0], column=location[1]
                    )
                )
                continue

            if slot.kind == "groupby":
                location = self._resolve_column(slot, entry, allowed)
                if location is None:
                    unresolved.append(slot.term or "?")
                    continue
                group_by.append(
                    ResolvedGroupBy(table=location[0], column=location[1])
                )

        # temporal anchor: restrict historized tables to rows valid at the
        # requested date ("valid at date(...)", the paper's future work)
        if query is not None and query.valid_at is not None:
            filters.extend(
                self._valid_at_filters(tables_result.tables, query.valid_at)
            )

        # metadata-defined predicates from business terms
        for expansion in tables_result.expansions:
            for business in expansion.business_filters:
                filters.append(
                    FilterCondition(
                        table=business.table,
                        expr=self._business_expr(business),
                        origin="metadata",
                    )
                )

        deduped = []
        seen: set = set()
        for condition in filters:
            key = condition.expr.to_sql()
            if key not in seen:
                seen.add(key)
                deduped.append(condition)

        return FiltersResult(
            filters=sorted(deduped, key=FilterCondition.sort_key),
            aggregations=aggregations,
            group_by=group_by,
            unresolved=unresolved,
        )

    # ------------------------------------------------------------------
    # filter constructors
    # ------------------------------------------------------------------
    @staticmethod
    def _base_data_filter(entry) -> FilterCondition:
        expr = Like(
            ColumnRef(entry.table, entry.column),
            Literal(f"%{entry.term}%"),
        )
        return FilterCondition(table=entry.table, expr=expr, origin="base_data")

    @staticmethod
    def _operator_filter(table: str, column: str, payload) -> FilterCondition:
        ref = ColumnRef(table, column)
        if isinstance(payload, RangeCondition):
            expr: Expr = Between(
                ref, Literal(_normalize(payload.low)), Literal(_normalize(payload.high))
            )
        else:
            assert isinstance(payload, Comparison)
            if payload.op == "like":
                expr = Like(ref, Literal(f"%{payload.value}%"))
            else:
                expr = BinaryOp(payload.op, ref, Literal(_normalize(payload.value)))
        return FilterCondition(table=table, expr=expr, origin="input")

    def _valid_at_filters(self, tables, anchor: datetime.date) -> list:
        """Validity-interval predicates for every historized table."""
        conditions: list = []
        for table_name in sorted(tables):
            if not self._catalog.has_table(table_name):
                continue
            table = self._catalog.table(table_name)
            if not (table.has_column(_VALID_FROM) and table.has_column(_VALID_TO)):
                continue
            from_ref = ColumnRef(table_name, _VALID_FROM)
            to_ref = ColumnRef(table_name, _VALID_TO)
            expr: Expr = BinaryOp(
                "AND",
                BinaryOp("<=", from_ref, Literal(anchor)),
                BinaryOp(
                    "OR",
                    IsNull(to_ref),
                    BinaryOp(">=", to_ref, Literal(anchor)),
                ),
            )
            conditions.append(
                FilterCondition(table=table_name, expr=expr, origin="temporal")
            )
        return conditions

    def _business_expr(self, business) -> Expr:
        ref = ColumnRef(business.table, business.column)
        value = _parse_metadata_value(business.value)
        if business.op == "like":
            return Like(ref, Literal(f"%{value}%"))
        return BinaryOp(business.op, ref, Literal(value))

    # ------------------------------------------------------------------
    # column resolution
    # ------------------------------------------------------------------
    def _resolve_column(self, slot: Slot, entry, allowed: set):
        """Resolve a slot's operand to a (table, column) pair.

        Metadata entries are walked down the refinement chain; columns in
        already-collected tables are preferred.  With no metadata entry,
        the term is matched against column names of the collected tables
        (underscores for spaces) as a last resort.
        """
        if entry is not None and not entry.is_base_data:
            candidates = self._physical_columns_from(entry.node)
            preferred = [c for c in candidates if c[0] in allowed]
            pool = preferred or candidates
            if pool:
                return sorted(pool)[0]
        if entry is not None and entry.is_base_data:
            return (entry.table, entry.column)
        if slot.term is not None:
            guess = slot.term.replace(" ", "_")
            for table_name in sorted(allowed):
                if not self._catalog.has_table(table_name):
                    continue
                table = self._catalog.table(table_name)
                if table.has_column(guess):
                    return (table_name, guess)
        return None

    def _physical_columns_from(self, node: str) -> list:
        """All physical columns reachable over refinement edges."""
        found: list = []
        seen = {node}
        queue = deque([node])
        while queue:
            current = queue.popleft()
            if self._store.has_type(current, Vocab.PHYSICAL_COLUMN):
                column_label = self._store.object(current, Vocab.COLUMNNAME)
                table_node = self._store.object(current, Vocab.BELONGS_TO)
                if isinstance(column_label, Text) and isinstance(table_node, str):
                    table_label = self._store.object(table_node, Vocab.TABLENAME)
                    if isinstance(table_label, Text):
                        location = (table_label.value, column_label.value)
                        if location not in found:
                            found.append(location)
                continue
            for predicate in _RESOLUTION_EDGES:
                for obj in self._store.objects(current, predicate):
                    if isinstance(obj, str) and obj not in seen:
                        seen.add(obj)
                        queue.append(obj)
        return found


def _normalize(value: object) -> object:
    """Operator values: keep dates/numbers, pass strings through."""
    if isinstance(value, (datetime.date, int, float)):
        return value
    return str(value)


def _parse_metadata_value(raw: str) -> object:
    """Business-term filter values are stored as text; recover the type."""
    text = raw.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    try:
        return datetime.date.fromisoformat(text)
    except ValueError:
        pass
    return text
