"""Precision/recall of generated statements against gold-standard SQL.

The paper (Section 5.2.1): *"To compute precision, we compared the result
tuples of a produced SQL statement of SODA with the result tuples of the
Gold Standard query. A precision of 1.0 means that a SQL statement
produced by SODA returned only tuples that also appear in the Gold
Standard result; a recall of 1.0 means it returned all tuples of the
Gold Standard result."*

Generated and gold statements rarely share an identical column list, so
tuples are compared on their **common columns**: a SODA output column
matches a gold column if the labels are equal, or — uniquely — if their
last dotted components agree (``individuals.family_nm`` vs
``family_nm``).  A gold standard may consist of several statements (the
paper's Q5.0 gold is "two separate 3-way join queries"); a SODA tuple
counts as correct if its projection lies in *every* gold statement that
shares columns with it, and recall is measured over the union of all
gold tuples.  Both result sets are compared as sets (duplicates
collapse).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Sequence

from repro.errors import EvaluationError
from repro.sqlengine.database import Database
from repro.sqlengine.executor import ResultSet


@dataclass(frozen=True)
class PrecisionRecall:
    """The evaluation outcome for one generated statement."""

    precision: float
    recall: float
    soda_rows: int
    gold_rows: int

    @property
    def is_zero(self) -> bool:
        return self.precision == 0.0 and self.recall == 0.0

    @property
    def is_positive(self) -> bool:
        return self.precision > 0.0 and self.recall > 0.0


ZERO = PrecisionRecall(precision=0.0, recall=0.0, soda_rows=0, gold_rows=0)


def normalize_value(value: object) -> object:
    """Canonical form for tuple comparison across engines/statements."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return round(float(value), 9)
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


def _normalize_label(label: str) -> str:
    return label.strip().lower()


def _suffix(label: str) -> str:
    return _normalize_label(label).rsplit(".", 1)[-1]


def match_columns(
    soda_columns: Sequence[str], gold_columns: Sequence[str]
) -> list:
    """Pair up comparable columns; returns [(soda_index, gold_index)].

    Exact label matches win; remaining gold columns match a SODA column
    by dotted-suffix only when the suffix is unambiguous on both sides.
    """
    soda_norm = [_normalize_label(c) for c in soda_columns]
    gold_norm = [_normalize_label(c) for c in gold_columns]
    pairs: list = []
    used_soda: set = set()
    used_gold: set = set()

    for gold_index, gold_label in enumerate(gold_norm):
        if gold_label in soda_norm:
            soda_index = soda_norm.index(gold_label)
            if soda_index not in used_soda:
                pairs.append((soda_index, gold_index))
                used_soda.add(soda_index)
                used_gold.add(gold_index)

    soda_suffixes: dict = {}
    for index, label in enumerate(soda_norm):
        soda_suffixes.setdefault(_suffix(label), []).append(index)
    gold_suffixes: dict = {}
    for index, label in enumerate(gold_norm):
        gold_suffixes.setdefault(_suffix(label), []).append(index)

    for gold_index, gold_label in enumerate(gold_norm):
        if gold_index in used_gold:
            continue
        suffix = _suffix(gold_label)
        soda_candidates = [
            i for i in soda_suffixes.get(suffix, []) if i not in used_soda
        ]
        if len(soda_candidates) == 1 and len(gold_suffixes[suffix]) == 1:
            pairs.append((soda_candidates[0], gold_index))
            used_soda.add(soda_candidates[0])
            used_gold.add(gold_index)

    return sorted(pairs)


def _project(rows: list, indexes: list) -> set:
    return {
        tuple(normalize_value(row[i]) for i in indexes)
        for row in rows
    }


def compare_results(soda: ResultSet, golds: Sequence[ResultSet]) -> PrecisionRecall:
    """Compute precision/recall of *soda* against the gold statement(s)."""
    if not golds:
        raise EvaluationError("at least one gold result is required")

    gold_total_rows = sum(len({tuple(map(normalize_value, r)) for r in g.rows})
                          for g in golds)
    soda_distinct = {tuple(map(normalize_value, row)) for row in soda.rows}

    comparable = []
    for gold in golds:
        pairs = match_columns(soda.columns, gold.columns)
        if pairs:
            comparable.append((gold, pairs))

    if not comparable:
        return PrecisionRecall(
            precision=0.0,
            recall=0.0,
            soda_rows=len(soda_distinct),
            gold_rows=gold_total_rows,
        )

    if not soda_distinct:
        if gold_total_rows == 0:
            return PrecisionRecall(1.0, 1.0, 0, 0)
        return PrecisionRecall(0.0, 0.0, 0, gold_total_rows)

    # precision: a SODA tuple is correct iff its projection appears in
    # every comparable gold statement
    correct = 0
    gold_projections = []
    for gold, pairs in comparable:
        soda_indexes = [s for s, __ in pairs]
        gold_indexes = [g for __, g in pairs]
        gold_projections.append(
            (soda_indexes, _project(gold.rows, gold_indexes))
        )
    soda_rows_normalized = [
        tuple(normalize_value(v) for v in row) for row in soda.rows
    ]
    seen_rows: set = set()
    for row in soda_rows_normalized:
        if row in seen_rows:
            continue
        seen_rows.add(row)
        ok = all(
            tuple(row[i] for i in soda_indexes) in gold_set
            for soda_indexes, gold_set in gold_projections
        )
        if ok:
            correct += 1
    precision = correct / len(soda_distinct)

    # recall: fraction of gold tuples (across all statements) whose
    # projection is covered by SODA's projection on the shared columns
    covered = 0
    counted = 0
    for gold, pairs in comparable:
        soda_indexes = [s for s, __ in pairs]
        gold_indexes = [g for __, g in pairs]
        soda_projection = {
            tuple(row[i] for i in soda_indexes) for row in soda_rows_normalized
        }
        gold_rows_distinct = {
            tuple(normalize_value(row[i]) for i in gold_indexes)
            for row in gold.rows
        }
        counted += len(gold_rows_distinct)
        covered += sum(1 for row in gold_rows_distinct if row in soda_projection)
    # gold statements with no comparable columns count as uncovered
    uncomparable_rows = gold_total_rows - sum(
        len({tuple(normalize_value(v) for v in row) for row in gold.rows})
        for gold, __ in comparable
    )
    denominator = counted + max(0, uncomparable_rows)
    recall = covered / denominator if denominator else 1.0

    return PrecisionRecall(
        precision=precision,
        recall=recall,
        soda_rows=len(soda_distinct),
        gold_rows=gold_total_rows,
    )


def evaluate_sql(
    database: Database,
    soda_sql: str,
    gold_sqls: Sequence[str],
    estimated_rows: int | None = None,
    max_rows: int = 1_000_000,
) -> PrecisionRecall:
    """Execute generated + gold statements and compare the results.

    Statements whose estimated result exceeds *max_rows* (disconnected
    cross products) are scored 0/0 without executing — the paper counts
    such statements in its "#Results P,R = 0" column.
    """
    golds = [database.execute(sql) for sql in gold_sqls]
    if estimated_rows is not None and estimated_rows > max_rows:
        gold_rows = sum(len(g.rows) for g in golds)
        return PrecisionRecall(0.0, 0.0, 0, gold_rows)
    soda_result = database.execute(soda_sql)
    return compare_results(soda_result, golds)
