"""Relevance feedback on generated statements (paper Section 6.3).

*"Similarly [to Ortega-Binderberger et al.], SODA presents several
possible solutions to its users and allows them to like (or dislike)
each result."*  This module implements that loop: liking or disliking a
generated statement shifts its score — and, more usefully, the score of
*similar* statements — in future searches.

Similarity is structural: two statements are compared on their table
sets, so liking one query over ``agreements_td`` also promotes other
agreement interpretations of an ambiguous keyword ("Credit Suisse").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlengine.parser import parse_select


@dataclass(frozen=True)
class FeedbackEntry:
    """One recorded judgement."""

    sql: str
    tables: frozenset
    liked: bool


def _tables_of(sql: str) -> frozenset:
    statement = parse_select(sql)
    names = {table.name for table in statement.tables}
    names.update(join.table.name for join in statement.joins)
    return frozenset(names)


class FeedbackStore:
    """Accumulates likes/dislikes and scores new statements against them.

    >>> store = FeedbackStore()
    >>> store.like("SELECT * FROM agreements_td")
    >>> store.bonus("SELECT * FROM agreements_td, parties") > 0
    True
    """

    #: score shift applied at perfect similarity
    like_weight = 0.25
    dislike_weight = 0.25

    def __init__(self) -> None:
        self._entries: list = []
        self._version = 0

    # ------------------------------------------------------------------
    def like(self, sql: str) -> None:
        """Record that the user accepted this statement."""
        self._entries.append(
            FeedbackEntry(sql=sql, tables=_tables_of(sql), liked=True)
        )
        self._version += 1

    def dislike(self, sql: str) -> None:
        """Record that the user rejected this statement."""
        self._entries.append(
            FeedbackEntry(sql=sql, tables=_tables_of(sql), liked=False)
        )
        self._version += 1

    def clear(self) -> None:
        self._entries.clear()
        self._version += 1

    @property
    def version(self) -> int:
        """Bumped on every like/dislike/clear (result-cache token)."""
        return self._version

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def bonus(self, sql: str) -> float:
        """Score shift for *sql* given the recorded judgements.

        Positive when similar statements were liked, negative when
        disliked; zero without feedback.
        """
        if not self._entries:
            return 0.0
        tables = _tables_of(sql)
        shift = 0.0
        for entry in self._entries:
            similarity = _jaccard(tables, entry.tables)
            if entry.liked:
                shift += self.like_weight * similarity
            else:
                shift -= self.dislike_weight * similarity
        return shift


def _jaccard(left: frozenset, right: frozenset) -> float:
    if not left or not right:
        return 0.0
    return len(left & right) / len(left | right)
