"""Step 3 — Tables: discover tables, joins and bridge tables.

Faithful to Section 4.2.1 "Application in SODA":

1. *Tables pass* — from every entry point, recursively follow all
   outgoing schema edges; at every node test the Table, Column and
   Inheritance-Child patterns (plus the business-term patterns).  Tables
   found this way "represent the entry points".
2. *Inheritance closure* — whenever a collected table is an inheritance
   child, the parent table is collected too ("this table is needed to
   produce correct SQL statements").
3. *Join pass* — traverse again, now also over join edges (bounded
   depth: the paper notes join paths between entities "too far apart"
   are not found), testing the Join-Relationship pattern; the discovered
   join conditions form a table-level join graph.
4. *Join selection* — keep only joins on a direct path between the
   entry points (Fig. 9); already-selected edges are preferred so the
   query stays small.  Bridge tables (physical N-to-N implementations)
   enter naturally as path intermediates; bridges between inheritance
   *siblings* (Fig. 10) are the documented failure mode reproduced here.
5. *Sibling pruning* — when two mutually-exclusive inheritance children
   are present, only the first child keeps its parent join; the others
   must connect through other paths (typically a sibling bridge), which
   is exactly what degrades Q5.0 in the paper.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import networkx as nx

from repro.graph.node import Text, Vocab
from repro.graph.pattern import PatternLibrary, match_pattern
from repro.graph.traversal import iter_reachable
from repro.graph.triples import TripleStore
from repro.core.lookup import EntryPoint, Interpretation
from repro.obs.metrics import registry as _metrics_registry
from repro.warehouse.graphbuilder import JOIN_EDGES, SCHEMA_EDGES

_METRICS = _metrics_registry()
_EXPANSION_HITS = _METRICS.counter("tables.memo.expansion_hits")
_EXPANSION_MISSES = _METRICS.counter("tables.memo.expansion_misses")
_PLAN_HITS = _METRICS.counter("tables.memo.plan_hits")
_PLAN_MISSES = _METRICS.counter("tables.memo.plan_misses")


@dataclass(frozen=True)
class JoinEdge:
    """One selected join condition between two physical tables."""

    name: str
    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def sort_key(self) -> tuple:
        return (self.left_table, self.right_table, self.name)

    def condition_sql(self) -> str:
        return (
            f"{self.left_table}.{self.left_column} = "
            f"{self.right_table}.{self.right_column}"
        )


@dataclass(frozen=True)
class BusinessFilter:
    """A metadata-defined predicate collected from a business term."""

    table: str
    column: str
    op: str
    value: str


@dataclass(frozen=True)
class BusinessAggregation:
    """A metadata-defined aggregation collected from a business term."""

    func: str
    table: str
    column: str


@dataclass
class EntryExpansion:
    """What the tables pass found for one entry point."""

    entry: EntryPoint
    tables: set = field(default_factory=set)
    columns: list = field(default_factory=list)  # (table, column) hits
    business_filters: list = field(default_factory=list)
    business_aggregations: list = field(default_factory=list)


@dataclass
class TablesResult:
    """The output of Step 3 for one interpretation."""

    expansions: list
    tables: list  # final FROM set, sorted
    joins: list  # selected JoinEdge list, sorted
    components: list  # connected components (sets of tables) under joins
    inheritance_parents: dict  # child table -> parent table

    @property
    def is_connected(self) -> bool:
        return len(self.components) <= 1

    def entry_tables(self) -> set:
        found: set = set()
        for expansion in self.expansions:
            found |= expansion.tables
        return found


class TablesStep:
    """Step 3, bound to one metadata graph and pattern library."""

    def __init__(
        self,
        store: TripleStore,
        library: PatternLibrary,
        join_depth: int = 16,
    ) -> None:
        self._store = store
        self._library = library
        self._join_depth = join_depth
        self._children_cache: set | None = None
        # memos, dropped whenever the metadata graph changes:
        #   entry point -> EntryExpansion (the schema-edge traversal)
        #   frozenset(entry tables) -> (parents, tables, joins, components)
        self._expansion_cache: dict = {}
        self._plan_cache: dict = {}
        self._graph_version = store.version

    def _check_graph_version(self) -> None:
        """Invalidate all memos after graph mutations (e.g. annotate_join)."""
        if self._store.version != self._graph_version:
            self._expansion_cache.clear()
            self._plan_cache.clear()
            self._children_cache = None
            self._graph_version = self._store.version

    def cache_stats(self) -> dict:
        return {
            "expansions": len(self._expansion_cache),
            "join_plans": len(self._plan_cache),
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, interpretation: Interpretation) -> TablesResult:
        self._check_graph_version()
        expansions = [
            self.expand_entry(entry) for entry in interpretation.entry_points()
        ]

        preliminary: set = set()
        for expansion in expansions:
            preliminary |= expansion.tables

        plan = self._join_plan(preliminary)
        inheritance_parents, final_tables, selected, components = plan
        return TablesResult(
            expansions=expansions,
            tables=list(final_tables),
            joins=list(selected),
            components=[set(component) for component in components],
            inheritance_parents=dict(inheritance_parents),
        )

    def _join_plan(self, preliminary: set) -> tuple:
        """The join-discovery outcome for one entry-table set (memoized).

        Join discovery (graph traversal + shortest paths) only depends
        on the set of preliminary tables, which repeats heavily across
        interpretations and across the queries of a batch.
        """
        key = frozenset(preliminary)
        cached = self._plan_cache.get(key)
        if cached is None:
            if _METRICS.enabled:
                _PLAN_MISSES.inc()
            working = set(preliminary)
            inheritance_parents = self._inheritance_closure(working)
            join_graph = self._discover_join_graph(sorted(working))
            pruned = self._prune_sibling_parent_edges(
                join_graph, working, inheritance_parents
            )
            selected, final_tables = self._select_joins(pruned, working)
            components = self._components(final_tables, selected)
            cached = (
                inheritance_parents,
                sorted(final_tables),
                sorted(selected, key=JoinEdge.sort_key),
                components,
            )
            self._plan_cache[key] = cached
        elif _METRICS.enabled:
            _PLAN_HITS.inc()
        return cached

    # ------------------------------------------------------------------
    # tables pass
    # ------------------------------------------------------------------
    def expand_entry(self, entry: EntryPoint) -> EntryExpansion:
        """Traverse schema edges from *entry*, testing the basic patterns.

        Memoized per entry point: the traversal depends only on the
        metadata graph, so the same term resolution across ranked
        interpretations (or across a query batch) is computed once.
        """
        self._check_graph_version()
        cached = self._expansion_cache.get(entry)
        if cached is not None:
            if _METRICS.enabled:
                _EXPANSION_HITS.inc()
            return cached
        if _METRICS.enabled:
            _EXPANSION_MISSES.inc()
        expansion = EntryExpansion(entry=entry)
        follow = _make_follow(SCHEMA_EDGES)
        for node, __ in iter_reachable(self._store, entry.node, follow=follow):
            self._test_patterns_at(node, expansion)
        self._expansion_cache[entry] = expansion
        return expansion

    def _test_patterns_at(self, node: str, expansion: EntryExpansion) -> None:
        store, library = self._store, self._library

        for binding in match_pattern(store, library.get("table"), node, library):
            table_label = binding.get("y")
            if isinstance(table_label, Text):
                expansion.tables.add(table_label.value)

        for binding in match_pattern(store, library.get("column"), node, library):
            column_label = binding.get("y")
            table_node = binding.get("z")
            if isinstance(column_label, Text) and isinstance(table_node, str):
                table_label = store.object(table_node, Vocab.TABLENAME)
                if isinstance(table_label, Text):
                    expansion.tables.add(table_label.value)
                    hit = (table_label.value, column_label.value)
                    if hit not in expansion.columns:
                        expansion.columns.append(hit)

        for binding in match_pattern(
            store, library.get("business_filter"), node, library
        ):
            column_node = binding.get("c")
            op = binding.get("op")
            value = binding.get("v")
            table, column = self._column_location(column_node)
            if table is not None:
                business = BusinessFilter(
                    table=table, column=column, op=op.value, value=value.value
                )
                if business not in expansion.business_filters:
                    expansion.business_filters.append(business)

        for binding in match_pattern(
            store, library.get("business_aggregation"), node, library
        ):
            column_node = binding.get("c")
            func = binding.get("f")
            table, column = self._column_location(column_node)
            if table is not None:
                business_agg = BusinessAggregation(
                    func=func.value, table=table, column=column
                )
                if business_agg not in expansion.business_aggregations:
                    expansion.business_aggregations.append(business_agg)

    def _column_location(self, column_node) -> tuple:
        """(table name, column name) of a physical column node."""
        if not isinstance(column_node, str):
            return None, None
        column_label = self._store.object(column_node, Vocab.COLUMNNAME)
        table_node = self._store.object(column_node, Vocab.BELONGS_TO)
        if not isinstance(column_label, Text) or not isinstance(table_node, str):
            return None, None
        table_label = self._store.object(table_node, Vocab.TABLENAME)
        if not isinstance(table_label, Text):
            return None, None
        return table_label.value, column_label.value

    # ------------------------------------------------------------------
    # inheritance closure
    # ------------------------------------------------------------------
    def _inheritance_closure(self, tables: set) -> dict:
        """Add parents of collected children; returns child -> parent."""
        parents: dict = {}
        pattern = self._library.get("inheritance_child")
        frontier = list(sorted(tables))
        while frontier:
            table_name = frontier.pop()
            node = self._table_node(table_name)
            if node is None:
                continue
            for binding in match_pattern(self._store, pattern, node, self._library):
                parent_node = binding.get("p")
                if not isinstance(parent_node, str):
                    continue
                parent_label = self._store.object(parent_node, Vocab.TABLENAME)
                if not isinstance(parent_label, Text):
                    continue  # logical-layer inheritance: no physical table
                parents[table_name] = parent_label.value
                if parent_label.value not in tables:
                    tables.add(parent_label.value)
                    frontier.append(parent_label.value)
        return parents

    def _table_node(self, table_name: str) -> str | None:
        subjects = self._store.subjects(Vocab.TABLENAME, Text(table_name))
        return subjects[0] if subjects else None

    # ------------------------------------------------------------------
    # join pass
    # ------------------------------------------------------------------
    def _discover_join_graph(self, entry_tables: list) -> "nx.Graph":
        """Traverse join edges from entry tables; match Join-Relationship."""
        follow = _make_follow(SCHEMA_EDGES | JOIN_EDGES)
        pattern = self._library.get("join_relationship")
        graph = nx.Graph()
        seen_nodes: set = set()
        for table_name in entry_tables:
            graph.add_node(table_name)
            start = self._table_node(table_name)
            if start is None:
                continue
            for node, __ in iter_reachable(
                self._store, start, max_depth=self._join_depth, follow=follow
            ):
                if node in seen_nodes:
                    continue
                seen_nodes.add(node)
                for binding in match_pattern(self._store, pattern, node,
                                             self._library):
                    if self._store.object(node, Vocab.IGNORED) is not None:
                        continue
                    edge = self._join_edge_from_binding(node, binding)
                    if edge is None:
                        continue
                    self._add_join_edge(graph, edge)
        return graph

    def _join_edge_from_binding(self, join_node: str, binding: dict):
        left_table, left_column = self._column_location(binding.get("l"))
        right_table, right_column = self._column_location(binding.get("r"))
        if left_table is None or right_table is None:
            return None
        if left_table == right_table:
            return None  # self-joins are out of scope
        from repro.graph.node import local_name

        return JoinEdge(
            name=local_name(join_node),
            left_table=left_table,
            left_column=left_column,
            right_table=right_table,
            right_column=right_column,
        )

    @staticmethod
    def _add_join_edge(graph: "nx.Graph", edge: JoinEdge) -> None:
        u, v = edge.left_table, edge.right_table
        if graph.has_edge(u, v):
            payloads = graph.edges[u, v]["payloads"]
            if edge not in payloads:
                payloads.append(edge)
                payloads.sort(key=JoinEdge.sort_key)
        else:
            graph.add_edge(u, v, payloads=[edge], weight=1.0)

    # ------------------------------------------------------------------
    # sibling pruning (Fig. 10 failure mode)
    # ------------------------------------------------------------------
    def _prune_sibling_parent_edges(
        self, graph: "nx.Graph", tables: set, parents: dict
    ) -> "nx.Graph":
        """Keep the parent join only for the first sibling present."""
        pruned = graph.copy()
        children_by_parent: dict = {}
        for child, parent in sorted(parents.items()):
            children_by_parent.setdefault(parent, []).append(child)
        for parent, children in children_by_parent.items():
            present = [child for child in children if child in tables]
            for child in present[1:]:
                if pruned.has_edge(parent, child):
                    pruned.remove_edge(parent, child)
        return pruned

    # ------------------------------------------------------------------
    # join selection: direct paths between entry points (Fig. 9)
    # ------------------------------------------------------------------
    def _select_joins(self, graph: "nx.Graph", preliminary: set) -> tuple:
        final_tables = set(preliminary)
        selected: list = []
        selected_pairs: set = set()

        # Bridge tables (pure N-to-N link tables) are the *intended* way to
        # connect two entities, so paths through them are slightly
        # preferred over incidental attribute joins.
        bridges = self._bridge_tables(graph, self._all_inheritance_children())
        weights = {}
        for u, v in graph.edges:
            weight = 0.9 if (u in bridges or v in bridges) else 1.0
            weights[(min(u, v), max(u, v))] = weight

        def weight_fn(u, v, data):
            return weights[(min(u, v), max(u, v))]

        pairs = sorted(
            {
                (min(a, b), max(a, b))
                for a in preliminary
                for b in preliminary
                if a != b
            }
        )
        for source, target in pairs:
            if source not in graph or target not in graph:
                continue
            path = deterministic_shortest_path(
                graph, source, target, weight_fn
            )
            if path is None:
                continue
            for u, v in zip(path, path[1:]):
                key = (min(u, v), max(u, v))
                if key not in selected_pairs:
                    selected_pairs.add(key)
                    edge = graph.edges[u, v]["payloads"][0]
                    selected.append(edge)
                    weights[key] = 0.01  # prefer reusing selected edges
                final_tables.add(u)
                final_tables.add(v)
        return selected, final_tables

    @staticmethod
    def _bridge_tables(graph: "nx.Graph", children: set) -> set:
        """Tables that look like pure N-to-N link tables.

        A bridge has at least two outgoing foreign keys (it is the FK side
        of >= 2 join nodes), is never referenced by anyone else, and is
        not an inheritance child (children share the bridge *shape* but
        carry entity data).
        """
        fk_out: dict = {}
        referenced: set = set()
        for u, v in graph.edges:
            for payload in graph.edges[u, v]["payloads"]:
                fk_out.setdefault(payload.left_table, set()).add(payload.name)
                referenced.add(payload.right_table)
        return {
            table
            for table, joins in fk_out.items()
            if len(joins) >= 2
            and table not in referenced
            and table not in children
        }

    def _all_inheritance_children(self) -> set:
        """Table names that are children in any physical inheritance."""
        if self._children_cache is None:
            children: set = set()
            for node in self._store.subjects(Vocab.TYPE, Vocab.INHERITANCE_NODE):
                for child in self._store.objects(node, Vocab.INHERITANCE_CHILD):
                    if not isinstance(child, str):
                        continue
                    label = self._store.object(child, Vocab.TABLENAME)
                    if isinstance(label, Text):
                        children.add(label.value)
            self._children_cache = children
        return self._children_cache

    def _components(self, tables: set, joins: list) -> list:
        graph = nx.Graph()
        graph.add_nodes_from(tables)
        for join in joins:
            graph.add_edge(join.left_table, join.right_table)
        return sorted(
            (set(component) for component in nx.connected_components(graph)),
            key=lambda c: sorted(c)[0],
        )


def deterministic_shortest_path(
    graph: "nx.Graph", source: str, target: str, weight_fn
) -> "list | None":
    """Dijkstra with deterministic tie-breaking by node-name sequence.

    ``nx.shortest_path`` breaks equal-weight ties by adjacency iteration
    order, which inherits the process hash seed through the set-built
    join graph — so equally-good join paths could differ between runs
    unless ``PYTHONHASHSEED`` was pinned.  This variant orders the
    frontier heap by ``(cost, path)``: among equal-cost routes the
    lexicographically smallest table-name sequence always wins,
    independent of insertion or iteration order.  Returns the node list
    (like ``nx.shortest_path``) or ``None`` when *target* is
    unreachable.
    """
    if source == target:
        return [source]
    frontier: list = [(0.0, (source,))]
    settled: set = set()
    adjacency = graph.adj
    while frontier:
        cost, path = heapq.heappop(frontier)
        node = path[-1]
        if node == target:
            return list(path)
        if node in settled:
            continue
        settled.add(node)
        for neighbor in adjacency[node]:
            if neighbor in settled:
                continue
            step = weight_fn(node, neighbor, graph.edges[node, neighbor])
            heapq.heappush(frontier, (cost + step, path + (neighbor,)))
    return None


def _make_follow(allowed: frozenset):
    def follow(subject: str, predicate: str, obj: str) -> bool:
        return predicate in allowed

    return follow
