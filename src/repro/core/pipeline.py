"""The staged search pipeline (paper Figure 4, as an explicit engine).

``Soda.search`` used to be one hard-coded five-step method; it is now a
:class:`SearchPipeline` — an ordered list of :class:`PipelineStep`
objects that communicate through a shared :class:`SearchContext`:

``lookup -> rank -> tables -> filters -> sqlgen -> finalize -> execute``

Each step's wall-clock time is recorded into :class:`StepTimings` under
its ``timing_field`` (the fields of the Fig. 4 / Table 4 reproduction
are unchanged), and *hooks* run between steps, so callers can
instrument or early-terminate a search without touching step code.
The batch stages (tables/filters/sqlgen) process the ranked
interpretations in rank order, exactly like the old per-interpretation
loop, so results are identical statement-for-statement.

Early termination comes in two forms:

* ``SodaConfig.max_statements`` stops SQL generation once that many
  distinct statements exist (the top-ranked interpretations win);
* a hook registered with :meth:`SearchPipeline.add_hook` may return
  truthy to stop the pipeline after the current step.
"""

from __future__ import annotations

import datetime
import json
import time
from dataclasses import dataclass, field

from repro.core.input_patterns import parse_query
from repro.core.ranking import rank
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.tracing import NULL_TRACER
from repro.resilience.deadline import current_deadline

_METRICS = _metrics_registry()
_SEARCHES = _METRICS.counter("pipeline.searches")
_SEARCH_SECONDS = _METRICS.histogram("pipeline.search.seconds")


def _json_value(value):
    """One snippet cell as a JSON-native value (dates become ISO strings)."""
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    return value


@dataclass
class StepTimings:
    """Wall-clock seconds per pipeline step (Fig. 4 / Table 4)."""

    lookup: float = 0.0
    rank: float = 0.0
    tables: float = 0.0
    filters: float = 0.0
    sql: float = 0.0
    execute: float = 0.0

    @property
    def soda_total(self) -> float:
        """Time to produce SQL (excludes executing it), as in Table 4."""
        return self.lookup + self.rank + self.tables + self.filters + self.sql

    @property
    def total(self) -> float:
        return self.soda_total + self.execute


@dataclass
class ScoredStatement:
    """One generated SQL statement with score, snippet and query plan."""

    sql: str
    score: float
    statement: object  # GeneratedStatement
    tables_result: object  # TablesResult
    filters_result: object  # FiltersResult
    interpretation_description: str
    snippet: object = None  # ResultSet | None
    execution_error: str | None = None
    estimated_rows: int = 0
    #: the optimizer's plan tree (populated when the statement executes)
    plan: str | None = None

    @property
    def disconnected(self) -> bool:
        return self.statement.disconnected


@dataclass
class SearchResult:
    """Everything one `Soda.search` call produced."""

    query: object  # SodaQuery
    lookup: object  # LookupResult
    statements: list
    timings: StepTimings
    #: the request's Tracer when tracing was on, else None
    trace: object = None

    @property
    def complexity(self) -> int:
        return self.lookup.complexity

    @property
    def best(self) -> "ScoredStatement | None":
        return self.statements[0] if self.statements else None

    def sql_texts(self) -> list:
        return [statement.sql for statement in self.statements]

    # ------------------------------------------------------------------
    # the stable wire contract (used by `repro serve` and --json)
    # ------------------------------------------------------------------
    def to_dict(self, limit: "int | None" = None) -> dict:
        """The result as JSON-native data — the serving wire contract.

        Shape (stable; the HTTP layer and ``repro search --json`` both
        emit exactly this):

        * ``query``: ``{"text", "description"}``
        * ``complexity``: the lookup's interpretation count
        * ``statements``: up to *limit* entries of ``{"sql", "score",
          "disconnected", "interpretation", "estimated_rows",
          "execution_error", "snippet"}`` where ``snippet`` is
          ``{"columns", "rows"}`` or None (DATE values as ISO strings)
        * ``timings``: the six per-step seconds plus ``soda_total`` and
          ``total``
        * ``trace``: the span tree when the search was traced, else
          absent
        """
        statements = self.statements if limit is None else self.statements[:limit]
        payload = {
            "query": {
                "text": self.query.raw,
                "description": self.query.describe(),
            },
            "complexity": self.complexity,
            "statements": [
                {
                    "sql": scored.sql,
                    "score": scored.score,
                    "disconnected": scored.disconnected,
                    "interpretation": scored.interpretation_description,
                    "estimated_rows": scored.estimated_rows,
                    "execution_error": scored.execution_error,
                    "snippet": None
                    if scored.snippet is None
                    else {
                        "columns": list(scored.snippet.columns),
                        "rows": [
                            [_json_value(value) for value in row]
                            for row in scored.snippet.rows
                        ],
                    },
                }
                for scored in statements
            ],
            "timings": {
                "lookup": self.timings.lookup,
                "rank": self.timings.rank,
                "tables": self.timings.tables,
                "filters": self.timings.filters,
                "sql": self.timings.sql,
                "execute": self.timings.execute,
                "soda_total": self.timings.soda_total,
                "total": self.timings.total,
            },
        }
        if self.trace is not None:
            payload["trace"] = self.trace.to_dict()
        return payload

    def to_json(self, limit: "int | None" = None, indent: "int | None" = None) -> str:
        """:meth:`to_dict` serialized deterministically (sorted keys)."""
        return json.dumps(self.to_dict(limit=limit), sort_keys=True, indent=indent)


@dataclass
class InterpretationState:
    """One ranked interpretation flowing through the batch stages."""

    ranked: object  # RankedInterpretation
    tables_result: object = None
    filters_result: object = None
    statement: object = None  # GeneratedStatement, set by sqlgen


@dataclass
class SearchContext:
    """Shared state of one search as it moves down the pipeline."""

    text: str
    config: object  # SodaConfig
    execute: bool = True
    query: object = None  # SodaQuery, set by the lookup step
    lookup: object = None  # LookupResult, set by the lookup step
    items: list = field(default_factory=list)  # InterpretationState list
    statements: list = field(default_factory=list)  # ScoredStatement list
    timings: StepTimings = field(default_factory=StepTimings)
    stopped_at: str | None = None
    #: the request's tracer (NULL_TRACER when tracing is off)
    tracer: object = NULL_TRACER

    def request_stop(self, step_name: str) -> None:
        """Skip all remaining pipeline steps (early-termination hook)."""
        self.stopped_at = step_name

    @property
    def stopped(self) -> bool:
        return self.stopped_at is not None

    def result(self) -> SearchResult:
        return SearchResult(
            query=self.query,
            lookup=self.lookup,
            statements=self.statements,
            timings=self.timings,
            trace=self.tracer if self.tracer.enabled else None,
        )


class PipelineStep:
    """One named stage; subclasses implement :meth:`run`.

    ``timing_field`` names the :class:`StepTimings` attribute the
    step's wall-clock time accumulates into (None: untimed).
    """

    name: str = "step"
    timing_field: "str | None" = None

    def active(self, context: SearchContext) -> bool:
        """Inactive steps are skipped entirely (no timing recorded)."""
        return True

    def run(self, context: SearchContext) -> None:
        raise NotImplementedError


class LookupStep(PipelineStep):
    """Step 1 — parse the text and map terms to entry points."""

    name = "lookup"
    timing_field = "lookup"

    def __init__(self, lookup) -> None:
        self._lookup = lookup

    def run(self, context: SearchContext) -> None:
        context.query = parse_query(context.text)
        context.lookup = self._lookup.run(context.query)


class RankStep(PipelineStep):
    """Step 2 — score interpretations, keep the top N."""

    name = "rank"
    timing_field = "rank"

    def run(self, context: SearchContext) -> None:
        ranked = rank(
            context.lookup,
            top_n=context.config.top_n,
            strategy=context.config.ranking,
        )
        context.items = [InterpretationState(ranked=r) for r in ranked]


class TablesStage(PipelineStep):
    """Step 3 — discover tables and joins for every interpretation."""

    name = "tables"
    timing_field = "tables"

    def __init__(self, tables_step) -> None:
        self._tables = tables_step

    def run(self, context: SearchContext) -> None:
        for item in context.items:
            item.tables_result = self._tables.run(item.ranked.interpretation)


class FiltersStage(PipelineStep):
    """Step 4 — collect predicates for every interpretation."""

    name = "filters"
    timing_field = "filters"

    def __init__(self, filters_step) -> None:
        self._filters = filters_step

    def run(self, context: SearchContext) -> None:
        for item in context.items:
            item.filters_result = self._filters.run(
                item.ranked.interpretation,
                context.lookup.slots,
                item.tables_result,
                context.query,
            )


class SqlGenStage(PipelineStep):
    """Step 5 — assemble one SQL statement per interpretation.

    Only SQL *generation* runs here (and hence lands in ``timings.sql``,
    matching the old hand-coded pipeline); deduplication bookkeeping is
    kept just to honour ``max_statements`` early termination, and the
    scored-statement construction happens untimed in
    :class:`FinalizeStep`.
    """

    name = "sqlgen"
    timing_field = "sql"

    def __init__(self, sqlgen) -> None:
        self._sqlgen = sqlgen

    def run(self, context: SearchContext) -> None:
        limit = context.config.max_statements
        seen_sql: set = set()
        for item in context.items:
            if limit is not None and len(seen_sql) >= limit:
                break
            statement = self._sqlgen.generate(
                context.query, item.tables_result, item.filters_result
            )
            if statement is None or statement.sql in seen_sql:
                continue
            seen_sql.add(statement.sql)
            item.statement = statement


class FinalizeStep(PipelineStep):
    """Build scored statements, apply feedback bonuses, sort (untimed)."""

    name = "finalize"
    timing_field = None

    def __init__(self, feedback_provider, estimate_rows) -> None:
        self._feedback_provider = feedback_provider
        self._estimate_rows = estimate_rows

    def run(self, context: SearchContext) -> None:
        for item in context.items:
            if item.statement is None:
                continue
            context.statements.append(
                ScoredStatement(
                    sql=item.statement.sql,
                    score=item.ranked.score,
                    statement=item.statement,
                    tables_result=item.tables_result,
                    filters_result=item.filters_result,
                    interpretation_description=item.ranked.interpretation.describe(
                        context.lookup.slots
                    ),
                    estimated_rows=self._estimate_rows(item.tables_result),
                )
            )
        feedback = self._feedback_provider()
        if len(feedback):
            for scored in context.statements:
                scored.score += feedback.bonus(scored.sql)
        context.statements.sort(key=lambda s: (-s.score, s.sql))


class ExecuteStep(PipelineStep):
    """Execute the statements to produce result snippets."""

    name = "execute"
    timing_field = "execute"

    def __init__(self, attach_snippet) -> None:
        self._attach_snippet = attach_snippet

    def active(self, context: SearchContext) -> bool:
        return context.execute

    def run(self, context: SearchContext) -> None:
        deadline = current_deadline()
        for scored in context.statements:
            # a statement boundary is a safe cancellation point: already
            # attached snippets stay, the rest of the request unwinds
            if deadline is not None:
                deadline.check("execute")
            self._attach_snippet(scored)


class SearchPipeline:
    """An ordered list of steps plus between-step hooks."""

    def __init__(self, steps, hooks=()) -> None:
        self.steps = list(steps)
        self._hooks = list(hooks)

    def add_hook(self, hook) -> None:
        """Register ``hook(context, step) -> bool``; truthy stops the run."""
        self._hooks.append(hook)

    def remove_hook(self, hook) -> None:
        if hook in self._hooks:
            self._hooks.remove(hook)

    def step_names(self) -> list:
        return [step.name for step in self.steps]

    def run(self, context: SearchContext) -> SearchContext:
        """Drive *context* through every step, timing each one."""
        tracer = context.tracer
        deadline = current_deadline()
        run_started = time.perf_counter()
        for step in self.steps:
            if context.stopped:
                break
            # cooperative cancellation: a request over its deadline
            # stops at the next step boundary and unwinds cleanly
            if deadline is not None:
                deadline.check("step:" + step.name)
            if not step.active(context):
                continue
            with tracer.span("step:" + step.name):
                started = time.perf_counter()
                step.run(context)
                elapsed = time.perf_counter() - started
            if step.timing_field is not None:
                setattr(
                    context.timings,
                    step.timing_field,
                    getattr(context.timings, step.timing_field) + elapsed,
                )
            if _METRICS.enabled and step.timing_field is not None:
                _METRICS.histogram(
                    f"pipeline.step.{step.name}.seconds"
                ).observe(elapsed)
            for hook in self._hooks:
                if hook(context, step):
                    context.request_stop(step.name)
                    break
        if _METRICS.enabled:
            _SEARCHES.inc()
            _SEARCH_SECONDS.observe(time.perf_counter() - run_started)
        return context
