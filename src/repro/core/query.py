"""The parsed SODA input query (keywords + operators + values).

This is the AST produced by :mod:`repro.core.input_patterns` from the
paper's query language (Section 4.3)::

    <search keywords> [ [AND|OR] <search keywords> |
                        <comparison operator> <search keyword> ]
    <aggregation operator> (<aggregation attribute>)
        [<search keywords>] [group by (<attr1, ..., attrN>)]

plus the ``top N`` prefix used in Section 4.4.2.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Comparison:
    """A comparison operator bound to the word run preceding it.

    ``left_words`` is the raw word run before the operator; the lookup
    step segments it and binds the *last* segment as the compared
    attribute (the paper: "The comparison operator will later on be
    applied to the keywords before and after itself").
    """

    left_words: tuple
    op: str  # one of > >= = <= < <> like
    value: object  # date, number or string

    def describe(self) -> str:
        return f"{' '.join(self.left_words)} {self.op} {self.value!r}"


@dataclass(frozen=True)
class RangeCondition:
    """A ``between`` operator: ``<words> between date(a) date(b)``."""

    left_words: tuple
    low: object
    high: object

    def describe(self) -> str:
        return f"{' '.join(self.left_words)} between {self.low!r} {self.high!r}"


@dataclass(frozen=True)
class Aggregation:
    """An aggregation operator: ``sum(amount)`` / ``count()``.

    ``argument`` is the attribute term, or ``None`` for ``count()``
    (which the paper's Q9.0 writes as ``select count()``).
    """

    func: str  # sum | count | avg | min | max
    argument: str | None

    def describe(self) -> str:
        return f"{self.func}({self.argument or ''})"


@dataclass(frozen=True)
class SodaQuery:
    """The fully parsed input query."""

    raw: str
    keywords: tuple = ()  # residual keyword word-runs (tuples of words)
    comparisons: tuple = ()
    ranges: tuple = ()
    aggregations: tuple = ()
    group_by: tuple = ()  # attribute terms
    top_n: int | None = None
    connectors: tuple = ()  # 'and' / 'or' tokens seen (recorded only)
    #: temporal anchor from ``valid at date(...)`` — restricts historized
    #: tables to rows valid at this date (the paper's future-work item on
    #: bi-temporal historization)
    valid_at: datetime.date | None = None

    @property
    def has_aggregation(self) -> bool:
        return bool(self.aggregations) or bool(self.group_by)

    def describe(self) -> str:
        parts = []
        if self.top_n is not None:
            parts.append(f"top {self.top_n}")
        parts.extend(agg.describe() for agg in self.aggregations)
        parts.extend(" ".join(words) for words in self.keywords)
        parts.extend(comparison.describe() for comparison in self.comparisons)
        parts.extend(range_.describe() for range_ in self.ranges)
        if self.group_by:
            parts.append(f"group by ({', '.join(self.group_by)})")
        if self.valid_at is not None:
            parts.append(f"valid at {self.valid_at.isoformat()}")
        return " | ".join(parts)


def format_value(value: object) -> str:
    """Render an operator value as a SQL literal fragment."""
    if isinstance(value, datetime.date):
        return f"'{value.isoformat()}'"
    if isinstance(value, (int, float)):
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
