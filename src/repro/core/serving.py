"""Stateless serving sessions over one warm `Soda` instance.

One long-lived :class:`~repro.core.soda.Soda` holds the expensive
state — indexes, memoized term resolutions, join plans, the plan
cache — while many callers each get a cheap :class:`SearchSession`.
A session is frozen: it carries only per-caller presentation knobs and
never mutates the shared engine (relevance feedback in particular stays
a deliberate, explicit `Soda.feedback` operation), so sessions can be
created per request, shared, or discarded freely.

Sessions also memoize their own results: repeated query texts are
served from a per-session LRU keyed by the query text plus an *engine
token* — the version counters of the inverted index, classification
index and metadata graph, the catalog fingerprint, and the feedback
state.  Any write that could change an answer (an INSERT, UPDATE,
DELETE, DDL, a graph annotation, new feedback) changes the token and
empties the cache, so a session can never serve stale results.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.pipeline import SearchResult
from repro.core.soda import Soda
from repro.obs.metrics import registry as _metrics_registry

#: results memoized per session unless overridden (0 disables caching)
DEFAULT_RESULT_CACHE_SIZE = 64

# per-session counters keep their public dict shape (cache_stats); the
# same events are mirrored process-wide for `repro stats --metrics`
_METRICS = _metrics_registry()
_RESULT_HITS = _METRICS.counter("serving.result_cache.hits")
_RESULT_MISSES = _METRICS.counter("serving.result_cache.misses")


@dataclass(frozen=True)
class SearchSession:
    """One caller's view of a shared, warm `Soda` engine.

    >>> # session = SearchSession(soda, execute=False, limit=3)
    >>> # session.search("customers Zurich").statements  # at most 3
    """

    soda: Soda
    #: execute statements and attach snippets (False: SQL text only)
    execute: bool = True
    #: truncate each result's statement list (None: keep all)
    limit: "int | None" = None
    #: per-session result memo capacity (0 disables)
    result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE
    #: internal memo state; shared dict so the frozen dataclass can update
    _cache: dict = field(
        default_factory=lambda: {
            "token": None,
            "entries": OrderedDict(),
            "hits": 0,
            "misses": 0,
        },
        repr=False,
        compare=False,
    )

    def search(self, text: str) -> SearchResult:
        """Run one query through the shared pipeline (memoized)."""
        return self._serve(text)

    def search_many(self, texts) -> "list[SearchResult]":
        """Serve a batch (shared caches, deduplicated query texts)."""
        if self.result_cache_size > 0:
            # the session memo subsumes batch dedup: duplicate texts get
            # the same result object, and repeats across batches are free
            return [self._serve(text) for text in texts]
        results = self.soda.search_many(texts, execute=self.execute)
        if self.limit is None:
            return results
        trimmed: dict = {}  # id(result) -> trimmed result; keeps dedup identity
        out = []
        for result in results:
            key = id(result)
            if key not in trimmed:
                trimmed[key] = self._trim(result)
            out.append(trimmed[key])
        return out

    def best_sql(self, text: str) -> "str | None":
        """The top-ranked generated statement's SQL (None: no results)."""
        result = self.soda.search(text, execute=False)
        return result.best.sql if result.best else None

    def explain(self, sql: str) -> str:
        return self.soda.explain(sql)

    # ------------------------------------------------------------------
    # result memoization
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict:
        """Hit/miss/size counters of the per-session result memo."""
        return {
            "hits": self._cache["hits"],
            "misses": self._cache["misses"],
            "size": len(self._cache["entries"]),
        }

    def _engine_token(self) -> tuple:
        """Changes whenever any input to a search result can change."""
        soda = self.soda
        warehouse = soda.warehouse
        return (
            warehouse.inverted.version,
            soda.classification.version,
            warehouse.graph.version,
            warehouse.database.catalog.fingerprint(),
            id(soda.feedback),
            soda.feedback.version,
        )

    def _serve(self, text: str) -> SearchResult:
        if self.result_cache_size <= 0:
            return self._trim(self.soda.search(text, execute=self.execute))
        cache = self._cache
        token = self._engine_token()
        if cache["token"] != token:  # a write happened: drop everything
            cache["token"] = token
            cache["entries"].clear()
        entries: OrderedDict = cache["entries"]
        hit = entries.get(text)
        if hit is not None:
            entries.move_to_end(text)
            cache["hits"] += 1
            if _METRICS.enabled:
                _RESULT_HITS.inc()
            return hit
        cache["misses"] += 1
        if _METRICS.enabled:
            _RESULT_MISSES.inc()
        result = self._trim(self.soda.search(text, execute=self.execute))
        entries[text] = result
        while len(entries) > self.result_cache_size:
            entries.popitem(last=False)
        return result

    # ------------------------------------------------------------------
    def _trim(self, result: SearchResult) -> SearchResult:
        if self.limit is None or len(result.statements) <= self.limit:
            return result
        return SearchResult(
            query=result.query,
            lookup=result.lookup,
            statements=result.statements[: self.limit],
            timings=result.timings,
            trace=result.trace,
        )
