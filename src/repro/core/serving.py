"""Stateless serving sessions over one warm `Soda` instance.

One long-lived :class:`~repro.core.soda.Soda` holds the expensive
state — indexes, memoized term resolutions, join plans, the plan
cache — while many callers each get a cheap :class:`SearchSession`.
A session is frozen: it carries only per-caller presentation knobs and
never mutates the shared engine (relevance feedback in particular stays
a deliberate, explicit `Soda.feedback` operation), so sessions can be
created per request, shared, or discarded freely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import SearchResult
from repro.core.soda import Soda


@dataclass(frozen=True)
class SearchSession:
    """One caller's view of a shared, warm `Soda` engine.

    >>> # session = SearchSession(soda, execute=False, limit=3)
    >>> # session.search("customers Zurich").statements  # at most 3
    """

    soda: Soda
    #: execute statements and attach snippets (False: SQL text only)
    execute: bool = True
    #: truncate each result's statement list (None: keep all)
    limit: "int | None" = None

    def search(self, text: str) -> SearchResult:
        """Run one query through the shared pipeline."""
        return self._trim(self.soda.search(text, execute=self.execute))

    def search_many(self, texts) -> "list[SearchResult]":
        """Serve a batch (shared caches, deduplicated query texts)."""
        results = self.soda.search_many(texts, execute=self.execute)
        if self.limit is None:
            return results
        trimmed: dict = {}  # id(result) -> trimmed result; keeps dedup identity
        out = []
        for result in results:
            key = id(result)
            if key not in trimmed:
                trimmed[key] = self._trim(result)
            out.append(trimmed[key])
        return out

    def best_sql(self, text: str) -> "str | None":
        """The top-ranked generated statement's SQL (None: no results)."""
        result = self.soda.search(text, execute=False)
        return result.best.sql if result.best else None

    def explain(self, sql: str) -> str:
        return self.soda.explain(sql)

    # ------------------------------------------------------------------
    def _trim(self, result: SearchResult) -> SearchResult:
        if self.limit is None or len(result.statements) <= self.limit:
            return result
        return SearchResult(
            query=result.query,
            lookup=result.lookup,
            statements=result.statements[: self.limit],
            timings=result.timings,
        )
