"""Stateless serving sessions over one warm `Soda` instance.

One long-lived :class:`~repro.core.soda.Soda` holds the expensive
state — indexes, memoized term resolutions, join plans, the plan
cache — while many callers each get a cheap :class:`SearchSession`.
A session is frozen: it carries only per-caller presentation knobs and
never mutates the shared engine (relevance feedback in particular stays
a deliberate, explicit `Soda.feedback` operation), so sessions can be
created per request, shared, or discarded freely.

Repeated query texts are served from the engine's **shared**
:class:`~repro.core.caching.ResultCache` (one per `Soda`, used by every
session and every serving thread), keyed by the query text plus the
session's presentation knobs and guarded by an *engine token* — the
version counters of the inverted index, classification index and
metadata graph, the catalog fingerprint, and the feedback state.  Any
write that could change an answer (an INSERT, UPDATE, DELETE, DDL, a
graph annotation, new feedback) changes the token and empties the
cache, so no caller can ever see a stale result.  A session can still
opt into a private cache (``result_cache_size=N``) or none at all
(``result_cache_size=0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.caching import DEFAULT_RESULT_CACHE_SIZE, ResultCache
from repro.core.pipeline import SearchResult
from repro.core.soda import Soda

__all__ = ["DEFAULT_RESULT_CACHE_SIZE", "SearchSession"]


@dataclass(frozen=True)
class SearchSession:
    """One caller's view of a shared, warm `Soda` engine.

    >>> # session = SearchSession(soda, execute=False, limit=3)
    >>> # session.search("customers Zurich").statements  # at most 3
    """

    soda: Soda
    #: execute statements and attach snippets (False: SQL text only)
    execute: bool = True
    #: truncate each result's statement list (None: keep all)
    limit: "int | None" = None
    #: None (default): share the engine-wide result cache; N > 0: a
    #: private cache of that capacity; 0: no result caching at all
    result_cache_size: "int | None" = None
    #: the resolved cache object (None when caching is disabled)
    _cache: "ResultCache | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.result_cache_size is None:
            cache = self.soda.result_cache
        elif self.result_cache_size > 0:
            cache = ResultCache(self.result_cache_size)
        else:
            cache = None
        object.__setattr__(self, "_cache", cache)

    def search(self, text: str) -> SearchResult:
        """Run one query through the shared pipeline (cached)."""
        return self._serve(text)

    def search_many(self, texts) -> "list[SearchResult]":
        """Serve a batch (shared caches, deduplicated query texts)."""
        if self._cache is not None:
            # the result cache subsumes batch dedup: duplicate texts get
            # the same result object, and repeats across batches (or from
            # other sessions with the same knobs) are free
            return [self._serve(text) for text in texts]
        results = self.soda.search_many(texts, execute=self.execute)
        if self.limit is None:
            return results
        trimmed: dict = {}  # id(result) -> trimmed result; keeps dedup identity
        out = []
        for result in results:
            key = id(result)
            if key not in trimmed:
                trimmed[key] = self._trim(result)
            out.append(trimmed[key])
        return out

    def best_sql(self, text: str) -> "str | None":
        """The top-ranked generated statement's SQL (None: no results)."""
        result = self.soda.search(text, execute=False)
        return result.best.sql if result.best else None

    def explain(self, sql: str) -> str:
        return self.soda.explain(sql)

    # ------------------------------------------------------------------
    # result caching
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict:
        """Hit/miss/size counters of this session's result cache.

        For a default session these are the *shared* engine-wide
        cache's counters (every session over the same `Soda` reports
        the same numbers); a private-cache session reports its own.
        """
        if self._cache is None:
            return {"hits": 0, "misses": 0, "size": 0, "capacity": 0}
        return self._cache.stats()

    def _engine_token(self) -> tuple:
        """Changes whenever any input to a search result can change."""
        soda = self.soda
        warehouse = soda.warehouse
        return (
            warehouse.inverted.version,
            soda.classification.version,
            warehouse.graph.version,
            warehouse.database.catalog.fingerprint(),
            id(soda.feedback),
            soda.feedback.version,
        )

    def _serve(self, text: str) -> SearchResult:
        cache = self._cache
        if cache is None:
            return self._trim(self.soda.search(text, execute=self.execute))
        # presentation knobs are part of the key: sessions with
        # different execute/limit settings produce different objects
        key = (text, self.execute, self.limit)
        token = self._engine_token()
        hit = cache.lookup(token, key)
        if hit is not None:
            return hit
        result = self._trim(self.soda.search(text, execute=self.execute))
        cache.store(token, key, result)
        return result

    # ------------------------------------------------------------------
    def _trim(self, result: SearchResult) -> SearchResult:
        if self.limit is None or len(result.statements) <= self.limit:
            return result
        return SearchResult(
            query=result.query,
            lookup=result.lookup,
            statements=result.statements[: self.limit],
            timings=result.timings,
            trace=result.trace,
        )
