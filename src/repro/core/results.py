"""Google-style result-page rendering (paper Section 1.2).

*"Just as in a Web search with Google or Bing, the user has now the
choice to select one of those queries of the first result page, ask for
the next set of candidate queries (i.e., the next result page), or
refine the original query."*

This module turns a :class:`~repro.core.soda.SearchResult` into that
result page: paginated entries with a human-readable title (the entities
involved), the generated SQL, and a snippet preview.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.soda import ScoredStatement, SearchResult


@dataclass(frozen=True)
class ResultEntry:
    """One rendered entry of the result page."""

    position: int
    title: str
    sql: str
    score: float
    snippet_lines: tuple
    note: str | None


@dataclass(frozen=True)
class ResultPage:
    """One page of rendered results."""

    query: str
    page: int
    page_count: int
    entries: tuple

    def render(self) -> str:
        lines = [
            f"results for: {self.query}   (page {self.page}/{self.page_count})",
            "",
        ]
        for entry in self.entries:
            header = f"{entry.position}. {entry.title}  [score {entry.score:.2f}]"
            lines.append(header)
            lines.append(f"   {entry.sql}")
            for snippet_line in entry.snippet_lines:
                lines.append(f"     | {snippet_line}")
            if entry.note:
                lines.append(f"   ({entry.note})")
            lines.append("")
        if not self.entries:
            lines.append("(no results — try different keywords)")
        return "\n".join(lines)


def _title_of(statement: ScoredStatement) -> str:
    """Human-readable entity list: entry tables first, helpers after."""
    entry_tables = sorted(statement.tables_result.entry_tables())
    helpers = [
        name for name in statement.tables_result.tables
        if name not in entry_tables
    ]
    title = ", ".join(entry_tables)
    if helpers:
        title += f" (via {', '.join(helpers)})"
    return title or "(no tables)"


def _snippet_lines(statement: ScoredStatement, max_lines: int) -> tuple:
    if statement.snippet is None or not statement.snippet.rows:
        return ()
    lines = [", ".join(statement.snippet.columns[:6])]
    for row in statement.snippet.rows[:max_lines]:
        rendered = ", ".join(str(value) for value in row[:6])
        lines.append(rendered)
    return tuple(lines)


def render_page(
    result: SearchResult,
    page: int = 1,
    page_size: int = 5,
    snippet_lines: int = 3,
) -> ResultPage:
    """Render one page of a search result.

    >>> # doctest only sketches the API; see tests for behaviour
    """
    total = len(result.statements)
    page_count = max(1, (total + page_size - 1) // page_size)
    page = max(1, min(page, page_count))
    start = (page - 1) * page_size
    entries = []
    for offset, statement in enumerate(
        result.statements[start:start + page_size]
    ):
        note = None
        if statement.disconnected:
            note = "tables could not be fully joined; result may be meaningless"
        elif statement.execution_error:
            note = statement.execution_error
        entries.append(
            ResultEntry(
                position=start + offset + 1,
                title=_title_of(statement),
                sql=statement.sql,
                score=statement.score,
                snippet_lines=_snippet_lines(statement, snippet_lines),
                note=note,
            )
        )
    return ResultPage(
        query=result.query.raw,
        page=page,
        page_count=page_count,
        entries=tuple(entries),
    )
