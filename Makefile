# Single entry points for CI and local development.
#
#   make test         tier-1 test suite (the PR gate)
#   make test-fast    unit subset (index/core/sqlengine/graph/warehouse):
#                     seconds, for tight edit loops
#   make bench-smoke  quick benchmarks with hard correctness + speedup
#                     asserts (planner; vectorized engine >=3x + parity,
#                     emits BENCH_engine.json; dictionary encoding >=2x +
#                     hash LEFT JOIN >=2x + TopN beats Sort+Limit, emits
#                     BENCH_dict.json; search serving + warm-start;
#                     DML plan-cache invalidation, emits BENCH_dml.json;
#                     durability: checkpoint cold-start >=5x over
#                     re-ingest + byte-identical recovery, emits
#                     BENCH_durability.json;
#                     observability off-switch overhead <5%, emits
#                     BENCH_obs.json; fused/parallel scale bench at a
#                     reduced 50k rows, emits BENCH_scale.json;
#                     concurrent serving: threaded search_many beats the
#                     sequential loop + mixed read/write HTTP p50/p99,
#                     emits BENCH_serving.json).
#                     BENCH_SPEEDUP_MIN relaxes the *timing* floors on
#                     noisy shared runners (see benchmarks/bench_utils.py);
#                     correctness asserts always stay hard.
#   make bench-scale  the full-size scale benchmark: fused codegen >=10x
#                     over row mode and >=2x over the unfused batch
#                     engine at 1M rows (BENCH_SCALE_ROWS overrides the
#                     row count), emits BENCH_scale.json
#   make bench-serving  the serving benchmark alone (concurrent
#                     search_many + HTTP mixed load), emits
#                     BENCH_serving.json
#   make test-stress  the stress-marked overload/chaos serving tests
#                     alone (fault storms, 2x saturation shedding);
#                     bounded by design, suitable for a CI job with a
#                     hard timeout
#   make bench-resilience  the resilience benchmark alone (2x
#                     saturation sheds with 429s + bounded accepted
#                     p99; deadline cancellation), emits
#                     BENCH_resilience.json
#   make coverage     tier-1 suite under pytest-cov (CI gate: >=85% on
#                     src/repro, writes coverage.xml)
#   make lint         bytecode-compile every source tree (import/syntax gate)
#   make check        all of the above (except coverage)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast test-stress bench-smoke bench-scale bench-serving \
	bench-resilience coverage lint check

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q tests/index tests/core tests/sqlengine \
		tests/graph tests/warehouse

bench-smoke:
	BENCH_SCALE_ROWS=50000 $(PYTHON) -m pytest \
		benchmarks/bench_planner_speedup.py \
		benchmarks/bench_vectorized_engine.py \
		benchmarks/bench_dictionary_engine.py \
		benchmarks/bench_search_serving.py \
		benchmarks/bench_dml_invalidation.py \
		benchmarks/bench_durability.py \
		benchmarks/bench_observability_overhead.py \
		benchmarks/bench_scale.py \
		benchmarks/bench_serving.py \
		benchmarks/bench_resilience.py -q -s

test-stress:
	$(PYTHON) -m pytest -q -m stress tests benchmarks/bench_resilience.py

bench-scale:
	$(PYTHON) -m pytest benchmarks/bench_scale.py -q -s

bench-serving:
	$(PYTHON) -m pytest benchmarks/bench_serving.py -q -s

bench-resilience:
	$(PYTHON) -m pytest benchmarks/bench_resilience.py -q -s

coverage:
	$(PYTHON) -m pytest -x -q --cov=repro --cov-report=term \
		--cov-report=xml --cov-fail-under=85

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples

check: lint test bench-smoke
