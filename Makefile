# Single entry points for CI and local development.
#
#   make test         tier-1 test suite (the PR gate)
#   make bench-smoke  quick planner benchmark (correctness + speedup asserts)
#   make lint         bytecode-compile every source tree (import/syntax gate)
#   make check        all of the above

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke lint check

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_planner_speedup.py -q -s

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples

check: lint test bench-smoke
