"""Thin setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .`` with build isolation) cannot build an
editable wheel.  This shim enables the legacy editable path::

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
