"""Root conftest: make `src/` importable without installation.

The canonical install is ``python setup.py develop`` (or ``pip install
-e .`` where the ``wheel`` package is available), but the test and
benchmark suites must also run from a plain checkout — e.g. on machines
where pip cannot build editable wheels offline.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
