"""Frozen segments + delta: the concurrent storage layout.

With ``EngineConfig(segment_rows=N)`` a table's rows live in immutable
frozen segments plus one small mutable delta; readers pin a
``(segments, delta-snapshot)`` set at query start and never observe
concurrent DML.  These tests lock the layout invariants (freeze on
threshold, tombstoned deletes, copy-on-write updates, compaction) and
— the important part — that the segmented engine stays byte-identical
to the flat row-mode engine across the whole
{fused} x {array store} x {workers} knob matrix, before and after a
DML storm.
"""

import pytest

from repro.sqlengine.config import EngineConfig
from repro.sqlengine.database import Database
from repro.sqlengine.segments import pinned


def _db(segment_rows=8, **kwargs) -> Database:
    return Database(
        config=EngineConfig(segment_rows=segment_rows, **kwargs)
    )


def _populate(db: Database, count: int = 50) -> None:
    db.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, grp INT, amount REAL, "
        "tag TEXT)"
    )
    db.execute(
        "INSERT INTO t VALUES "
        + ", ".join(
            f"({i}, {i % 5}, {i * 1.5}, 'tag{i % 7}')"
            for i in range(count)
        )
    )


class TestSegmentLayout:
    def test_insert_freezes_on_threshold(self):
        db = _db(segment_rows=8)
        _populate(db, 50)
        stats = db.table("t").segment_stats()
        assert stats["segments"] == 6  # 48 frozen rows in 8-row segments
        assert stats["frozen_live"] == 48
        assert stats["delta_rows"] == 2
        assert stats["tombstones"] == 0

    def test_flat_and_segmented_rows_agree(self):
        db = _db(segment_rows=8)
        _populate(db, 50)
        table = db.table("t")
        snapshot = table.pin()
        assert list(snapshot.iter_rows()) == table.rows
        for index in range(len(table.columns)):
            assert (
                snapshot.column_slice(index, 0, snapshot.row_count)
                == list(table.column_data(index))
            )

    def test_zero_threshold_disables_segments(self):
        db = _db(segment_rows=0)
        _populate(db, 20)
        table = db.table("t")
        assert not table.segmented
        assert table.pin() is None
        assert table.segment_stats() is None

    def test_delete_leaves_tombstones_then_compacts(self):
        db = _db(segment_rows=8)
        _populate(db, 32)
        db.execute("DELETE FROM t WHERE id = 3")
        stats = db.table("t").segment_stats()
        assert stats["tombstones"] == 1
        assert stats["frozen_live"] == 31
        # kill most of every segment: each one crosses the half-dead
        # compaction bound and is rebuilt without tombstones
        db.execute("DELETE FROM t WHERE grp <> 0")
        stats = db.table("t").segment_stats()
        assert stats["tombstones"] == 0
        assert db.execute("SELECT COUNT(*) FROM t").rows[0][0] == (
            stats["frozen_live"] + stats["delta_rows"]
        )

    def test_update_rewrites_frozen_segments(self):
        db = _db(segment_rows=8)
        _populate(db, 32)
        db.execute("UPDATE t SET amount = 0.0 WHERE grp = 1")
        table = db.table("t")
        snapshot = table.pin()
        assert list(snapshot.iter_rows()) == table.rows
        assert all(
            row[2] == 0.0 for row in table.rows if row[1] == 1
        )

    def test_rollback_rebuilds_segments(self):
        db = _db(segment_rows=8)
        _populate(db, 32)
        db.execute("BEGIN")
        db.execute("DELETE FROM t WHERE grp = 0")
        db.execute("UPDATE t SET tag = 'x' WHERE grp = 1")
        db.execute("ROLLBACK")
        table = db.table("t")
        assert list(table.pin().iter_rows()) == table.rows
        assert db.execute("SELECT COUNT(*) FROM t").rows[0][0] == 32


class TestPinnedSnapshots:
    def test_pinned_reader_never_sees_later_dml(self):
        db = _db(segment_rows=8)
        _populate(db, 40)
        table = db.table("t")
        snapshot = table.pin()
        before = list(snapshot.iter_rows())
        db.execute("DELETE FROM t WHERE grp = 2")
        db.execute("INSERT INTO t VALUES (999, 9, 9.0, 'late')")
        db.execute("UPDATE t SET amount = -1.0 WHERE grp = 3")
        # the pinned snapshot still yields the pre-DML state while the
        # live table has moved on
        assert list(snapshot.iter_rows()) == before
        assert table.pin().row_count != snapshot.row_count

    def test_pin_scope_serves_queries_from_the_snapshot(self):
        db = _db(segment_rows=8)
        _populate(db, 40)
        pins = db.catalog.pin_tables(["t"])
        assert pins is not None
        with pinned(pins):
            count = db.execute("SELECT COUNT(*) FROM t").rows[0][0]
            assert count == 40
        db.execute("DELETE FROM t WHERE grp = 0")
        with pinned(pins):
            # queries inside the scope read the pinned past
            assert db.execute("SELECT COUNT(*) FROM t").rows[0][0] == 40
        assert db.execute("SELECT COUNT(*) FROM t").rows[0][0] < 40

    def test_unsegmented_catalog_pins_nothing(self):
        db = _db(segment_rows=0)
        _populate(db, 10)
        assert db.catalog.pin_tables(["t"]) is None


#: the queries the matrix sweeps — every operator family the batch
#: engine routes through column slices
CORPUS = [
    "SELECT * FROM t",
    "SELECT id, amount * 2 FROM t WHERE grp = 1",
    "SELECT id FROM t WHERE tag LIKE 'tag1%' AND amount > 10",
    "SELECT grp, COUNT(*), SUM(amount) FROM t GROUP BY grp",
    "SELECT a.id, b.id FROM t a, t b WHERE a.id = b.id AND a.grp = 2",
    "SELECT DISTINCT tag FROM t ORDER BY tag",
    "SELECT id FROM t ORDER BY amount DESC LIMIT 7",
    "SELECT grp, AVG(amount) FROM t WHERE id > 5 GROUP BY grp "
    "HAVING COUNT(*) > 2",
]

MODE_MATRIX = [
    pytest.param(fused, array, workers,
                 id=f"fused={int(fused)}-array={int(array)}-w={workers}")
    for fused in (True, False)
    for array in (True, False)
    for workers in (1, 4)
]


@pytest.fixture(scope="module")
def small_morsels():
    """Shrink batches/morsels so the fixtures span many morsels."""
    import repro.sqlengine.planner.parallel as parallel
    import repro.sqlengine.planner.physical as physical

    saved = (physical.BATCH_SIZE, parallel.MORSEL_BATCHES)
    physical.BATCH_SIZE = 16
    parallel.MORSEL_BATCHES = 2
    yield
    physical.BATCH_SIZE, parallel.MORSEL_BATCHES = saved


def _storm(db: Database) -> None:
    """DML that exercises tombstones, rewrites and a fresh delta."""
    db.execute("DELETE FROM t WHERE grp = 4")
    db.execute("UPDATE t SET amount = amount + 100 WHERE grp = 2")
    db.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"({200 + i}, {i % 5}, {i * 0.5}, 'late{i}')"
                    for i in range(11))
    )
    db.execute("DELETE FROM t WHERE id > 100 AND amount < 3")


@pytest.fixture(scope="module")
def segmented_matrix(small_morsels):
    """(flat row-mode baseline, {(fused, array, workers): segmented db})."""
    baseline = Database(config=EngineConfig(execution_mode="row"))
    _populate(baseline, 120)
    _storm(baseline)
    combos = {}
    for fused, array, workers in [p.values for p in MODE_MATRIX]:
        db = _db(
            segment_rows=8,
            fused=fused,
            array_store=array,
            parallel_workers=workers,
        )
        _populate(db, 120)
        _storm(db)
        combos[(fused, array, workers)] = db
    return baseline, combos


class TestSegmentedModeMatrixParity:
    """Segmented storage must be invisible to every engine knob combo."""

    @pytest.mark.parametrize("sql", CORPUS)
    def test_matrix_matches_flat_row_baseline(self, segmented_matrix, sql):
        baseline, combos = segmented_matrix
        expected = baseline.execute(sql)
        for combo, db in combos.items():
            actual = db.execute(sql)
            assert actual.columns == expected.columns, (combo, sql)
            assert actual.rows == expected.rows, (combo, sql)

    def test_storm_left_real_segment_state(self, segmented_matrix):
        __, combos = segmented_matrix
        for combo, db in combos.items():
            stats = db.table("t").segment_stats()
            assert stats["segments"] > 1, combo
            assert stats["delta_rows"] < 8, combo
            total = db.execute("SELECT COUNT(*) FROM t").rows[0][0]
            assert total == stats["frozen_live"] + stats["delta_rows"], combo
