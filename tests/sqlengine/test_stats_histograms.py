"""Histogram-based selectivity: accurate range estimates on skewed data.

The fixed Selinger constant (RANGE_SELECTIVITY = 1/3) misjudges skewed
columns badly; the equi-width histograms make range-filter cardinality
track the actual value distribution, which flips greedy join ordering
to the genuinely smaller side.
"""

import pytest

from repro.sqlengine.database import Database
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import lower_select, optimize_plan, render_plan
from repro.sqlengine.planner.stats import (
    HISTOGRAM_BINS,
    Histogram,
    RANGE_SELECTIVITY,
    StatisticsProvider,
    join_selectivity,
    predicate_selectivity,
)


@pytest.fixture
def skewed_db():
    """1000-row table whose `x` is 99% small values, 1% outliers."""
    db = Database()
    db.create_table("skewed", [("id", "INT"), ("x", "INT")],
                    primary_key=["id"])
    db.create_table("dim", [("id", "INT"), ("note", "TEXT")],
                    primary_key=["id"])
    db.insert_rows(
        "skewed",
        [(i, i % 100) for i in range(990)]
        + [(990 + i, 900 + 10 * i) for i in range(10)],
    )
    db.insert_rows("dim", [(i, f"note {i}") for i in range(100)])
    return db


class TestHistogram:
    def test_uniform_fraction_below(self):
        histogram = Histogram.build([float(i) for i in range(100)], bins=16)
        assert histogram.total == 100
        assert histogram.fraction_below(-1.0) == 0.0
        assert histogram.fraction_below(99.0) == 1.0
        assert abs(histogram.fraction_below(49.5) - 0.5) < 0.05

    def test_single_value_column(self):
        histogram = Histogram.build([5.0] * 40, bins=16)
        assert histogram.counts == (40,)
        assert histogram.fraction_below(5.0) == 1.0
        assert histogram.fraction_below(4.9) == 0.0

    def test_fraction_between_clamps(self):
        histogram = Histogram.build([float(i) for i in range(100)], bins=16)
        assert histogram.fraction_between(200.0, 100.0) == 0.0
        assert abs(histogram.fraction_between(0.0, 99.0) - 1.0) < 1e-9

    def test_empty_and_disabled(self):
        assert Histogram.build([], bins=16) is None
        assert Histogram.build([1.0], bins=0) is None


class TestRangeSelectivity:
    def test_skewed_tail_estimated_small(self, skewed_db):
        stats = StatisticsProvider(skewed_db.catalog).table_stats("skewed")
        predicate = parse_select("SELECT * FROM skewed WHERE x > 900").where
        estimate = predicate_selectivity(predicate, stats)
        # the tail is 1% of rows; the fixed constant would say 33%
        assert estimate < 0.05
        assert estimate > 0.0

    def test_disabled_histograms_fall_back_to_constant(self, skewed_db):
        provider = StatisticsProvider(skewed_db.catalog, histogram_bins=0)
        stats = provider.table_stats("skewed")
        predicate = parse_select("SELECT * FROM skewed WHERE x > 900").where
        assert predicate_selectivity(predicate, stats) == RANGE_SELECTIVITY

    def test_between_uses_histogram(self, skewed_db):
        stats = StatisticsProvider(skewed_db.catalog).table_stats("skewed")
        predicate = parse_select(
            "SELECT * FROM skewed WHERE x BETWEEN 900 AND 1000"
        ).where
        assert predicate_selectivity(predicate, stats) < 0.05

    def test_null_fraction_scales_estimate(self):
        db = Database()
        db.create_table("t", [("x", "INT")])
        db.insert_rows("t", [(i,) for i in range(50)] + [(None,)] * 50)
        stats = StatisticsProvider(db.catalog).table_stats("t")
        predicate = parse_select("SELECT * FROM t WHERE x >= 0").where
        # every non-NULL value matches, but NULL rows never do
        estimate = predicate_selectivity(predicate, stats)
        assert abs(estimate - 0.5) < 0.05

    def test_literal_on_left_is_flipped(self, skewed_db):
        stats = StatisticsProvider(skewed_db.catalog).table_stats("skewed")
        predicate = parse_select("SELECT * FROM skewed WHERE 900 < x").where
        assert predicate_selectivity(predicate, stats) < 0.05


class TestEqualitySelectivity:
    """Histogram-aware ``col = literal``: bin density beats 1/distinct."""

    def test_hot_value_estimated_above_flat(self, skewed_db):
        stats = StatisticsProvider(skewed_db.catalog).table_stats("skewed")
        # x = 50 sits among the 99% of rows packed into [0, 100): its
        # bin is dense, so the estimate must exceed the flat 1/distinct
        predicate = parse_select("SELECT * FROM skewed WHERE x = 50").where
        estimate = predicate_selectivity(predicate, stats)
        flat = 1.0 / stats.distinct("x")
        assert estimate > flat

    def test_sparse_tail_value_estimated_below_flat(self, skewed_db):
        stats = StatisticsProvider(skewed_db.catalog).table_stats("skewed")
        predicate = parse_select("SELECT * FROM skewed WHERE x = 950").where
        estimate = predicate_selectivity(predicate, stats)
        flat = 1.0 / stats.distinct("x")
        assert 0.0 < estimate < flat

    def test_literal_outside_range_estimates_zero(self, skewed_db):
        stats = StatisticsProvider(skewed_db.catalog).table_stats("skewed")
        predicate = parse_select("SELECT * FROM skewed WHERE x = 5000").where
        assert predicate_selectivity(predicate, stats) == 0.0

    def test_inequality_is_complement(self, skewed_db):
        stats = StatisticsProvider(skewed_db.catalog).table_stats("skewed")
        equal = parse_select("SELECT * FROM skewed WHERE x = 50").where
        not_equal = parse_select("SELECT * FROM skewed WHERE x <> 50").where
        assert abs(
            predicate_selectivity(not_equal, stats)
            + predicate_selectivity(equal, stats)
            - 1.0
        ) < 1e-9

    def test_disabled_histograms_keep_flat_estimate(self, skewed_db):
        provider = StatisticsProvider(skewed_db.catalog, histogram_bins=0)
        stats = provider.table_stats("skewed")
        predicate = parse_select("SELECT * FROM skewed WHERE x = 50").where
        assert predicate_selectivity(predicate, stats) == (
            1.0 / stats.distinct("x")
        )

    def test_text_columns_keep_flat_estimate(self, skewed_db):
        stats = StatisticsProvider(skewed_db.catalog).table_stats("dim")
        predicate = parse_select(
            "SELECT * FROM dim WHERE note = 'note 7'"
        ).where
        assert predicate_selectivity(predicate, stats) == (
            1.0 / stats.distinct("note")
        )


class TestJoinSelectivity:
    def test_disjoint_key_ranges_estimate_zero(self):
        db = Database()
        db.create_table("a", [("k", "INT")])
        db.create_table("b", [("k", "INT")])
        db.insert_rows("a", [(i,) for i in range(100)])
        db.insert_rows("b", [(i,) for i in range(1000, 1100)])
        provider = StatisticsProvider(db.catalog)
        assert join_selectivity(
            provider.table_stats("a"), "k", provider.table_stats("b"), "k"
        ) == 0.0

    def test_full_overlap_matches_classic_estimate(self):
        db = Database()
        db.create_table("a", [("k", "INT")])
        db.create_table("b", [("k", "INT")])
        db.insert_rows("a", [(i,) for i in range(100)])
        db.insert_rows("b", [(i,) for i in range(100)])
        provider = StatisticsProvider(db.catalog)
        estimate = join_selectivity(
            provider.table_stats("a"), "k", provider.table_stats("b"), "k"
        )
        assert abs(estimate - 1 / 100) < 1e-3


class TestJoinOrderOnSkewedData:
    SQL = (
        "SELECT d.note FROM skewed s, dim d "
        "WHERE s.id = d.id AND s.x > 900"
    )

    def _plan(self, db, provider):
        logical = lower_select(db.catalog, parse_select(self.SQL))
        return render_plan(optimize_plan(logical, db.catalog, provider))

    def test_histograms_start_from_filtered_skewed_table(self, skewed_db):
        plan = self._plan(
            skewed_db,
            StatisticsProvider(skewed_db.catalog,
                               histogram_bins=HISTOGRAM_BINS),
        )
        # skewed shrinks to ~10 rows under the filter: build from it and
        # hash-join dim (100 rows) into it
        assert "hash join d on" in plan

    def test_fixed_constant_picks_the_wrong_side(self, skewed_db):
        plan = self._plan(
            skewed_db, StatisticsProvider(skewed_db.catalog, histogram_bins=0)
        )
        # 1/3 of 1000 rows looks bigger than dim's 100 rows, so the
        # greedy order starts from dim instead
        assert "hash join s on" in plan
