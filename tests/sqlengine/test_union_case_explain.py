"""Tests for UNION, CASE WHEN and EXPLAIN."""

import pytest

from repro.errors import SqlError, SqlSyntaxError
from repro.sqlengine.database import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE a (id INT, name TEXT)")
    database.execute("CREATE TABLE b (id INT, name TEXT)")
    database.execute("INSERT INTO a VALUES (1, 'x'), (2, 'y')")
    database.execute("INSERT INTO b VALUES (2, 'y'), (3, 'z')")
    return database


class TestUnion:
    def test_union_deduplicates(self, db):
        rs = db.execute(
            "SELECT name FROM a UNION SELECT name FROM b"
        )
        assert sorted(rs.column("name")) == ["x", "y", "z"]

    def test_union_all_keeps_duplicates(self, db):
        rs = db.execute(
            "SELECT name FROM a UNION ALL SELECT name FROM b"
        )
        assert sorted(rs.column("name")) == ["x", "y", "y", "z"]

    def test_columns_from_first_branch(self, db):
        rs = db.execute("SELECT id AS k FROM a UNION SELECT id FROM b")
        assert rs.columns == ["k"]

    def test_three_way_union(self, db):
        rs = db.execute(
            "SELECT id FROM a UNION SELECT id FROM b UNION SELECT id FROM a"
        )
        assert sorted(rs.column("id")) == [1, 2, 3]

    def test_width_mismatch_raises(self, db):
        from repro.errors import SqlExecutionError

        with pytest.raises(SqlExecutionError):
            db.execute("SELECT id FROM a UNION SELECT id, name FROM b")

    def test_mixed_union_union_all_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute(
                "SELECT id FROM a UNION SELECT id FROM b "
                "UNION ALL SELECT id FROM a"
            )

    def test_union_roundtrip_sql(self, db):
        from repro.sqlengine.parser import parse_sql

        stmt = parse_sql("SELECT id FROM a UNION ALL SELECT id FROM b")
        assert "UNION ALL" in stmt.to_sql()


class TestCaseWhen:
    def test_simple_case(self, db):
        rs = db.execute(
            "SELECT CASE WHEN id = 1 THEN 'one' ELSE 'many' END AS label "
            "FROM a ORDER BY id"
        )
        assert rs.column("label") == ["one", "many"]

    def test_case_without_else_is_null(self, db):
        rs = db.execute(
            "SELECT CASE WHEN id > 99 THEN 'big' END FROM a"
        )
        assert rs.rows == [(None,), (None,)]

    def test_multiple_branches_first_wins(self, db):
        rs = db.execute(
            "SELECT CASE WHEN id > 0 THEN 'pos' WHEN id > 1 THEN 'big' "
            "ELSE 'neg' END FROM a WHERE id = 2"
        )
        assert rs.rows == [("pos",)]

    def test_case_in_where(self, db):
        rs = db.execute(
            "SELECT id FROM a WHERE "
            "CASE WHEN name = 'x' THEN 1 ELSE 0 END = 1"
        )
        assert rs.rows == [(1,)]

    def test_case_with_aggregate_argument(self, db):
        rs = db.execute(
            "SELECT sum(CASE WHEN id > 1 THEN 1 ELSE 0 END) FROM a"
        )
        assert rs.rows == [(1,)]

    def test_case_requires_when(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT CASE ELSE 1 END FROM a")

    def test_case_to_sql_roundtrip(self, db):
        from repro.sqlengine.parser import parse_select

        sql = parse_select(
            "SELECT CASE WHEN id = 1 THEN 'one' ELSE 'x' END FROM a"
        ).to_sql()
        parse_select(sql)


class TestExplain:
    def test_scan_with_pushdown(self, db):
        plan = db.explain("SELECT * FROM a WHERE a.name = 'x'")
        assert "scan a as a (2 rows) filter: (a.name = 'x')" in plan

    def test_pushdown_of_unqualified_predicate(self, db):
        plan = db.explain("SELECT * FROM a WHERE name = 'x'")
        assert "filter: (name = 'x')" in plan

    def test_hash_join_reported(self, db):
        plan = db.explain("SELECT * FROM a, b WHERE a.id = b.id")
        assert "hash join b on (a.id = b.id)" in plan

    def test_cross_join_reported(self, db):
        plan = db.explain("SELECT * FROM a, b")
        assert "cross join b" in plan

    def test_aggregate_and_sort_reported(self, db):
        plan = db.explain(
            "SELECT count(*), name FROM a GROUP BY name "
            "ORDER BY count(*) DESC LIMIT 3"
        )
        assert "aggregate group by name" in plan
        # ORDER BY + LIMIT fuse into one bounded-heap TOP-N operator
        assert "top-n 3 by count(*) DESC" in plan

    def test_left_join_reported(self, db):
        plan = db.explain("SELECT * FROM a LEFT JOIN b ON a.id = b.id")
        assert "left join b" in plan

    def test_union_explain(self, db):
        plan = db.explain("SELECT id FROM a UNION SELECT id FROM b")
        assert "union" in plan
        assert plan.count("scan") == 2

    def test_explain_rejects_insert(self, db):
        with pytest.raises(SqlError):
            db.explain("INSERT INTO a VALUES (9, 'q')")

    def test_explain_generated_soda_sql(self, soda):
        # every statement SODA generates must be explainable
        result = soda.search("private customers family name", execute=False)
        plan = soda.warehouse.database.explain(result.best.sql)
        assert "hash join" in plan
