"""Tests for the SQL parser."""

import datetime

import pytest

from repro.errors import SqlSyntaxError
from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    CreateTable,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    Literal,
    Select,
    UnaryOp,
)
from repro.sqlengine.parser import parse_select, parse_sql
from repro.sqlengine.types import SqlType


class TestSelectBasics:
    def test_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert stmt.items[0].is_star

    def test_table_star(self):
        stmt = parse_select("SELECT t.* FROM t")
        assert stmt.items[0].star_table == "t"

    def test_column_list(self):
        stmt = parse_select("SELECT a, b.c FROM t")
        assert stmt.items[0].expr == ColumnRef(None, "a")
        assert stmt.items[1].expr == ColumnRef("b", "c")

    def test_alias_with_as(self):
        stmt = parse_select("SELECT a AS x FROM t")
        assert stmt.items[0].alias == "x"

    def test_alias_without_as(self):
        stmt = parse_select("SELECT a x FROM t")
        assert stmt.items[0].alias == "x"

    def test_multiple_tables(self):
        stmt = parse_select("SELECT * FROM t1, t2 t, t3 AS u")
        assert [t.binding for t in stmt.tables] == ["t1", "t", "u"]

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_limit(self):
        assert parse_select("SELECT * FROM t LIMIT 7").limit == 7

    def test_trailing_semicolon(self):
        assert isinstance(parse_sql("SELECT * FROM t;"), Select)

    def test_garbage_after_statement_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM t garbage extra ,")

    def test_unsupported_statement_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("DROP TABLE t")

    def test_parse_select_rejects_ddl(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("CREATE TABLE t (a INT)")


class TestJoins:
    def test_inner_join(self):
        stmt = parse_select("SELECT * FROM a JOIN b ON a.id = b.id")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].kind == "INNER"

    def test_explicit_inner_keyword(self):
        stmt = parse_select("SELECT * FROM a INNER JOIN b ON a.id = b.id")
        assert stmt.joins[0].kind == "INNER"

    def test_left_join(self):
        stmt = parse_select("SELECT * FROM a LEFT JOIN b ON a.id = b.id")
        assert stmt.joins[0].kind == "LEFT"

    def test_left_outer_join(self):
        stmt = parse_select("SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id")
        assert stmt.joins[0].kind == "LEFT"

    def test_chained_joins(self):
        stmt = parse_select(
            "SELECT * FROM a JOIN b ON a.id = b.id JOIN c ON b.id = c.id"
        )
        assert len(stmt.joins) == 2


class TestExpressions:
    def where(self, condition):
        return parse_select(f"SELECT * FROM t WHERE {condition}").where

    def test_comparison(self):
        expr = self.where("a > 5")
        assert isinstance(expr, BinaryOp) and expr.op == ">"

    def test_precedence_and_or(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = self.where("NOT a = 1")
        assert isinstance(expr, UnaryOp) and expr.op == "NOT"

    def test_like(self):
        expr = self.where("name LIKE '%zurich%'")
        assert isinstance(expr, Like) and not expr.negated

    def test_not_like(self):
        expr = self.where("name NOT LIKE 'x%'")
        assert isinstance(expr, Like) and expr.negated

    def test_in_list(self):
        expr = self.where("a IN (1, 2, 3)")
        assert isinstance(expr, InList) and len(expr.items) == 3

    def test_not_in(self):
        expr = self.where("a NOT IN (1)")
        assert expr.negated

    def test_between(self):
        expr = self.where("a BETWEEN 1 AND 10")
        assert isinstance(expr, Between)

    def test_is_null(self):
        expr = self.where("a IS NULL")
        assert isinstance(expr, IsNull) and not expr.negated

    def test_is_not_null(self):
        expr = self.where("a IS NOT NULL")
        assert expr.negated

    def test_arithmetic_precedence(self):
        expr = self.where("a = 1 + 2 * 3")
        plus = expr.right
        assert plus.op == "+"
        assert plus.right.op == "*"

    def test_unary_minus(self):
        expr = self.where("a = -5")
        assert isinstance(expr.right, UnaryOp)

    def test_parenthesised(self):
        expr = self.where("(a = 1 OR b = 2) AND c = 3")
        assert expr.op == "AND"
        assert expr.left.op == "OR"

    def test_date_literal(self):
        expr = self.where("d >= DATE '2011-09-01'")
        assert expr.right == Literal(datetime.date(2011, 9, 1))

    def test_null_true_false_literals(self):
        expr = self.where("a = NULL OR b = TRUE OR c = FALSE")
        assert expr.right.right == Literal(False)

    def test_string_concat(self):
        expr = self.where("a = b || c")
        assert expr.right.op == "||"

    def test_missing_value_raises(self):
        with pytest.raises(SqlSyntaxError):
            self.where("a = ")


class TestFunctions:
    def test_count_star(self):
        stmt = parse_select("SELECT count(*) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, FuncCall) and call.star

    def test_count_empty_means_star(self):
        # the paper's Q9.0 writes count()
        stmt = parse_select("SELECT count() FROM t")
        assert stmt.items[0].expr.star

    def test_sum_column(self):
        stmt = parse_select("SELECT sum(amount) FROM t")
        call = stmt.items[0].expr
        assert call.name == "sum"
        assert call.args == (ColumnRef(None, "amount"),)

    def test_count_distinct(self):
        stmt = parse_select("SELECT count(DISTINCT a) FROM t")
        assert stmt.items[0].expr.distinct


class TestGroupOrder:
    def test_group_by(self):
        stmt = parse_select("SELECT count(*), a FROM t GROUP BY a, b")
        assert len(stmt.group_by) == 2

    def test_having(self):
        stmt = parse_select(
            "SELECT a FROM t GROUP BY a HAVING count(*) > 2"
        )
        assert stmt.having is not None

    def test_order_by_desc(self):
        stmt = parse_select("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in stmt.order_by] == [True, False, False]

    def test_paper_query4_shape(self):
        stmt = parse_select(
            "SELECT count(fi_transactions.id), companyname "
            "FROM transactions, fi_transactions, organizations "
            "WHERE transactions.id = fi_transactions.id "
            "AND transactions.toparty = organizations.id "
            "GROUP BY organizations.companyname "
            "ORDER BY count(fi_transactions.id) DESC"
        )
        assert len(stmt.tables) == 3
        assert stmt.order_by[0].descending


class TestCreateInsert:
    def test_create_table(self):
        stmt = parse_sql(
            "CREATE TABLE t (id INT PRIMARY KEY, name TEXT, amount REAL)"
        )
        assert isinstance(stmt, CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].sql_type is SqlType.TEXT

    def test_create_table_with_table_level_pk(self):
        stmt = parse_sql("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert all(c.primary_key for c in stmt.columns)

    def test_create_table_with_fk(self):
        stmt = parse_sql(
            "CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES u (id))"
        )
        assert stmt.foreign_keys[0].ref_table == "u"

    def test_insert_positional(self):
        stmt = parse_sql("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, Insert)
        assert len(stmt.rows) == 2

    def test_insert_named_columns(self):
        stmt = parse_sql("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_insert_negative_number(self):
        stmt = parse_sql("INSERT INTO t VALUES (-5)")
        assert stmt.rows[0][0] == -5

    def test_insert_date(self):
        stmt = parse_sql("INSERT INTO t VALUES (DATE '2010-01-01')")
        assert stmt.rows[0][0] == datetime.date(2010, 1, 1)

    def test_insert_non_literal_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("INSERT INTO t VALUES (a + 1)")


class TestToSql:
    def test_roundtrip_parses_again(self):
        original = parse_select(
            "SELECT count(*), a FROM t, u WHERE t.id = u.id AND a LIKE '%x%' "
            "GROUP BY a ORDER BY count(*) DESC LIMIT 5"
        )
        rendered = original.to_sql()
        reparsed = parse_select(rendered)
        assert reparsed.to_sql() == rendered


class TestTransactionsAndReturning:
    def test_begin_variants(self):
        from repro.sqlengine.ast_nodes import Begin

        assert isinstance(parse_sql("BEGIN"), Begin)
        assert isinstance(parse_sql("BEGIN TRANSACTION"), Begin)

    def test_commit_rollback_checkpoint(self):
        from repro.sqlengine.ast_nodes import Checkpoint, Commit, Rollback

        assert isinstance(parse_sql("COMMIT"), Commit)
        assert isinstance(parse_sql("ROLLBACK"), Rollback)
        assert isinstance(parse_sql("CHECKPOINT"), Checkpoint)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("COMMIT NOW")

    def test_insert_returning(self):
        stmt = parse_sql("INSERT INTO t VALUES (1) RETURNING *")
        assert isinstance(stmt, Insert)
        assert len(stmt.returning) == 1
        assert stmt.returning[0].is_star

    def test_update_returning_with_alias(self):
        from repro.sqlengine.ast_nodes import Update

        stmt = parse_sql(
            "UPDATE t SET a = 1 WHERE b = 2 RETURNING a, a + 1 AS next_a"
        )
        assert isinstance(stmt, Update)
        assert [item.alias for item in stmt.returning] == [None, "next_a"]

    def test_delete_returning(self):
        from repro.sqlengine.ast_nodes import Delete

        stmt = parse_sql("DELETE FROM t WHERE a = 1 RETURNING a")
        assert isinstance(stmt, Delete)
        assert len(stmt.returning) == 1

    def test_no_returning_is_empty_tuple(self):
        stmt = parse_sql("DELETE FROM t")
        assert stmt.returning == ()
