"""Tests for the Database facade and catalog/table storage."""

import pytest

from repro.errors import SqlCatalogError, SqlError
from repro.sqlengine.catalog import Catalog, Column, ForeignKey, Table
from repro.sqlengine.database import Database
from repro.sqlengine.types import SqlType


class TestCatalog:
    def test_create_and_fetch(self):
        catalog = Catalog()
        catalog.create_table("t", [Column("id", SqlType.INTEGER, True)])
        assert catalog.table("t").name == "t"
        assert catalog.has_table("T")  # case-insensitive

    def test_duplicate_table_raises(self):
        catalog = Catalog()
        catalog.create_table("t", [Column("id", SqlType.INTEGER)])
        with pytest.raises(SqlCatalogError):
            catalog.create_table("T", [Column("id", SqlType.INTEGER)])

    def test_unknown_table_raises(self):
        with pytest.raises(SqlCatalogError):
            Catalog().table("nope")

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table("t", [Column("id", SqlType.INTEGER)])
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(SqlCatalogError):
            catalog.drop_table("t")

    def test_foreign_key_edges(self):
        catalog = Catalog()
        catalog.create_table("u", [Column("id", SqlType.INTEGER, True)])
        catalog.create_table(
            "t",
            [Column("id", SqlType.INTEGER, True), Column("u_id", SqlType.INTEGER)],
            [ForeignKey(("u_id",), "u", ("id",))],
        )
        edges = catalog.foreign_key_edges()
        assert edges[0][0] == "t" and edges[0][1] == "u"

    def test_fk_arity_mismatch_raises(self):
        with pytest.raises(SqlCatalogError):
            ForeignKey(("a", "b"), "u", ("id",))


class TestTable:
    def make(self):
        return Table(
            "t",
            [
                Column("id", SqlType.INTEGER, True),
                Column("name", SqlType.TEXT),
            ],
        )

    def test_empty_columns_raise(self):
        with pytest.raises(SqlCatalogError):
            Table("t", [])

    def test_duplicate_columns_raise(self):
        with pytest.raises(SqlCatalogError):
            Table("t", [Column("a", SqlType.INTEGER), Column("a", SqlType.TEXT)])

    def test_insert_coerces(self):
        table = self.make()
        table.insert((1.0, "x"))
        assert table.rows == [(1, "x")]

    def test_insert_wrong_arity_raises(self):
        with pytest.raises(SqlCatalogError):
            self.make().insert((1,))

    def test_insert_named_defaults_null(self):
        table = self.make()
        table.insert_named(id=2)
        assert table.rows == [(2, None)]

    def test_insert_named_unknown_column_raises(self):
        with pytest.raises(SqlCatalogError):
            self.make().insert_named(id=1, nope=2)

    def test_column_index_and_lookup(self):
        table = self.make()
        assert table.column_index("name") == 1
        assert table.column("id").primary_key
        assert table.primary_key_columns() == ["id"]
        with pytest.raises(SqlCatalogError):
            table.column_index("zzz")

    def test_len_and_iter(self):
        table = self.make()
        table.insert_many([(1, "a"), (2, "b")])
        assert len(table) == 2
        assert list(table) == [(1, "a"), (2, "b")]


class TestDatabaseFacade:
    def test_ddl_dml_select_roundtrip(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'a')")
        db.execute("INSERT INTO t (name, id) VALUES ('b', 2)")
        rs = db.execute("SELECT name FROM t ORDER BY id")
        assert rs.column("name") == ["a", "b"]

    def test_insert_arity_mismatch(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT, name TEXT)")
        with pytest.raises(SqlError):
            db.execute("INSERT INTO t (id) VALUES (1, 2)")

    def test_programmatic_create(self):
        db = Database()
        db.create_table(
            "t",
            [("id", "INT"), ("ref", "INT")],
            primary_key=["id"],
            foreign_keys=[(("ref",), "t2", ("id",))],
        )
        table = db.table("t")
        assert table.primary_key_columns() == ["id"]
        assert table.foreign_keys[0].ref_table == "t2"

    def test_insert_rows_bulk(self):
        db = Database()
        db.create_table("t", [("id", "INT")])
        assert db.insert_rows("t", [(1,), (2,), (3,)]) == 3
        assert db.row_count("t") == 3

    def test_table_names(self):
        db = Database()
        db.create_table("b", [("id", "INT")])
        db.create_table("a", [("id", "INT")])
        assert db.table_names() == ["a", "b"]

    def test_result_set_helpers(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT, name TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'a')")
        rs = db.execute("SELECT * FROM t")
        assert rs.as_dicts() == [{"id": 1, "name": "a"}]
        assert len(rs) == 1
        with pytest.raises(SqlError):
            rs.column("missing")
