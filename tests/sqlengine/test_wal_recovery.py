"""Durability: WAL codec, checkpoints, crash recovery, fault injection.

The centerpiece is the byte-budget sweep: the same workload is run
against a :class:`FaultInjector` that kills the write path after *N*
bytes, for every *N* from 0 to the workload's total WAL traffic, and
each torn prefix must recover to a state byte-identical to an oracle
that executed only the statements acknowledged before the crash.
"""

import gzip
import os
import struct
import zlib

import pytest

from repro.errors import RecoveryError, SqlExecutionError, TransactionError
from repro.sqlengine.database import Database
from repro.sqlengine.txn import (
    FaultInjector,
    FileLogStorage,
    InjectedCrash,
)
from repro.sqlengine.txn.wal import (
    MemoryLogStorage,
    dump_payload,
    encode_record,
    load_payload,
    scan_records,
)

SEED_SQL = [
    "CREATE TABLE items (id INT PRIMARY KEY, grp INT, amount REAL, "
    "label TEXT)",
    "INSERT INTO items VALUES (1, 1, 10.0, 'alpha'), (2, 1, 20.0, 'beta')",
]

WORKLOAD_SQL = SEED_SQL + [
    "INSERT INTO items VALUES (3, 2, 30.0, NULL)",
    "UPDATE items SET amount = amount + 1.0 WHERE grp = 1",
    "BEGIN",
    "INSERT INTO items VALUES (4, 2, 40.0, 'delta')",
    "DELETE FROM items WHERE id = 1",
    "COMMIT",
    "UPDATE items SET label = 'last' WHERE id = 3",
]


def catalog_state(db: Database) -> dict:
    state = {"fingerprint": db.catalog.fingerprint()}
    for name in db.table_names():
        table = db.table(name)
        state[name] = {
            "rows": list(table.rows),
            "columns": [
                list(table.column_data(i)) for i in range(len(table.columns))
            ],
        }
    return state


def oracle_state(statements) -> dict:
    """The state an in-memory database reaches executing *statements*.

    An open explicit transaction at the end is rolled back — a crash
    discards uncommitted work by definition.
    """
    db = Database()
    for sql in statements:
        db.execute(sql)
    if db.txn.active:
        db.execute("ROLLBACK")
    return catalog_state(db)


class TestRecordCodec:
    def test_round_trip(self):
        payload = dump_payload({"t": "sql", "sql": "SELECT 1"})
        record = encode_record(payload)
        payloads, length, corruption = scan_records(record)
        assert payloads == [payload]
        assert length == len(record)
        assert corruption is None
        assert load_payload(payloads[0]) == {"t": "sql", "sql": "SELECT 1"}

    def test_date_values_survive(self):
        import datetime

        day = datetime.date(2024, 2, 29)
        out = load_payload(dump_payload({"rows": [[1, day]]}))
        assert out == {"rows": [[1, day]]}

    def test_empty_log(self):
        assert scan_records(b"") == ([], 0, None)

    def test_torn_header_tolerated(self):
        record = encode_record(b"hello")
        payloads, length, corruption = scan_records(record + b"\x00\x01")
        assert payloads == [b"hello"]
        assert length == len(record)
        assert corruption is None

    def test_torn_payload_tolerated(self):
        first = encode_record(b"hello")
        second = encode_record(b"world")
        data = first + second[:-2]
        payloads, length, corruption = scan_records(data)
        assert payloads == [b"hello"]
        assert length == len(first)
        assert corruption is None

    def test_bad_final_checksum_is_a_torn_write(self):
        first = encode_record(b"hello")
        bad = struct.pack(">II", 5, zlib.crc32(b"other")) + b"xxxxx"
        payloads, length, corruption = scan_records(first + bad)
        assert payloads == [b"hello"]
        assert length == len(first)
        assert corruption is None

    def test_mid_log_checksum_failure_is_corruption(self):
        first = encode_record(b"hello")
        second = bytearray(encode_record(b"world"))
        second[-1] ^= 0xFF  # flip a payload bit, keep the old CRC
        third = encode_record(b"again")
        payloads, length, corruption = scan_records(
            first + bytes(second) + third
        )
        assert payloads == [b"hello"]
        assert length == len(first)
        assert corruption is not None
        assert "checksum mismatch" in corruption

    def test_memory_log_storage(self):
        storage = MemoryLogStorage()
        storage.append(b"abc")
        assert storage.synced_length == 0
        storage.sync()
        assert storage.synced_length == 3
        storage.append(b"def")
        assert storage.read() == b"abcdef"
        storage.truncate(2)
        assert storage.read() == b"ab"
        assert storage.synced_length == 2


class TestRoundTrip:
    def test_fresh_directory_replays_wal(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = Database(data_dir=data_dir)
        assert db.recovery_info == {
            "checkpoint": False,
            "replayed": 0,
            "generation": 0,
        }
        for sql in WORKLOAD_SQL:
            db.execute(sql)
        expected = catalog_state(db)
        db.close()

        reopened = Database(data_dir=data_dir)
        assert reopened.recovery_info["checkpoint"] is False
        assert reopened.recovery_info["replayed"] > 0
        assert catalog_state(reopened) == expected
        assert catalog_state(reopened) == oracle_state(WORKLOAD_SQL)
        reopened.close()

    def test_checkpoint_then_reopen(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = Database(data_dir=data_dir)
        for sql in WORKLOAD_SQL:
            db.execute(sql)
        summary = db.checkpoint()
        assert summary["generation"] == 1
        expected = catalog_state(db)
        db.close()

        reopened = Database(data_dir=data_dir)
        assert reopened.recovery_info == {
            "checkpoint": True,
            "replayed": 0,
            "generation": 1,
        }
        assert catalog_state(reopened) == expected
        reopened.close()

    def test_statements_after_checkpoint_replay_on_top(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = Database(data_dir=data_dir)
        for sql in WORKLOAD_SQL:
            db.execute(sql)
        db.execute("CHECKPOINT")
        db.execute("INSERT INTO items VALUES (9, 9, 9.0, 'post')")
        expected = catalog_state(db)
        db.close()

        reopened = Database(data_dir=data_dir)
        assert reopened.recovery_info == {
            "checkpoint": True,
            "replayed": 1,
            "generation": 1,
        }
        assert catalog_state(reopened) == expected
        reopened.close()

    def test_checkpoint_preserves_storage_layouts(self, tmp_path):
        """Dict-encoded and array-store columns survive the image."""
        data_dir = str(tmp_path / "db")
        db = Database(
            data_dir=data_dir, dict_encoding_threshold=4, array_store=True
        )
        db.execute("CREATE TABLE t (id INT, amount REAL, label TEXT)")
        db.insert_rows(
            "t",
            [(i, i * 1.5, ["red", "green", "blue"][i % 3]) for i in range(30)],
        )
        db.checkpoint()
        expected = catalog_state(db)
        db.close()

        reopened = Database(
            data_dir=data_dir, dict_encoding_threshold=4, array_store=True
        )
        assert catalog_state(reopened) == expected
        assert reopened.execute(
            "SELECT count(*) FROM t WHERE label = 'red'"
        ).rows == [(10,)]
        reopened.close()

    def test_insert_rows_and_create_table_replay(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = Database(data_dir=data_dir)
        db.create_table(
            "t",
            [("id", "INTEGER"), ("label", "TEXT")],
            primary_key=["id"],
        )
        db.insert_rows("t", [(1, "alpha"), (2, None)])
        expected = catalog_state(db)
        db.close()

        reopened = Database(data_dir=data_dir)
        assert catalog_state(reopened) == expected
        assert reopened.table("t").columns[0].primary_key
        reopened.close()

    def test_uncommitted_transaction_is_not_recovered(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = Database(data_dir=data_dir)
        for sql in SEED_SQL:
            db.execute(sql)
        db.execute("BEGIN")
        db.execute("DELETE FROM items")
        committed = oracle_state(SEED_SQL)
        db.close()  # crash with the transaction still open

        reopened = Database(data_dir=data_dir)
        assert catalog_state(reopened) == committed
        reopened.close()


class TestCorruption:
    def test_torn_tail_is_truncated(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = Database(data_dir=data_dir)
        for sql in SEED_SQL:
            db.execute(sql)
        expected = catalog_state(db)
        db.close()
        wal = os.path.join(data_dir, "wal.0.log")
        size = os.path.getsize(wal)
        with open(wal, "ab") as handle:
            handle.write(b"\x00\x00\x00\x10partial")

        reopened = Database(data_dir=data_dir)
        assert catalog_state(reopened) == expected
        assert os.path.getsize(wal) == size  # tail dropped on disk too
        reopened.close()

    def test_mid_log_bit_flip_raises(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = Database(data_dir=data_dir)
        for sql in SEED_SQL:
            db.execute(sql)
        db.close()
        wal = os.path.join(data_dir, "wal.0.log")
        with open(wal, "r+b") as handle:
            handle.seek(12)  # inside the first record's payload
            byte = handle.read(1)
            handle.seek(12)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(RecoveryError) as excinfo:
            Database(data_dir=data_dir)
        assert excinfo.value.kind == "wal"
        assert excinfo.value.path == wal

    def test_truncated_checkpoint_raises(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = Database(data_dir=data_dir)
        for sql in SEED_SQL:
            db.execute(sql)
        db.checkpoint()
        db.close()
        checkpoint = os.path.join(data_dir, "checkpoint.json.gz")
        image = open(checkpoint, "rb").read()
        with open(checkpoint, "wb") as handle:
            handle.write(image[: len(image) // 2])
        with pytest.raises(RecoveryError) as excinfo:
            Database(data_dir=data_dir)
        assert excinfo.value.kind == "checkpoint"
        assert excinfo.value.path == checkpoint

    def test_malformed_checkpoint_raises(self, tmp_path):
        data_dir = str(tmp_path / "db")
        os.makedirs(data_dir)
        checkpoint = os.path.join(data_dir, "checkpoint.json.gz")
        with open(checkpoint, "wb") as handle:
            handle.write(gzip.compress(b'{"not": "a checkpoint"}'))
        with pytest.raises(RecoveryError) as excinfo:
            Database(data_dir=data_dir)
        assert excinfo.value.kind == "checkpoint"

    def test_stale_generation_is_deleted_not_replayed(self, tmp_path):
        """Duplicate-replay protection across the checkpoint window."""
        data_dir = str(tmp_path / "db")
        db = Database(data_dir=data_dir)
        for sql in SEED_SQL:
            db.execute(sql)
        db.checkpoint()  # now at generation 1, wal.0.log deleted
        expected = catalog_state(db)
        db.close()
        # resurrect a stale pre-checkpoint WAL, as if the crash hit
        # between writing the new checkpoint and deleting the old log
        stale = os.path.join(data_dir, "wal.0.log")
        with open(stale, "wb") as handle:
            handle.write(
                encode_record(
                    dump_payload(
                        {"t": "sql", "sql": SEED_SQL[1]}  # the INSERT again
                    )
                )
            )

        reopened = Database(data_dir=data_dir)
        assert catalog_state(reopened) == expected  # rows NOT doubled
        assert not os.path.exists(stale)
        reopened.close()


class TestGuards:
    def test_checkpoint_requires_durability(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        with pytest.raises(SqlExecutionError, match="durable"):
            db.execute("CHECKPOINT")

    def test_checkpoint_inside_transaction_rejected(self, tmp_path):
        db = Database(data_dir=str(tmp_path / "db"))
        db.execute("CREATE TABLE t (id INT)")
        db.execute("BEGIN")
        with pytest.raises(TransactionError):
            db.execute("CHECKPOINT")
        db.execute("ROLLBACK")
        db.close()


def run_workload_until_crash(data_dir: str, byte_budget: "int | None"):
    """Run WORKLOAD_SQL durably, killing the WAL after *byte_budget* bytes.

    Returns the statements acknowledged (completed without raising)
    before the crash.  The database object is abandoned afterwards,
    exactly like a killed process.
    """
    db = Database(
        data_dir=data_dir,
        wal_storage_factory=lambda path: FaultInjector(
            FileLogStorage(path), byte_budget=byte_budget
        ),
    )
    acknowledged = []
    try:
        for sql in WORKLOAD_SQL:
            db.execute(sql)
            acknowledged.append(sql)
    except InjectedCrash:
        pass
    return acknowledged


class TestFaultInjection:
    def test_crash_at_every_byte_boundary(self, tmp_path):
        """Recovery from any torn WAL prefix equals the acknowledged state."""
        total = run_workload_until_crash(str(tmp_path / "full"), None)
        assert total == WORKLOAD_SQL
        wal_bytes = os.path.getsize(str(tmp_path / "full" / "wal.0.log"))
        assert wal_bytes > 0

        for budget in range(wal_bytes + 1):
            data_dir = str(tmp_path / f"crash{budget}")
            acknowledged = run_workload_until_crash(data_dir, budget)
            recovered = Database(data_dir=data_dir)
            assert catalog_state(recovered) == oracle_state(acknowledged), (
                f"divergence at byte budget {budget} "
                f"({len(acknowledged)} acknowledged statements)"
            )
            recovered.close()

    def test_crashed_statement_rolls_back_in_memory(self, tmp_path):
        """A WAL write failure degrades to a failed statement, not poison."""
        data_dir = str(tmp_path / "db")
        plain = Database(data_dir=data_dir)
        for sql in SEED_SQL:
            plain.execute(sql)
        plain.close()
        wal_bytes = os.path.getsize(os.path.join(data_dir, "wal.0.log"))

        crash_dir = str(tmp_path / "crash")
        db = Database(
            data_dir=crash_dir,
            wal_storage_factory=lambda path: FaultInjector(
                FileLogStorage(path), byte_budget=wal_bytes + 10
            ),
        )
        for sql in SEED_SQL:
            db.execute(sql)
        before = catalog_state(db)
        with pytest.raises(InjectedCrash):
            db.execute("DELETE FROM items")
        assert catalog_state(db) == before

    def test_failed_commit_rolls_the_transaction_back(self, tmp_path):
        data_dir = str(tmp_path / "db")
        db = Database(
            data_dir=data_dir,
            wal_storage_factory=lambda path: FaultInjector(
                FileLogStorage(path), fail_sync=True
            ),
        )
        # fail_sync kills every commit point; even CREATE TABLE can't
        # be acknowledged, so drive the catalog programmatically by
        # disabling the injector for the seed, then arming it
        with pytest.raises(InjectedCrash):
            db.execute("CREATE TABLE t (id INT)")
        assert db.table_names() == []  # the create was rolled back

    def test_fail_sync_after_seed(self, tmp_path):
        data_dir = str(tmp_path / "db")
        injectors = []

        def factory(path):
            injector = FaultInjector(FileLogStorage(path))
            injectors.append(injector)
            return injector

        db = Database(data_dir=data_dir, wal_storage_factory=factory)
        for sql in SEED_SQL:
            db.execute(sql)
        before = catalog_state(db)
        injectors[-1].fail_sync = True
        db.execute("BEGIN")
        db.execute("DELETE FROM items WHERE id = 1")
        with pytest.raises(InjectedCrash):
            db.execute("COMMIT")
        # the commit was refused: memory shows the pre-transaction state
        assert catalog_state(db) == before
        assert not db.txn.active
