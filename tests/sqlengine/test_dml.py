"""UPDATE/DELETE: parsing, execution, 3VL matching, storage sync.

The mutation path is shared by both execution engines, so every
behavioral test here runs in ``row`` and ``batch`` mode and asserts
byte-identical outcomes; storage-sync tests check that the tuple list
and the columnar store never diverge.
"""

import pytest

from repro.errors import (
    SqlCatalogError,
    SqlExecutionError,
    SqlSyntaxError,
    SqlTypeError,
)
from repro.sqlengine.ast_nodes import Delete, Update
from repro.sqlengine.database import Database
from repro.sqlengine.parser import parse_sql


def make_db(mode: str = "batch") -> Database:
    db = Database(execution_mode=mode)
    db.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, grp INT, amount REAL, "
        "label TEXT)"
    )
    db.execute(
        "INSERT INTO items VALUES "
        "(1, 1, 10.0, 'alpha'), (2, 1, 20.0, 'beta'), "
        "(3, 2, 30.0, NULL), (4, NULL, 40.0, 'delta')"
    )
    return db


def storage_snapshot(db: Database, table: str = "items"):
    """Both storage layouts, for lockstep assertions."""
    t = db.table(table)
    columns = [t.column_data(i) for i in range(len(t.columns))]
    return list(t.rows), [list(c) for c in columns]


def assert_storages_in_sync(db: Database, table: str = "items"):
    rows, columns = storage_snapshot(db, table)
    rebuilt = [tuple(column[i] for column in columns)
               for i in range(len(rows))]
    assert rebuilt == rows


class TestParsing:
    def test_update_statement(self):
        stmt = parse_sql(
            "UPDATE items SET label = 'x', amount = amount + 1 WHERE id = 2"
        )
        assert isinstance(stmt, Update)
        assert stmt.table == "items"
        assert [a.column for a in stmt.assignments] == ["label", "amount"]
        assert stmt.where is not None
        assert stmt.to_sql() == (
            "UPDATE items SET label = 'x', amount = (amount + 1) "
            "WHERE (id = 2)"
        )

    def test_update_without_where(self):
        stmt = parse_sql("UPDATE items SET grp = 0")
        assert isinstance(stmt, Update)
        assert stmt.where is None

    def test_delete_statement(self):
        stmt = parse_sql("DELETE FROM items WHERE grp = 1;")
        assert isinstance(stmt, Delete)
        assert stmt.table == "items"
        assert stmt.to_sql() == "DELETE FROM items WHERE (grp = 1)"

    def test_delete_without_where(self):
        stmt = parse_sql("DELETE FROM items")
        assert isinstance(stmt, Delete)
        assert stmt.where is None

    def test_update_requires_set(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("UPDATE items WHERE id = 1")

    def test_delete_requires_from(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("DELETE items WHERE id = 1")


@pytest.mark.parametrize("mode", ["row", "batch"])
class TestUpdate:
    def test_update_matching_rows(self, mode):
        db = make_db(mode)
        result = db.execute("UPDATE items SET amount = 99.0 WHERE grp = 1")
        assert result.rowcount == 2
        assert db.execute(
            "SELECT id, amount FROM items ORDER BY id"
        ).rows == [(1, 99.0), (2, 99.0), (3, 30.0), (4, 40.0)]
        assert_storages_in_sync(db)

    def test_set_expressions_read_the_old_row(self, mode):
        db = make_db(mode)
        db.execute("UPDATE items SET amount = amount * 2, grp = id")
        assert db.execute(
            "SELECT grp, amount FROM items ORDER BY id"
        ).rows == [(1, 20.0), (2, 40.0), (3, 60.0), (4, 80.0)]
        assert_storages_in_sync(db)

    def test_swap_via_old_row_semantics(self, mode):
        db = Database(execution_mode=mode)
        db.execute("CREATE TABLE p (a INT, b INT)")
        db.execute("INSERT INTO p VALUES (1, 2)")
        db.execute("UPDATE p SET a = b, b = a")
        assert db.execute("SELECT a, b FROM p").rows == [(2, 1)]

    def test_null_where_does_not_match(self, mode):
        """3VL: a WHERE evaluating to NULL leaves the row untouched."""
        db = make_db(mode)
        # grp IS NULL on row 4 makes "grp = 1" evaluate to NULL there
        result = db.execute("UPDATE items SET amount = 0.0 WHERE grp = 1")
        assert result.rowcount == 2
        assert db.execute(
            "SELECT amount FROM items WHERE id = 4"
        ).rows == [(40.0,)]

    def test_where_null_comparison_updates_nothing(self, mode):
        db = make_db(mode)
        result = db.execute("UPDATE items SET amount = 0.0 WHERE grp = NULL")
        assert result.rowcount == 0
        assert db.execute("SELECT sum(amount) FROM items").rows == [(100.0,)]

    def test_update_to_null_and_back(self, mode):
        db = make_db(mode)
        db.execute("UPDATE items SET label = NULL WHERE id = 1")
        assert db.execute(
            "SELECT id FROM items WHERE label IS NULL ORDER BY id"
        ).rows == [(1,), (3,)]
        db.execute("UPDATE items SET label = 'restored' WHERE id = 1")
        assert db.execute(
            "SELECT label FROM items WHERE id = 1"
        ).rows == [("restored",)]
        assert_storages_in_sync(db)

    def test_update_unknown_column_raises(self, mode):
        db = make_db(mode)
        with pytest.raises(SqlCatalogError):
            db.execute("UPDATE items SET nope = 1")

    def test_update_unknown_table_raises(self, mode):
        db = make_db(mode)
        with pytest.raises(SqlCatalogError):
            db.execute("UPDATE missing SET id = 1")

    def test_duplicate_assignment_raises(self, mode):
        db = make_db(mode)
        with pytest.raises(SqlCatalogError):
            db.execute("UPDATE items SET grp = 1, grp = 2")

    def test_type_error_leaves_table_untouched(self, mode):
        db = make_db(mode)
        before = storage_snapshot(db)
        with pytest.raises(SqlTypeError):
            db.execute("UPDATE items SET grp = 'not an int'")
        assert storage_snapshot(db) == before

    def test_out_of_range_position_leaves_table_untouched(self, mode):
        """The primitive validates before the first write (atomicity)."""
        db = make_db(mode)
        table = db.table("items")
        before = storage_snapshot(db)
        version = table.version
        for positions in ([0, 99], [-1]):
            with pytest.raises(SqlCatalogError, match="out of range"):
                table.update_positions(
                    positions, [(8, 8, 8.0, "x")] * len(positions)
                )
        assert storage_snapshot(db) == before
        assert table.version == version

    def test_aggregate_in_where_raises(self, mode):
        db = make_db(mode)
        with pytest.raises(SqlExecutionError):
            db.execute("UPDATE items SET grp = 1 WHERE count(*) > 1")


@pytest.mark.parametrize("mode", ["row", "batch"])
class TestDelete:
    def test_delete_matching_rows(self, mode):
        db = make_db(mode)
        result = db.execute("DELETE FROM items WHERE amount > 25.0")
        assert result.rowcount == 2
        assert db.execute(
            "SELECT id FROM items ORDER BY id"
        ).rows == [(1,), (2,)]
        assert_storages_in_sync(db)

    def test_null_where_does_not_match(self, mode):
        db = make_db(mode)
        result = db.execute("DELETE FROM items WHERE grp = 2")
        assert result.rowcount == 1
        # row 4 (grp NULL) survives: NULL never matches
        assert db.execute(
            "SELECT id FROM items ORDER BY id"
        ).rows == [(1,), (2,), (4,)]

    def test_delete_every_row(self, mode):
        db = make_db(mode)
        result = db.execute("DELETE FROM items")
        assert result.rowcount == 4
        assert db.execute("SELECT count(*) FROM items").rows == [(0,)]
        assert db.execute("SELECT * FROM items").rows == []
        rows, columns = storage_snapshot(db)
        assert rows == []
        assert all(column == [] for column in columns)
        # the emptied table accepts fresh inserts on both storages
        db.execute("INSERT INTO items VALUES (9, 9, 9.0, 'nine')")
        assert db.execute("SELECT label FROM items").rows == [("nine",)]
        assert_storages_in_sync(db)

    def test_delete_unknown_table_raises(self, mode):
        db = make_db(mode)
        with pytest.raises(SqlCatalogError):
            db.execute("DELETE FROM missing")


class TestModeParity:
    """Identical DML workloads leave row and batch databases byte-equal."""

    WORKLOAD = [
        "UPDATE items SET amount = amount + 0.5 WHERE grp = 1",
        "DELETE FROM items WHERE label LIKE 'b%'",
        "UPDATE items SET label = upper(label) WHERE label IS NOT NULL",
        "INSERT INTO items VALUES (5, 2, 50.0, 'epsilon')",
        "UPDATE items SET grp = grp + 1 WHERE amount BETWEEN 20.0 AND 60.0",
        "DELETE FROM items WHERE grp = 3 AND amount < 35.0",
    ]

    def test_byte_identical_after_mixed_dml(self):
        row_db, batch_db = make_db("row"), make_db("batch")
        for sql in self.WORKLOAD:
            row_result = row_db.execute(sql)
            batch_result = batch_db.execute(sql)
            assert row_result.rowcount == batch_result.rowcount, sql
        assert storage_snapshot(row_db) == storage_snapshot(batch_db)
        probe = "SELECT * FROM items ORDER BY id"
        assert row_db.execute(probe).rows == batch_db.execute(probe).rows

    def test_large_table_batch_boundaries(self):
        """Batch-mode WHERE spans multiple 1024-row batches correctly."""
        row_db, batch_db = Database(execution_mode="row"), Database(
            execution_mode="batch"
        )
        for db in (row_db, batch_db):
            db.execute("CREATE TABLE big (id INT, bucket INT)")
            db.insert_rows("big", [(i, i % 7) for i in range(3000)])
            db.execute("UPDATE big SET bucket = 99 WHERE bucket = 3")
            db.execute("DELETE FROM big WHERE bucket = 5")
        probe = "SELECT count(*), sum(bucket) FROM big"
        assert row_db.execute(probe).rows == batch_db.execute(probe).rows
        assert storage_snapshot(row_db, "big") == storage_snapshot(
            batch_db, "big"
        )


class TestVersionsAndFingerprint:
    def test_update_bumps_version_and_mutations(self):
        db = make_db()
        table = db.table("items")
        version, mutations = table.version, table.mutation_count
        db.execute("UPDATE items SET grp = 5 WHERE id = 1")
        assert table.version == version + 1
        assert table.mutation_count == mutations + 1

    def test_no_match_bumps_nothing(self):
        db = make_db()
        table = db.table("items")
        version = table.version
        db.execute("UPDATE items SET grp = 5 WHERE id = 999")
        db.execute("DELETE FROM items WHERE id = 999")
        assert table.version == version

    def test_fingerprint_reflects_update_and_delete_reinsert(self):
        db = make_db()
        start = db.catalog.fingerprint()
        db.execute("UPDATE items SET amount = 11.0 WHERE id = 1")
        after_update = db.catalog.fingerprint()
        assert after_update != start  # row count unchanged, mutations not
        db.execute("DELETE FROM items WHERE id = 1")
        db.execute("INSERT INTO items VALUES (1, 1, 11.0, 'alpha')")
        after_churn = db.catalog.fingerprint()
        assert after_churn != after_update
        assert after_churn[1] == after_update[1]  # same total row count
