"""Row/batch execution parity across the whole query corpus.

Property-style lock for the vectorized engine: every query shape the
SQL layer supports is executed through both ``execution_mode="row"``
and ``execution_mode="batch"`` and must produce *byte-identical*
``ResultSet``s — same columns, same rows, same order.  Includes the
planner fixture corpus plus edge cases: empty tables, all-NULL
columns, LEFT JOIN padding, DISTINCT + ORDER BY, and error parity.

The batch side is additionally swept across the full engine-knob
matrix — fused expression codegen on/off × array-backed column
storage on/off × morsel workers 1/4 (with batches shrunk so the
fixtures genuinely span multiple morsels) — and every combination
must match row mode byte-for-byte, including which exception a
failing query raises.
"""

import pytest

from repro.errors import SqlError
from repro.sqlengine.database import Database

from tests.sqlengine.test_planner import NAIVE_EQUIVALENCE_QUERIES


def _populate_planner_schema(db: Database) -> None:
    """The test_planner fixture schema (small / big / small2)."""
    db.execute("CREATE TABLE small (id INT PRIMARY KEY, tag TEXT)")
    db.execute(
        "CREATE TABLE big (id INT PRIMARY KEY, small_id INT, amount REAL, "
        "status TEXT)"
    )
    db.execute("CREATE TABLE small2 (id INT PRIMARY KEY, note TEXT)")
    db.execute("INSERT INTO small VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    db.execute(
        "INSERT INTO big VALUES "
        + ", ".join(
            f"({i}, {i % 3 + 1}, {i * 10.0}, "
            f"'{'OPEN' if i % 4 else 'DONE'}')"
            for i in range(1, 41)
        )
    )
    db.execute("INSERT INTO small2 VALUES (1, 'x'), (2, 'y'), (3, 'z')")


def _populate_rich_schema(db: Database) -> None:
    """NULL-heavy schema with empty / all-NULL / date / boolean columns."""
    db.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, name TEXT, val REAL, "
        "flag BOOLEAN, born DATE, grp TEXT)"
    )
    db.execute("CREATE TABLE child (id INT, t_id INT, label TEXT)")
    db.execute("CREATE TABLE empty_t (id INT, name TEXT)")
    db.execute("CREATE TABLE all_null (id INT, hole TEXT)")
    rows = [
        "(1, 'alpha', 1.5, TRUE, '1990-01-15', 'g1')",
        "(2, 'beta', NULL, FALSE, '1985-06-30', 'g1')",
        "(3, NULL, -2.25, TRUE, NULL, 'g2')",
        "(4, 'delta', 0.0, NULL, '2000-12-01', 'g2')",
        "(5, 'Echo', 7.0, FALSE, '1990-01-15', NULL)",
        "(6, 'alpha', 3.5, TRUE, '1970-03-03', 'g3')",
    ]
    db.execute("INSERT INTO t VALUES " + ", ".join(rows))
    db.execute(
        "INSERT INTO child VALUES (1, 1, 'c1'), (2, 1, 'c2'), (3, 3, 'c3'), "
        "(4, NULL, 'c4'), (5, 99, 'c5')"
    )
    db.execute(
        "INSERT INTO all_null VALUES (1, NULL), (2, NULL), (3, NULL)"
    )


def _dual(populate) -> tuple:
    databases = []
    for mode in ("row", "batch"):
        db = Database(execution_mode=mode)
        populate(db)
        databases.append(db)
    return tuple(databases)


@pytest.fixture(scope="module")
def planner_dbs():
    return _dual(_populate_planner_schema)


@pytest.fixture(scope="module")
def rich_dbs():
    return _dual(_populate_rich_schema)


def _assert_parity(dbs, sql: str) -> None:
    row_db, batch_db = dbs
    row_rs = row_db.execute(sql)
    batch_rs = batch_db.execute(sql)
    assert batch_rs.columns == row_rs.columns, sql
    assert batch_rs.rows == row_rs.rows, sql


class TestPlannerCorpusParity:
    @pytest.mark.parametrize("sql", NAIVE_EQUIVALENCE_QUERIES)
    def test_fixture_queries_identical(self, planner_dbs, sql):
        _assert_parity(planner_dbs, sql)


RICH_CORPUS = [
    # scans + projection
    "SELECT * FROM t",
    "SELECT t.* FROM t",
    "SELECT id, name FROM t",
    "SELECT id + 1, val * 2, -val FROM t",
    "SELECT name || '!' FROM t",
    "SELECT lower(name), upper(name), length(name) FROM t",
    "SELECT abs(val), coalesce(name, grp, 'none') FROM t",
    "SELECT year(born), month(born) FROM t",
    "SELECT CASE WHEN val > 1 THEN 'big' WHEN val >= 0 THEN 'small' "
    "ELSE 'neg' END FROM t",
    # filters: every comparison + logic shape
    "SELECT id FROM t WHERE id = 3",
    "SELECT id FROM t WHERE id <> 3",
    "SELECT id FROM t WHERE val < 2.0",
    "SELECT id FROM t WHERE val <= 1.5",
    "SELECT id FROM t WHERE val > 0",
    "SELECT id FROM t WHERE val >= 0.0",
    "SELECT id FROM t WHERE 4 > id",
    "SELECT id FROM t WHERE name = 'alpha' AND val > 1",
    "SELECT id FROM t WHERE name = 'alpha' OR grp = 'g2'",
    "SELECT id FROM t WHERE NOT (flag = TRUE)",
    "SELECT id FROM t WHERE name LIKE 'a%'",
    "SELECT id FROM t WHERE name NOT LIKE '%a'",
    "SELECT id FROM t WHERE name LIKE grp",
    "SELECT id FROM t WHERE id IN (1, 3, 5)",
    "SELECT id FROM t WHERE id NOT IN (1, 3, 5)",
    "SELECT id FROM t WHERE name IN ('alpha', 'Echo')",
    "SELECT id FROM t WHERE id IN (val, 2)",
    "SELECT id FROM t WHERE val BETWEEN 0 AND 4",
    "SELECT id FROM t WHERE val NOT BETWEEN 0 AND 4",
    "SELECT id FROM t WHERE name IS NULL",
    "SELECT id FROM t WHERE born IS NOT NULL",
    "SELECT id FROM t WHERE CASE WHEN grp = 'g1' THEN 1 ELSE 0 END = 1",
    "SELECT id FROM t WHERE born > '1989-01-01'",
    # joins
    "SELECT t.id, child.label FROM t, child WHERE t.id = child.t_id",
    "SELECT t.id, c.label FROM t JOIN child c ON t.id = c.t_id "
    "WHERE c.label <> 'c2'",
    "SELECT a.id, b.id FROM t a, t b WHERE a.id = b.id AND a.grp = b.grp",
    "SELECT t.id, e.id FROM t, empty_t e",
    "SELECT t.id, c.label FROM t LEFT JOIN child c ON t.id = c.t_id",
    "SELECT t.id, c.label FROM t LEFT JOIN child c "
    "ON t.id = c.t_id AND c.label <> 'c1'",
    "SELECT t.id, e.name FROM t LEFT JOIN empty_t e ON t.id = e.id",
    # aggregates
    "SELECT count(*) FROM t",
    "SELECT count(name) FROM t",
    "SELECT count(DISTINCT name) FROM t",
    "SELECT sum(val), avg(val), min(val), max(val) FROM t",
    "SELECT grp, count(*) FROM t GROUP BY grp",
    "SELECT grp, sum(val) FROM t GROUP BY grp HAVING count(*) > 1",
    "SELECT grp, flag, count(*) FROM t GROUP BY grp, flag",
    "SELECT year(born), count(*) FROM t GROUP BY year(born)",
    "SELECT count(*) FROM empty_t",
    "SELECT sum(id), min(name) FROM empty_t",
    "SELECT count(hole), count(*) FROM all_null",
    "SELECT sum(id) FROM all_null WHERE hole IS NOT NULL",
    "SELECT min(hole), max(hole) FROM all_null",
    # distinct / sort / limit
    "SELECT DISTINCT grp FROM t",
    "SELECT DISTINCT grp FROM t ORDER BY grp",
    "SELECT DISTINCT grp, flag FROM t ORDER BY grp DESC, flag",
    "SELECT id, name FROM t ORDER BY name",
    "SELECT id, name FROM t ORDER BY 2 DESC, 1",
    "SELECT id, val FROM t ORDER BY val DESC",
    "SELECT id FROM t ORDER BY grp, born DESC, id",
    "SELECT id AS ident FROM t ORDER BY ident DESC",
    "SELECT id FROM t ORDER BY val + id",
    "SELECT id FROM t ORDER BY id LIMIT 3",
    "SELECT id FROM t ORDER BY id LIMIT 0",
    "SELECT id FROM t ORDER BY id LIMIT 99",
    "SELECT grp, count(*) FROM t GROUP BY grp ORDER BY count(*) DESC, grp",
    # set operations
    "SELECT id FROM t UNION SELECT t_id FROM child",
    "SELECT grp FROM t UNION ALL SELECT label FROM child",
    "SELECT id FROM empty_t UNION SELECT id FROM t WHERE id > 4",
]


class TestRichCorpusParity:
    @pytest.mark.parametrize("sql", RICH_CORPUS)
    def test_byte_identical_results(self, rich_dbs, sql):
        _assert_parity(rich_dbs, sql)


class TestErrorParity:
    ERROR_QUERIES = [
        "SELECT id FROM t WHERE id = 1 / 0",
        "SELECT val / 0 FROM t",
        "SELECT name + 1 FROM t",
        "SELECT -name FROM t",
        "SELECT abs(name) FROM t",
        "SELECT sum(name) FROM t",
    ]

    @pytest.mark.parametrize("sql", ERROR_QUERIES)
    def test_same_error_both_modes(self, rich_dbs, sql):
        row_db, batch_db = rich_dbs
        with pytest.raises(SqlError) as row_error:
            row_db.execute(sql)
        with pytest.raises(SqlError) as batch_error:
            batch_db.execute(sql)
        assert type(batch_error.value) is type(row_error.value)
        assert str(batch_error.value) == str(row_error.value)

    def test_short_circuit_protects_division(self, rich_dbs):
        # row mode never divides where the guard is False; batch mode
        # must compact the batch the same way instead of raising
        sql = "SELECT id FROM t WHERE val <> 0.0 AND 10 / val > 1"
        _assert_parity(rich_dbs, sql)

    def test_case_guards_division(self, rich_dbs):
        sql = (
            "SELECT CASE WHEN val > 0 THEN 10 / val ELSE 0 END FROM t "
            "WHERE val IS NOT NULL"
        )
        _assert_parity(rich_dbs, sql)

    def test_in_list_items_short_circuit(self):
        # row mode never evaluates 10 / y for the row whose x matched
        # the first item; batch mode must confine later items to the
        # rows that actually reach them
        row_db, batch_db = _dual(
            lambda db: (
                db.execute("CREATE TABLE g (x INT, y INT)"),
                db.execute("INSERT INTO g VALUES (1, 0), (5, 2)"),
            )
        )
        sql = "SELECT x FROM g WHERE x IN (1, 10 / y)"
        assert batch_db.execute(sql).rows == row_db.execute(sql).rows == [
            (1,),
            (5,),
        ]

    def test_like_null_pattern_still_evaluates_operand(self):
        row_db, batch_db = _dual(
            lambda db: (
                db.execute("CREATE TABLE g (x INT, y INT)"),
                db.execute("INSERT INTO g VALUES (1, 0)"),
            )
        )
        sql = "SELECT x FROM g WHERE (10 / y) LIKE NULL"
        for db in (row_db, batch_db):
            with pytest.raises(SqlError, match="division by zero"):
                db.execute(sql)


class TestFloatEdgeParity:
    """NaN and -0.0 reach the engine via the programmatic insert path."""

    @staticmethod
    def _nan_dbs():
        def populate(db):
            db.create_table("f", [("id", "INT"), ("x", "REAL")])
            db.insert_rows(
                "f", [(1, float("nan")), (2, 1.0), (3, -0.0), (4, None)]
            )

        return _dual(populate)

    def test_nan_in_list_matches_row_mode(self):
        row_db, batch_db = self._nan_dbs()
        # compare_values treats NaN as equal to any number, so row mode
        # keeps the NaN row; the batch set fast path must agree
        sql = "SELECT id FROM f WHERE x IN (5.0, 6.0)"
        row_rows = row_db.execute(sql).rows
        assert batch_db.execute(sql).rows == row_rows == [(1,)]

    def test_nan_survives_statistics_collection(self):
        row_db, batch_db = self._nan_dbs()
        # histogram build must not crash on non-finite values
        for db in (row_db, batch_db):
            assert db.execute("SELECT count(*) FROM f WHERE x > 0.5").rows \
                == [(1,)]

    def test_negative_zero_sum_is_byte_identical(self):
        def populate(db):
            db.create_table("z", [("x", "REAL")])
            db.insert_rows("z", [(-0.0,), (None,)])

        row_db, batch_db = _dual(populate)
        sql = "SELECT sum(x) FROM z"
        row_rows = row_db.execute(sql).rows
        batch_rows = batch_db.execute(sql).rows
        assert repr(batch_rows) == repr(row_rows) == "[(-0.0,)]"


def _populate_string_schema(db: Database) -> None:
    """Low-cardinality TEXT-heavy schema for the dictionary-encoded paths.

    ``items`` carries three encodable TEXT columns (with NULLs and
    repeated values), ``codes`` is a LEFT JOIN target with NULL keys
    and duplicate keys, and ``no_rows`` exercises empty right sides.
    """
    db.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, status TEXT, city TEXT, "
        "note TEXT, score REAL)"
    )
    db.execute("CREATE TABLE codes (code TEXT, label TEXT)")
    db.execute("CREATE TABLE no_rows (code TEXT, label TEXT)")
    statuses = ["NEW", "OPEN", "HELD", "DONE", None]
    cities = ["Zurich", "Basel", "Geneva", None, "Bern", "Zug"]
    rows = []
    for i in range(200):
        status = statuses[i % 5]
        city = cities[(i * 3) % 6]
        note = None if i % 17 == 0 else f"note {i % 9}"
        rows.append(
            "({}, {}, {}, {}, {})".format(
                i,
                "NULL" if status is None else f"'{status}'",
                "NULL" if city is None else f"'{city}'",
                "NULL" if note is None else f"'{note}'",
                "NULL" if i % 13 == 0 else f"{(i * 7) % 50}.5",
            )
        )
    db.execute("INSERT INTO items VALUES " + ", ".join(rows))
    db.execute(
        "INSERT INTO codes VALUES ('NEW', 'fresh'), ('DONE', 'finished'), "
        "(NULL, 'unkeyed'), ('DONE', 'complete'), ('GONE', 'unmatched')"
    )


STRING_CORPUS = [
    # encoded fast paths: equality / inequality / IN / LIKE
    "SELECT id FROM items WHERE status = 'DONE'",
    "SELECT id FROM items WHERE status <> 'DONE'",
    "SELECT id FROM items WHERE status = 'ABSENT'",
    "SELECT id FROM items WHERE status <> 'ABSENT'",
    "SELECT id FROM items WHERE 'OPEN' = status",
    "SELECT id FROM items WHERE status IN ('NEW', 'HELD')",
    "SELECT id FROM items WHERE status NOT IN ('NEW', 'HELD')",
    "SELECT id FROM items WHERE status IN ('ABSENT', 'MISSING')",
    "SELECT id FROM items WHERE city LIKE 'Z%'",
    "SELECT id FROM items WHERE city NOT LIKE '%e%'",
    "SELECT id FROM items WHERE city LIKE '_asel'",
    "SELECT id FROM items WHERE status LIKE note",
    # encoded columns through expressions, ordering, grouping
    "SELECT lower(status), upper(city) FROM items",
    "SELECT status || '-' || city FROM items",
    "SELECT coalesce(status, city, 'none') FROM items",
    "SELECT id, status FROM items ORDER BY status, id",
    "SELECT id FROM items ORDER BY city DESC, status, id",
    "SELECT status, count(*) FROM items GROUP BY status",
    "SELECT status, city, count(*), min(score) FROM items "
    "GROUP BY status, city",
    "SELECT status, count(*) FROM items GROUP BY status "
    "HAVING count(*) > 30",
    "SELECT count(DISTINCT status), count(status) FROM items",
    "SELECT DISTINCT status FROM items",
    "SELECT DISTINCT status, city FROM items ORDER BY status, city",
    "SELECT CASE WHEN status = 'DONE' THEN city ELSE status END "
    "FROM items",
    # LIMIT with ORDER BY (the fused TopN path), including ties
    "SELECT id, status FROM items ORDER BY status, id LIMIT 7",
    "SELECT id FROM items ORDER BY city DESC, id LIMIT 5",
    "SELECT id FROM items ORDER BY score DESC, id LIMIT 3",
    "SELECT status, count(*) FROM items GROUP BY status "
    "ORDER BY count(*) DESC, status LIMIT 2",
    "SELECT id FROM items ORDER BY status LIMIT 0",
    "SELECT id FROM items ORDER BY status LIMIT 999",
    "SELECT DISTINCT status FROM items ORDER BY status LIMIT 3",
    # joins keyed on encoded TEXT columns
    "SELECT i.id, c.label FROM items i, codes c WHERE i.status = c.code",
    "SELECT i.id, c.label FROM items i JOIN codes c ON i.status = c.code "
    "WHERE c.label <> 'fresh'",
    # LEFT JOIN: hash path with NULL keys on both sides, duplicate
    # build keys, residual ON conjuncts, and empty right sides
    "SELECT i.id, c.label FROM items i LEFT JOIN codes c "
    "ON i.status = c.code",
    "SELECT i.id, c.label FROM items i LEFT JOIN codes c "
    "ON i.status = c.code AND c.label <> 'complete'",
    "SELECT i.id, c.label FROM items i LEFT JOIN codes c "
    "ON i.status = c.code AND c.label LIKE 'f%' AND i.score > 10",
    "SELECT i.id, n.label FROM items i LEFT JOIN no_rows n "
    "ON i.status = n.code",
    "SELECT i.id, c.label FROM items i LEFT JOIN codes c "
    "ON i.status = c.code AND i.city = 'Zurich' "
    "ORDER BY i.id, c.label LIMIT 20",
    # non-equi ON condition: broadcast fallback must agree too
    "SELECT i.id, c.label FROM items i LEFT JOIN codes c "
    "ON i.status > c.code WHERE i.id < 12",
]


@pytest.fixture(scope="module")
def string_dbs():
    """(row, batch-encoded, batch-unencoded) over the same data."""
    databases = [
        Database(execution_mode="row"),
        Database(execution_mode="batch"),
        Database(execution_mode="batch", dict_encoding_threshold=0),
    ]
    for db in databases:
        _populate_string_schema(db)
    return tuple(databases)


class TestStringHeavyParity:
    """Row / batch-encoded / batch-unencoded must be byte-identical."""

    def test_fixture_is_actually_encoded(self, string_dbs):
        __, encoded, unencoded = string_dbs
        items = encoded.table("items")
        assert items.encoded_column_names() == ["status", "city", "note"]
        assert unencoded.table("items").encoded_column_names() == []

    @pytest.mark.parametrize("sql", STRING_CORPUS)
    def test_three_way_byte_identical(self, string_dbs, sql):
        row_db, encoded_db, unencoded_db = string_dbs
        row_rs = row_db.execute(sql)
        encoded_rs = encoded_db.execute(sql)
        unencoded_rs = unencoded_db.execute(sql)
        assert encoded_rs.columns == row_rs.columns, sql
        assert encoded_rs.rows == row_rs.rows, sql
        assert unencoded_rs.columns == row_rs.columns, sql
        assert unencoded_rs.rows == row_rs.rows, sql

    def test_parity_survives_dml_and_gc(self, string_dbs):
        sql = (
            "SELECT status, city, count(*) FROM items "
            "GROUP BY status, city ORDER BY status, city LIMIT 8"
        )
        fresh = [
            Database(execution_mode="row"),
            Database(execution_mode="batch"),
            Database(execution_mode="batch", dict_encoding_threshold=0),
        ]
        for db in fresh:
            _populate_string_schema(db)
            db.execute("UPDATE items SET status = 'HELD' WHERE status = 'NEW'")
            db.execute("DELETE FROM items WHERE city = 'Zug'")
            db.execute(
                "UPDATE items SET city = NULL WHERE status = 'DONE'"
            )
        row_db, encoded_db, unencoded_db = fresh
        # 'NEW' and 'Zug' are gone: their codes must be collected
        status_dict = encoded_db.table("items").column_dictionary(1)
        assert "NEW" not in status_dict.code_of
        expected = row_db.execute(sql).rows
        assert encoded_db.execute(sql).rows == expected
        assert unencoded_db.execute(sql).rows == expected


class TestTopNParity:
    """The fused TopN operator vs the canonical Sort+Limit plan."""

    def test_optimized_plan_fuses_sort_limit(self, string_dbs):
        __, encoded_db, __unused = string_dbs
        plan = encoded_db.explain(
            "SELECT id FROM items ORDER BY status, id LIMIT 4"
        )
        assert "top-n 4 by status, id" in plan
        assert "sort by" not in plan
        assert "[dict: status" in plan

    def test_secondary_key_errors_survive_bound_pruning(self):
        # >1 batch of rows whose leading key loses to the bound must
        # still evaluate the secondary ORDER BY expression — row mode
        # and the unfused Sort+Limit raise, so the fused TopN must too
        def populate(db):
            db.execute("CREATE TABLE t (id INT, a INT, b INT)")
            db.insert_rows(
                "t",
                [(i, 0, 1) for i in range(1300)] + [(9999, 5, 0)],
            )

        row_db, batch_db = _dual(populate)
        sql = "SELECT id FROM t ORDER BY a, 10 / b LIMIT 2"
        with pytest.raises(SqlError) as row_error:
            row_db.execute(sql)
        with pytest.raises(SqlError) as batch_error:
            batch_db.execute(sql)
        assert str(batch_error.value) == str(row_error.value)
        assert "division by zero" in str(row_error.value)

    def test_canonical_plan_keeps_sort_limit(self, string_dbs):
        from repro.sqlengine.parser import parse_select
        from repro.sqlengine.planner import QueryPlanner

        __, encoded_db, __unused = string_dbs
        naive = QueryPlanner(encoded_db.catalog, optimize=False)
        select = parse_select(
            "SELECT id FROM items ORDER BY status, id LIMIT 4"
        )
        assert naive.execute(select).rows == encoded_db.execute(
            "SELECT id FROM items ORDER BY status, id LIMIT 4"
        ).rows


#: every combination of the PR-7 engine knobs: fused expression
#: codegen × array-backed column storage × morsel worker count
MODE_MATRIX = [
    pytest.param(fused, array, workers,
                 id=f"fused={int(fused)}-array={int(array)}-w={workers}")
    for fused in (True, False)
    for array in (True, False)
    for workers in (1, 4)
]


@pytest.fixture(scope="module")
def small_morsels():
    """Shrink batches/morsels so 200-row fixtures span many morsels."""
    import repro.sqlengine.planner.parallel as parallel
    import repro.sqlengine.planner.physical as physical

    saved = (physical.BATCH_SIZE, parallel.MORSEL_BATCHES)
    physical.BATCH_SIZE = 16
    parallel.MORSEL_BATCHES = 2
    yield
    physical.BATCH_SIZE, parallel.MORSEL_BATCHES = saved


def _matrix(populate, small_morsels) -> tuple:
    """(row baseline, {(fused, array, workers): batch db}) over one schema."""
    baseline = Database(execution_mode="row")
    populate(baseline)
    combos = {}
    for fused in (True, False):
        for array in (True, False):
            for workers in (1, 4):
                db = Database(
                    fused=fused, array_store=array, parallel_workers=workers
                )
                populate(db)
                combos[(fused, array, workers)] = db
    return baseline, combos


@pytest.fixture(scope="module")
def rich_matrix(small_morsels):
    return _matrix(_populate_rich_schema, small_morsels)


@pytest.fixture(scope="module")
def string_matrix(small_morsels):
    return _matrix(_populate_string_schema, small_morsels)


class TestModeMatrixParity:
    """Every knob combination must be byte-identical to row mode.

    {fused on/off} × {array store on/off} × {workers 1/4}, across the
    rich corpus, the string-heavy (dictionary-encoded) corpus, and the
    error corpus — results, columns, and exceptions all identical.
    """

    @staticmethod
    def _assert_all(matrix, sql):
        baseline, combos = matrix
        expected = baseline.execute(sql)
        for combo, db in combos.items():
            got = db.execute(sql)
            assert got.columns == expected.columns, (sql, combo)
            assert got.rows == expected.rows, (sql, combo)

    @pytest.mark.parametrize("sql", RICH_CORPUS)
    def test_rich_corpus(self, rich_matrix, sql):
        self._assert_all(rich_matrix, sql)

    @pytest.mark.parametrize("sql", STRING_CORPUS)
    def test_string_corpus(self, string_matrix, sql):
        self._assert_all(string_matrix, sql)

    @pytest.mark.parametrize("sql", TestErrorParity.ERROR_QUERIES)
    def test_error_parity(self, rich_matrix, sql):
        baseline, combos = rich_matrix
        with pytest.raises(SqlError) as expected:
            baseline.execute(sql)
        for combo, db in combos.items():
            with pytest.raises(SqlError) as got:
                db.execute(sql)
            assert type(got.value) is type(expected.value), (sql, combo)
            assert str(got.value) == str(expected.value), (sql, combo)

    def test_parallel_plans_actually_split_morsels(self, rich_matrix):
        # the workers=4 fixture must really dispatch multiple morsels,
        # otherwise the matrix silently degrades to serial coverage
        __, combos = rich_matrix
        db = combos[(True, False, 4)]
        before = db.metrics().get("engine.morsels_dispatched", {}).get(
            "value", 0
        )
        db.execute("SELECT count(*), sum(val) FROM t WHERE id >= 0")
        after = db.metrics()["engine.morsels_dispatched"]["value"]
        assert after > before

    def test_error_row_identity_across_morsel_boundaries(self, small_morsels):
        # the failing row sits in a late morsel; every combo must
        # surface the division error even though earlier morsels
        # complete and later ones are cancelled
        def populate(db):
            db.execute("CREATE TABLE m (id INT, d INT)")
            db.insert_rows(
                "m", [(i, 1) for i in range(150)] + [(150, 0), (151, 1)]
            )

        baseline, combos = _matrix(populate, small_morsels)
        sql = "SELECT 10 / d FROM m"
        with pytest.raises(SqlError) as expected:
            baseline.execute(sql)
        for combo, db in combos.items():
            with pytest.raises(SqlError) as got:
                db.execute(sql)
            assert str(got.value) == str(expected.value), combo


class TestModeSwitching:
    def test_set_execution_mode_switches_engine(self):
        db = Database()
        db.execute("CREATE TABLE x (id INT)")
        db.execute("INSERT INTO x VALUES (1), (2)")
        assert db.execution_mode == "batch"
        batch_rows = db.execute("SELECT id FROM x ORDER BY id").rows
        db.set_execution_mode("row")
        assert db.execution_mode == "row"
        assert db.execute("SELECT id FROM x ORDER BY id").rows == batch_rows

    def test_switch_drops_cached_plans(self):
        db = Database()
        db.execute("CREATE TABLE x (id INT)")
        db.execute("SELECT id FROM x")
        assert len(db.planner.cache) == 1
        db.set_execution_mode("row")
        assert len(db.planner.cache) == 0

    def test_unknown_mode_rejected(self):
        from repro.errors import SqlExecutionError

        with pytest.raises(SqlExecutionError, match="unknown execution mode"):
            Database(execution_mode="turbo")

    def test_explain_annotates_mode(self):
        db = Database()
        db.execute("CREATE TABLE x (id INT)")
        assert "[batch]" in db.explain("SELECT id FROM x")
        db.set_execution_mode("row")
        assert "[row]" in db.explain("SELECT id FROM x")
