"""Edge-case semantics locked in before the planner refactor.

These tests pin down executor behaviours that are easy to lose in a
plan/execute rewrite: LEFT JOIN with residual WHERE predicates, ORDER BY
by position and by alias (including alias shadowing a column name),
GROUP BY with non-aggregated expressions (representative-row leniency),
and DISTINCT combined with LIMIT.  They must pass against both the
pre-planner executor and the planner-based one.
"""

import pytest

from repro.sqlengine.database import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE parties (id INT PRIMARY KEY, kind TEXT)")
    database.execute(
        "CREATE TABLE individuals (id INT PRIMARY KEY, given_nm TEXT, "
        "family_nm TEXT, salary REAL)"
    )
    database.execute(
        "CREATE TABLE orders_td (id INT PRIMARY KEY, party_id INT, "
        "amount REAL, status TEXT)"
    )
    database.execute(
        "INSERT INTO parties VALUES (1, 'I'), (2, 'I'), (3, 'O'), (4, 'I')"
    )
    database.execute(
        "INSERT INTO individuals VALUES "
        "(1, 'Sara', 'Guttinger', 120000.0), "
        "(2, 'Hans', 'Meier', 80000.0), "
        "(4, 'Anna', 'Meier', 95000.0)"
    )
    database.execute(
        "INSERT INTO orders_td VALUES "
        "(10, 1, 100.0, 'EXECUTED'), (11, 1, 50.0, 'PENDING'), "
        "(12, 2, 75.0, 'EXECUTED'), (13, 3, 20.0, 'EXECUTED'), "
        "(14, 2, NULL, 'CANCELLED')"
    )
    return database


class TestLeftJoinResiduals:
    def test_anti_join_via_is_null(self, db):
        """WHERE on the left-joined table runs after the join (anti join)."""
        rs = db.execute(
            "SELECT p.id FROM parties p "
            "LEFT JOIN individuals i ON p.id = i.id "
            "WHERE i.given_nm IS NULL"
        )
        assert rs.rows == [(3,)]

    def test_residual_on_left_table_filters_padded_rows(self, db):
        rs = db.execute(
            "SELECT p.id, i.given_nm FROM parties p "
            "LEFT JOIN individuals i ON p.id = i.id "
            "WHERE i.given_nm IS NOT NULL"
        )
        assert dict(rs.rows) == {1: "Sara", 2: "Hans", 4: "Anna"}

    def test_compound_on_condition_pads_non_matches(self, db):
        """Extra ON predicates restrict matches but keep every left row."""
        rs = db.execute(
            "SELECT p.id, i.given_nm FROM parties p "
            "LEFT JOIN individuals i "
            "ON p.id = i.id AND i.family_nm = 'Meier'"
        )
        assert dict(rs.rows) == {1: None, 2: "Hans", 3: None, 4: "Anna"}

    def test_inner_filter_applies_before_left_join(self, db):
        """A pushable predicate on the inner side composes with residuals."""
        rs = db.execute(
            "SELECT p.id, i.family_nm FROM parties p "
            "LEFT JOIN individuals i ON p.id = i.id "
            "WHERE p.kind = 'I' AND i.family_nm = 'Meier'"
        )
        assert sorted(rs.rows) == [(2, "Meier"), (4, "Meier")]

    def test_order_by_left_join_column_nulls_first(self, db):
        rs = db.execute(
            "SELECT p.id FROM parties p "
            "LEFT JOIN individuals i ON p.id = i.id "
            "ORDER BY i.given_nm, p.id"
        )
        assert rs.column("p.id") == [3, 4, 2, 1]


class TestOrderByPositionAndAlias:
    def test_position_and_alias_combined(self, db):
        rs = db.execute(
            "SELECT family_nm AS fam, salary AS pay FROM individuals "
            "ORDER BY fam, 2 DESC"
        )
        assert rs.rows == [
            ("Guttinger", 120000.0),
            ("Meier", 95000.0),
            ("Meier", 80000.0),
        ]

    def test_alias_shadowing_column_sorts_by_output(self, db):
        """An alias equal to a column name resolves to the output column."""
        rs = db.execute(
            "SELECT salary AS family_nm FROM individuals ORDER BY family_nm"
        )
        assert rs.column("family_nm") == [80000.0, 95000.0, 120000.0]

    def test_position_refers_to_projected_expression(self, db):
        rs = db.execute(
            "SELECT id, salary / 1000 FROM individuals ORDER BY 2 DESC"
        )
        assert rs.column("id") == [1, 4, 2]

    def test_order_by_non_projected_column(self, db):
        rs = db.execute("SELECT given_nm FROM individuals ORDER BY salary")
        assert rs.column("given_nm") == ["Hans", "Anna", "Sara"]


class TestGroupByNonAggregated:
    def test_non_grouped_column_uses_first_row_of_group(self, db):
        """Documented leniency: first row of each group supplies the value."""
        rs = db.execute(
            "SELECT status, amount FROM orders_td GROUP BY status"
        )
        assert dict(rs.rows) == {
            "EXECUTED": 100.0,
            "PENDING": 50.0,
            "CANCELLED": None,
        }

    def test_expression_over_group_key(self, db):
        rs = db.execute(
            "SELECT lower(status), count(*) FROM orders_td GROUP BY status"
        )
        assert dict(rs.rows) == {"executed": 3, "pending": 1, "cancelled": 1}

    def test_group_rows_in_first_seen_order(self, db):
        rs = db.execute("SELECT status FROM orders_td GROUP BY status")
        assert rs.column("status") == ["EXECUTED", "PENDING", "CANCELLED"]

    def test_having_on_aggregate_not_in_select(self, db):
        rs = db.execute(
            "SELECT status FROM orders_td GROUP BY status "
            "HAVING sum(amount) > 60"
        )
        assert rs.column("status") == ["EXECUTED"]


class TestDistinctWithLimit:
    def test_distinct_limit_after_dedup(self, db):
        """LIMIT applies to the deduplicated rows, not the raw ones."""
        rs = db.execute(
            "SELECT DISTINCT status FROM orders_td ORDER BY status LIMIT 2"
        )
        assert rs.column("status") == ["CANCELLED", "EXECUTED"]

    def test_distinct_keeps_first_occurrence_order(self, db):
        rs = db.execute("SELECT DISTINCT family_nm FROM individuals LIMIT 1")
        assert rs.rows == [("Guttinger",)]

    def test_distinct_on_expression_with_limit(self, db):
        rs = db.execute(
            "SELECT DISTINCT amount > 60 FROM orders_td "
            "WHERE amount IS NOT NULL LIMIT 5"
        )
        assert sorted(rs.rows, key=str) == [(False,), (True,)]

    def test_distinct_limit_zero(self, db):
        rs = db.execute("SELECT DISTINCT kind FROM parties LIMIT 0")
        assert rs.rows == []
