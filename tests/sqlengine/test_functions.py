"""Direct tests for the aggregate accumulators."""

import pytest

from repro.errors import SqlExecutionError, SqlTypeError
from repro.sqlengine.functions import (
    AvgAccumulator,
    CountAccumulator,
    MaxAccumulator,
    MinAccumulator,
    SumAccumulator,
    make_accumulator,
)


class TestCount:
    def test_counts_non_null(self):
        acc = CountAccumulator()
        for value in (1, None, 2, None):
            acc.add(value)
        assert acc.result() == 2

    def test_star_counts_everything(self):
        acc = CountAccumulator(count_nulls=True)
        for value in (1, None, None):
            acc.add(value)
        assert acc.result() == 3

    def test_distinct(self):
        acc = CountAccumulator(distinct=True)
        for value in (1, 1, 2, 2, 2):
            acc.add(value)
        assert acc.result() == 2


class TestSum:
    def test_sum(self):
        acc = SumAccumulator()
        for value in (1, 2.5, None):
            acc.add(value)
        assert acc.result() == 3.5

    def test_empty_is_null(self):
        assert SumAccumulator().result() is None

    def test_distinct(self):
        acc = SumAccumulator(distinct=True)
        for value in (5, 5, 3):
            acc.add(value)
        assert acc.result() == 8

    def test_non_number_raises(self):
        with pytest.raises(SqlTypeError):
            SumAccumulator().add("x")

    def test_bool_raises(self):
        with pytest.raises(SqlTypeError):
            SumAccumulator().add(True)


class TestAvg:
    def test_avg(self):
        acc = AvgAccumulator()
        for value in (2, 4, None):
            acc.add(value)
        assert acc.result() == 3.0

    def test_empty_is_null(self):
        assert AvgAccumulator().result() is None

    def test_distinct(self):
        acc = AvgAccumulator(distinct=True)
        for value in (2, 2, 4):
            acc.add(value)
        assert acc.result() == 3.0

    def test_non_number_raises(self):
        with pytest.raises(SqlTypeError):
            AvgAccumulator().add("x")


class TestMinMax:
    def test_min_max(self):
        low, high = MinAccumulator(), MaxAccumulator()
        for value in (3, None, 1, 2):
            low.add(value)
            high.add(value)
        assert low.result() == 1
        assert high.result() == 3

    def test_strings_supported(self):
        acc = MinAccumulator()
        for value in ("pear", "apple"):
            acc.add(value)
        assert acc.result() == "apple"

    def test_empty_is_null(self):
        assert MinAccumulator().result() is None
        assert MaxAccumulator().result() is None


class TestFactory:
    @pytest.mark.parametrize("name", ["count", "sum", "avg", "min", "max"])
    def test_known_aggregates(self, name):
        acc = make_accumulator(name, star=False, distinct=False)
        acc.add(1)
        assert acc.result() is not None

    def test_count_star(self):
        acc = make_accumulator("count", star=True, distinct=False)
        acc.add(None)
        assert acc.result() == 1

    def test_unknown_raises(self):
        with pytest.raises(SqlExecutionError):
            make_accumulator("median", star=False, distinct=False)
