"""Vectorized SET evaluation: row/batch parity and the safety analyzer.

Batch mode evaluates SET lists assignment-major (column-at-a-time);
row mode evaluates row-major.  The two orders surface *different*
first errors when two assignments can both raise, so the batch path is
gated on :func:`repro.sqlengine.dml._never_raises` proving that at
most one assignment is fallible.  These tests lock the parity — byte-
identical results AND identical error behaviour — and pin the
analyzer's verdicts on representative expressions.
"""

import pytest

from repro.errors import SqlExecutionError
from repro.sqlengine.ast_nodes import Update
from repro.sqlengine.database import Database
from repro.sqlengine.dml import _never_raises
from repro.sqlengine.parser import parse_sql

SEED = [
    "CREATE TABLE t (id INT PRIMARY KEY, n INT, x REAL, s TEXT, "
    "d DATE, b BOOLEAN)",
    "INSERT INTO t VALUES "
    "(1, 5, 1.5, 'alpha', DATE '2024-01-10', TRUE), "
    "(2, NULL, 2.5, 'beta', DATE '2024-06-01', FALSE), "
    "(3, 7, NULL, NULL, NULL, NULL), "
    "(4, 0, 4.5, 'delta gamma', DATE '2023-12-31', TRUE)",
]

PARITY_UPDATES = [
    "UPDATE t SET n = n + 1",
    "UPDATE t SET x = x * 2.0, n = n - 1 WHERE id < 4",
    "UPDATE t SET s = lower(s) || '!'",
    "UPDATE t SET s = upper(coalesce(s, 'none')), b = n > 3",
    "UPDATE t SET n = length(coalesce(s, '')), x = abs(x)",
    "UPDATE t SET n = year(d), x = x / 4 WHERE d IS NOT NULL",
    "UPDATE t SET b = s LIKE 'a%' OR b",
    "UPDATE t SET n = -n, b = NOT b WHERE id = 1",
    "UPDATE t SET x = n / n WHERE id = 1",  # fallible, but only one
]


def make_db(mode: str) -> Database:
    db = Database(execution_mode=mode)
    for sql in SEED:
        db.execute(sql)
    return db


def table_state(db: Database):
    t = db.table("t")
    columns = [t.column_data(i) for i in range(len(t.columns))]
    return list(t.rows), [list(c) for c in columns]


class TestParity:
    @pytest.mark.parametrize("sql", PARITY_UPDATES)
    def test_row_and_batch_identical(self, sql):
        row_db, batch_db = make_db("row"), make_db("batch")
        row_result = row_db.execute(sql)
        batch_result = batch_db.execute(sql)
        assert row_result.rowcount == batch_result.rowcount
        assert table_state(row_db) == table_state(batch_db)

    def test_error_parity_single_fallible_assignment(self):
        """Division by a zero column value fails identically in both modes
        and leaves the table untouched (statement atomicity)."""
        outcomes = {}
        for mode in ("row", "batch"):
            db = make_db(mode)
            before = table_state(db)
            with pytest.raises(SqlExecutionError) as excinfo:
                db.execute("UPDATE t SET x = 1.0 / n")
            assert table_state(db) == before
            outcomes[mode] = str(excinfo.value)
        assert outcomes["row"] == outcomes["batch"]

    def test_two_fallible_assignments_fall_back_to_row_order(self):
        """With two fallible SETs, batch mode must surface the *row-major*
        first error — the one row mode reports."""
        outcomes = {}
        for mode in ("row", "batch"):
            db = make_db(mode)
            # row 1: x/n fine (n=5), n/x fine; row 2: n NULL -> x/n is
            # NULL (no error), n/x fine; row 4: n=0 -> second SET n/x
            # fine but first SET x/n divides by zero.  Row-major hits
            # the row-4 first-assignment error; assignment-major would
            # have hit it in a different evaluation sequence.
            with pytest.raises(SqlExecutionError) as excinfo:
                db.execute("UPDATE t SET x = x / n, n = n / x")
            outcomes[mode] = str(excinfo.value)
        assert outcomes["row"] == outcomes["batch"]


class TestNeverRaisesAnalyzer:
    @pytest.mark.parametrize(
        "set_expr,expected",
        [
            ("n + 1", True),
            ("n * n - 2", True),
            ("x / 2.0", True),
            ("x / 0", False),  # literal zero divisor
            ("x / n", False),  # column divisor may be zero
            ("n + x", True),
            ("n + s", False),  # num + str raises
            ("s || s", True),  # concat tolerates NULL
            ("s || n", True),  # concat stringifies
            ("lower(s)", True),
            ("lower(n)", False),  # wrong arg class
            ("length(s)", True),
            ("abs(x)", True),
            ("abs(s)", False),
            ("year(d)", True),
            ("year(s)", False),  # would parse the string
            ("coalesce(s, 'x')", True),
            ("coalesce()", False),
            ("n = n", True),
            ("d = s", False),  # date-vs-string comparison parses
            ("d < d", True),
            ("s LIKE 'a%'", True),
            ("s LIKE s", False),  # non-literal pattern
            ("n LIKE 'a%'", False),  # non-string operand
            ("-n", True),
            ("-s", False),
            ("NOT b", True),
            ("b AND b OR n > 3", True),
            ("n IS NULL", True),
        ],
    )
    def test_verdicts(self, set_expr, expected):
        db = make_db("row")
        statement = parse_sql(f"UPDATE t SET n = {set_expr}")
        assert isinstance(statement, Update)
        value = statement.assignments[0].value
        assert _never_raises(value, db.table("t")) is expected
