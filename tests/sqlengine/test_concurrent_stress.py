"""Threaded stress: N reader threads never observe torn writes.

The concurrent storage contract of PR 9: a query pins a
``(frozen segments, delta snapshot)`` set at execution start, so a
reader sees *some* consistent past state — never a half-applied
UPDATE, never a row present in one column scan and absent from
another.  Every mutation here preserves two per-state invariants:

* every row has ``unit = 1`` and ``a + b = 100``;
* therefore any consistent snapshot satisfies
  ``COUNT(*) = SUM(unit)`` and ``SUM(a) + SUM(b) = 100 * COUNT(*)``.

Readers hammer those aggregates (serial and morsel-parallel) while one
writer thread interleaves single-statement UPDATE/INSERT/DELETE; any
torn read breaks an equality.  A final check proves the flat storage
and the segment view converged to the same bytes.
"""

import threading

from repro.sqlengine.config import EngineConfig
from repro.sqlengine.database import Database

READERS = 4
WRITER_OPS = 150
START_ROWS = 120


def _build(parallel_workers: int = 1) -> Database:
    db = Database(
        config=EngineConfig(
            segment_rows=32, parallel_workers=parallel_workers
        )
    )
    db.execute(
        "CREATE TABLE funds (id INT PRIMARY KEY, unit INT, a INT, b INT)"
    )
    db.execute(
        "INSERT INTO funds VALUES "
        + ", ".join(f"({i}, 1, {30 + i % 40}, {70 - i % 40})"
                    for i in range(START_ROWS))
    )
    return db


def _run_stress(db: Database) -> list:
    """Readers assert snapshot invariants while one writer churns."""
    failures: list = []
    done = threading.Event()

    def reader() -> None:
        while not done.is_set():
            try:
                row = db.execute(
                    "SELECT COUNT(*), SUM(unit), SUM(a), SUM(b) FROM funds"
                ).rows[0]
                count, units, a_sum, b_sum = row
                if count == 0:
                    continue
                if units != count:
                    failures.append(f"torn row count: {row}")
                if a_sum + b_sum != 100 * count:
                    failures.append(f"torn update: {row}")
            except Exception as exc:  # noqa: BLE001 - collect, don't die
                failures.append(f"reader raised {type(exc).__name__}: {exc}")

    def writer() -> None:
        try:
            for op in range(WRITER_OPS):
                kind = op % 4
                if kind in (0, 1):
                    # atomic single-statement transfer keeps a + b = 100
                    db.execute(
                        f"UPDATE funds SET a = a + 1, b = b - 1 "
                        f"WHERE id = {op % START_ROWS}"
                    )
                elif kind == 2:
                    db.execute(
                        f"INSERT INTO funds VALUES "
                        f"({1000 + op}, 1, 45, 55)"
                    )
                else:
                    db.execute(f"DELETE FROM funds WHERE id = {1000 + op - 1}")
        except Exception as exc:  # noqa: BLE001
            failures.append(f"writer raised {type(exc).__name__}: {exc}")
        finally:
            done.set()

    threads = [threading.Thread(target=reader) for __ in range(READERS)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    done.set()
    return failures


class TestConcurrentStress:
    def test_readers_see_only_consistent_snapshots(self):
        db = _build(parallel_workers=1)
        failures = _run_stress(db)
        assert not failures, failures[:5]
        # after the dust settles: flat rows and segment view agree
        table = db.table("funds")
        assert list(table.pin().iter_rows()) == table.rows

    def test_readers_with_morsel_parallel_scans(self):
        # morsel workers must inherit the coordinator's pinned snapshot;
        # a worker reading live state would tear the aggregate apart
        db = _build(parallel_workers=2)
        failures = _run_stress(db)
        assert not failures, failures[:5]

    def test_multi_statement_pinned_read_is_stable(self):
        from repro.sqlengine.segments import pinned

        db = _build()
        pins = db.catalog.pin_tables(["funds"])
        failures: list = []
        done = threading.Event()

        def churn() -> None:
            for op in range(60):
                db.execute(f"INSERT INTO funds VALUES ({2000 + op}, 1, 1, 99)")
                db.execute(f"DELETE FROM funds WHERE id = {op}")
            done.set()

        def pinned_reader() -> None:
            while not done.is_set():
                try:
                    with pinned(pins):
                        first = db.execute(
                            "SELECT COUNT(*) FROM funds"
                        ).rows[0][0]
                        second = db.execute(
                            "SELECT SUM(unit) FROM funds"
                        ).rows[0][0]
                    if (first, second) != (START_ROWS, START_ROWS):
                        failures.append((first, second))
                except Exception as exc:  # noqa: BLE001
                    failures.append(repr(exc))

        threads = [threading.Thread(target=pinned_reader) for __ in range(2)]
        threads.append(threading.Thread(target=churn))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures[:5]
