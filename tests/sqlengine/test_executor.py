"""Tests for planning + execution: joins, aggregation, ordering, limits."""

import datetime

import pytest

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.database import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE parties (id INT PRIMARY KEY, kind TEXT)"
    )
    database.execute(
        "CREATE TABLE individuals (id INT PRIMARY KEY, given_nm TEXT, "
        "family_nm TEXT, salary REAL, birth_dt DATE)"
    )
    database.execute(
        "CREATE TABLE orders_td (id INT PRIMARY KEY, party_id INT, "
        "amount REAL, status TEXT)"
    )
    database.execute(
        "INSERT INTO parties VALUES (1, 'I'), (2, 'I'), (3, 'O'), (4, 'I')"
    )
    database.execute(
        "INSERT INTO individuals VALUES "
        "(1, 'Sara', 'Guttinger', 120000.0, DATE '1981-04-23'), "
        "(2, 'Hans', 'Meier', 80000.0, DATE '1975-01-02'), "
        "(4, 'Anna', 'Meier', 95000.0, DATE '1990-07-14')"
    )
    database.execute(
        "INSERT INTO orders_td VALUES "
        "(10, 1, 100.0, 'EXECUTED'), (11, 1, 50.0, 'PENDING'), "
        "(12, 2, 75.0, 'EXECUTED'), (13, 3, 20.0, 'EXECUTED'), "
        "(14, 2, NULL, 'CANCELLED')"
    )
    return database


class TestFilters:
    def test_equality(self, db):
        rs = db.execute("SELECT id FROM individuals WHERE given_nm = 'Sara'")
        assert rs.rows == [(1,)]

    def test_comparison_on_date(self, db):
        rs = db.execute(
            "SELECT id FROM individuals WHERE birth_dt >= DATE '1980-01-01'"
        )
        assert sorted(rs.column("id")) == [1, 4]

    def test_like_case_insensitive(self, db):
        rs = db.execute("SELECT id FROM individuals WHERE family_nm LIKE '%gut%'")
        assert rs.rows == [(1,)]

    def test_null_comparison_filters_row_out(self, db):
        rs = db.execute("SELECT id FROM orders_td WHERE amount > 0")
        assert 14 not in rs.column("id")

    def test_is_null(self, db):
        rs = db.execute("SELECT id FROM orders_td WHERE amount IS NULL")
        assert rs.rows == [(14,)]

    def test_in_list(self, db):
        rs = db.execute("SELECT id FROM parties WHERE id IN (1, 3)")
        assert sorted(rs.column("id")) == [1, 3]

    def test_between(self, db):
        rs = db.execute("SELECT id FROM orders_td WHERE amount BETWEEN 50 AND 100")
        assert sorted(rs.column("id")) == [10, 11, 12]

    def test_not(self, db):
        rs = db.execute("SELECT id FROM parties WHERE NOT kind = 'I'")
        assert rs.rows == [(3,)]

    def test_or(self, db):
        rs = db.execute(
            "SELECT id FROM individuals WHERE given_nm = 'Sara' OR "
            "given_nm = 'Hans'"
        )
        assert sorted(rs.column("id")) == [1, 2]


class TestJoins:
    def test_comma_join_with_where(self, db):
        rs = db.execute(
            "SELECT individuals.given_nm FROM parties, individuals "
            "WHERE parties.id = individuals.id AND parties.kind = 'I'"
        )
        assert sorted(rs.column("individuals.given_nm")) == [
            "Anna", "Hans", "Sara"
        ]

    def test_explicit_join(self, db):
        rs = db.execute(
            "SELECT i.given_nm FROM individuals i "
            "JOIN orders_td o ON o.party_id = i.id WHERE o.status = 'EXECUTED'"
        )
        assert sorted(rs.column("i.given_nm")) == ["Hans", "Sara"]

    def test_three_way_join(self, db):
        rs = db.execute(
            "SELECT count(*) FROM parties, individuals, orders_td "
            "WHERE parties.id = individuals.id "
            "AND orders_td.party_id = individuals.id"
        )
        assert rs.rows == [(4,)]

    def test_cross_join_when_no_predicate(self, db):
        rs = db.execute("SELECT count(*) FROM parties, individuals")
        assert rs.rows == [(12,)]

    def test_left_join_pads_nulls(self, db):
        rs = db.execute(
            "SELECT parties.id, individuals.given_nm FROM parties "
            "LEFT JOIN individuals ON parties.id = individuals.id"
        )
        as_dict = dict(rs.rows)
        assert as_dict[3] is None
        assert as_dict[1] == "Sara"

    def test_join_with_null_keys_never_matches(self, db):
        db.execute("CREATE TABLE n (id INT, ref INT)")
        db.execute("INSERT INTO n VALUES (1, NULL)")
        rs = db.execute(
            "SELECT count(*) FROM n, parties WHERE n.ref = parties.id"
        )
        assert rs.rows == [(0,)]

    def test_duplicate_binding_raises(self, db):
        with pytest.raises(SqlCatalogError):
            db.execute("SELECT * FROM parties, parties")

    def test_self_join_with_aliases(self, db):
        rs = db.execute(
            "SELECT count(*) FROM parties a, parties b WHERE a.id = b.id"
        )
        assert rs.rows == [(4,)]

    def test_star_columns_qualified_for_multi_table(self, db):
        rs = db.execute(
            "SELECT * FROM parties, individuals "
            "WHERE parties.id = individuals.id"
        )
        assert "parties.id" in rs.columns
        assert "individuals.family_nm" in rs.columns


class TestAggregation:
    def test_count_star(self, db):
        assert db.execute("SELECT count(*) FROM orders_td").rows == [(5,)]

    def test_count_column_skips_nulls(self, db):
        assert db.execute("SELECT count(amount) FROM orders_td").rows == [(4,)]

    def test_sum_avg_min_max(self, db):
        rs = db.execute(
            "SELECT sum(amount), avg(amount), min(amount), max(amount) "
            "FROM orders_td"
        )
        total, average, low, high = rs.rows[0]
        assert total == 245.0
        assert average == pytest.approx(61.25)
        assert (low, high) == (20.0, 100.0)

    def test_sum_of_empty_is_null(self, db):
        rs = db.execute("SELECT sum(amount) FROM orders_td WHERE id > 999")
        assert rs.rows == [(None,)]

    def test_count_of_empty_is_zero(self, db):
        rs = db.execute("SELECT count(*) FROM orders_td WHERE id > 999")
        assert rs.rows == [(0,)]

    def test_group_by(self, db):
        rs = db.execute(
            "SELECT status, count(*) FROM orders_td GROUP BY status"
        )
        assert dict(rs.rows) == {"EXECUTED": 3, "PENDING": 1, "CANCELLED": 1}

    def test_group_by_with_having(self, db):
        rs = db.execute(
            "SELECT status FROM orders_td GROUP BY status HAVING count(*) > 1"
        )
        assert rs.rows == [("EXECUTED",)]

    def test_order_by_aggregate_desc(self, db):
        rs = db.execute(
            "SELECT count(*), status FROM orders_td GROUP BY status "
            "ORDER BY count(*) DESC"
        )
        assert rs.rows[0] == (3, "EXECUTED")

    def test_count_distinct(self, db):
        rs = db.execute("SELECT count(DISTINCT status) FROM orders_td")
        assert rs.rows == [(3,)]

    def test_aggregate_with_join_group(self, db):
        rs = db.execute(
            "SELECT sum(orders_td.amount), individuals.family_nm "
            "FROM individuals, orders_td "
            "WHERE orders_td.party_id = individuals.id "
            "GROUP BY individuals.family_nm ORDER BY 1 DESC"
        )
        assert rs.rows[0][1] == "Guttinger"
        assert rs.rows[0][0] == 150.0


class TestOrderingAndLimit:
    def test_order_by_column(self, db):
        rs = db.execute("SELECT given_nm FROM individuals ORDER BY given_nm")
        assert rs.column("given_nm") == ["Anna", "Hans", "Sara"]

    def test_order_by_desc(self, db):
        rs = db.execute("SELECT id FROM orders_td ORDER BY id DESC LIMIT 2")
        assert rs.column("id") == [14, 13]

    def test_order_by_alias(self, db):
        rs = db.execute(
            "SELECT salary AS pay FROM individuals ORDER BY pay DESC"
        )
        assert rs.column("pay")[0] == 120000.0

    def test_order_by_position(self, db):
        rs = db.execute("SELECT id, salary FROM individuals ORDER BY 2")
        assert rs.column("id") == [2, 4, 1]

    def test_order_by_position_out_of_range(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute("SELECT id FROM individuals ORDER BY 9")

    def test_nulls_sort_first(self, db):
        rs = db.execute("SELECT amount FROM orders_td ORDER BY amount")
        assert rs.rows[0] == (None,)

    def test_multi_key_sort_stable(self, db):
        rs = db.execute(
            "SELECT family_nm, given_nm FROM individuals "
            "ORDER BY family_nm, given_nm DESC"
        )
        assert rs.rows == [
            ("Guttinger", "Sara"), ("Meier", "Hans"), ("Meier", "Anna")
        ]

    def test_limit_zero(self, db):
        assert db.execute("SELECT * FROM parties LIMIT 0").rows == []

    def test_distinct(self, db):
        rs = db.execute("SELECT DISTINCT family_nm FROM individuals")
        assert sorted(rs.column("family_nm")) == ["Guttinger", "Meier"]


class TestExpressionsInSelect:
    def test_arithmetic(self, db):
        rs = db.execute("SELECT salary / 1000 AS k FROM individuals WHERE id = 1")
        assert rs.rows == [(120.0,)]

    def test_scalar_functions(self, db):
        rs = db.execute(
            "SELECT lower(given_nm), year(birth_dt) FROM individuals "
            "WHERE id = 1"
        )
        assert rs.rows == [("sara", 1981)]

    def test_division_by_zero_raises(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute("SELECT 1 / 0 FROM parties")

    def test_unknown_column_raises(self, db):
        with pytest.raises(SqlCatalogError):
            db.execute("SELECT nonexistent FROM parties")

    def test_ambiguous_column_raises(self, db):
        with pytest.raises(SqlCatalogError):
            db.execute("SELECT id FROM parties, individuals")

    def test_unknown_function_raises(self, db):
        with pytest.raises(SqlExecutionError):
            db.execute("SELECT frobnicate(id) FROM parties")
