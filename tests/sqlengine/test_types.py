"""Tests for the SQL value model and three-valued comparisons."""

import datetime

import pytest

from repro.errors import SqlTypeError
from repro.sqlengine.types import (
    SqlType,
    coerce_value,
    compare_values,
    format_value,
    infer_type,
    parse_date,
    values_equal,
)


class TestSqlType:
    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("int", SqlType.INTEGER),
            ("BIGINT", SqlType.INTEGER),
            ("varchar", SqlType.TEXT),
            ("double", SqlType.REAL),
            ("decimal", SqlType.REAL),
            ("bool", SqlType.BOOLEAN),
            ("date", SqlType.DATE),
        ],
    )
    def test_aliases(self, alias, expected):
        assert SqlType.from_name(alias) is expected

    def test_unknown_raises(self):
        with pytest.raises(SqlTypeError):
            SqlType.from_name("blob")


class TestCoerce:
    def test_null_valid_everywhere(self):
        for sql_type in SqlType:
            assert coerce_value(None, sql_type) is None

    def test_int_from_whole_float(self):
        assert coerce_value(3.0, SqlType.INTEGER) == 3

    def test_int_from_fractional_float_raises(self):
        with pytest.raises(SqlTypeError):
            coerce_value(3.5, SqlType.INTEGER)

    def test_bool_not_an_int(self):
        with pytest.raises(SqlTypeError):
            coerce_value(True, SqlType.INTEGER)

    def test_real_from_int(self):
        assert coerce_value(3, SqlType.REAL) == 3.0
        assert isinstance(coerce_value(3, SqlType.REAL), float)

    def test_text(self):
        assert coerce_value("x", SqlType.TEXT) == "x"
        with pytest.raises(SqlTypeError):
            coerce_value(1, SqlType.TEXT)

    def test_date_from_string(self):
        assert coerce_value("2010-01-02", SqlType.DATE) == datetime.date(2010, 1, 2)

    def test_date_from_date(self):
        today = datetime.date(2011, 5, 6)
        assert coerce_value(today, SqlType.DATE) is today

    def test_datetime_rejected_for_date(self):
        with pytest.raises(SqlTypeError):
            coerce_value(datetime.datetime(2010, 1, 1, 12), SqlType.DATE)

    def test_boolean(self):
        assert coerce_value(True, SqlType.BOOLEAN) is True
        with pytest.raises(SqlTypeError):
            coerce_value(1, SqlType.BOOLEAN)


class TestCompare:
    def test_null_propagates(self):
        assert compare_values(None, 1) is None
        assert compare_values(1, None) is None
        assert values_equal(None, None) is None

    def test_numeric_cross_type(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(1, 2.5) == -1

    def test_strings(self):
        assert compare_values("a", "b") == -1

    def test_dates(self):
        assert compare_values(
            datetime.date(2010, 1, 1), datetime.date(2011, 1, 1)
        ) == -1

    def test_date_vs_iso_string(self):
        assert compare_values(datetime.date(2010, 1, 1), "2010-01-01") == 0
        assert compare_values("2012-06-30", datetime.date(2010, 1, 1)) == 1

    def test_mixed_types_raise(self):
        with pytest.raises(SqlTypeError):
            compare_values(1, "x")

    def test_bool_vs_number_raises(self):
        with pytest.raises(SqlTypeError):
            compare_values(True, 1)

    def test_values_equal(self):
        assert values_equal(2, 2.0) is True
        assert values_equal("a", "b") is False


class TestMisc:
    def test_parse_date_invalid(self):
        with pytest.raises(SqlTypeError):
            parse_date("not-a-date")

    def test_infer_type(self):
        assert infer_type(True) is SqlType.BOOLEAN
        assert infer_type(1) is SqlType.INTEGER
        assert infer_type(1.5) is SqlType.REAL
        assert infer_type("x") is SqlType.TEXT
        assert infer_type(datetime.date(2010, 1, 1)) is SqlType.DATE
        with pytest.raises(SqlTypeError):
            infer_type([])

    def test_format_value(self):
        assert format_value(None) == "NULL"
        assert format_value(True) == "TRUE"
        assert format_value(3) == "3"
        assert format_value("O'Brien") == "'O''Brien'"
        assert format_value(datetime.date(2010, 1, 1)) == "'2010-01-01'"
