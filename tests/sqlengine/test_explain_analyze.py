"""EXPLAIN ANALYZE: per-operator actuals in both execution modes.

The instrumented run must (a) report the same actual row counts from
the volcano and the batch engine, (b) leave the optimizer's estimates
untouched relative to plain EXPLAIN, (c) never leak instrumented plans
into the plan cache, and (d) return the same results as an
uninstrumented execution.
"""

import re

import pytest

from repro.sqlengine.database import Database
from repro.sqlengine.parser import parse_select

ACTUAL = re.compile(r" \(actual rows=(\d+)(?:, batches=(\d+))?, "
                    r"self=\d+\.\d{3}ms\)")


def make_db(mode):
    db = Database(execution_mode=mode)
    db.execute("CREATE TABLE dims (id INT PRIMARY KEY, region TEXT)")
    db.execute(
        "CREATE TABLE facts (id INT PRIMARY KEY, dim_id INT, "
        "amount REAL, status TEXT)"
    )
    db.execute(
        "INSERT INTO dims VALUES "
        + ", ".join(f"({i}, 'region {i % 4}')" for i in range(20))
    )
    db.execute(
        "INSERT INTO facts VALUES "
        + ", ".join(
            f"({i}, {i % 20}, {float(i * 7 % 500)}, "
            f"'{'DONE' if i % 3 == 0 else 'OPEN'}')"
            for i in range(3000)
        )
    )
    return db


QUERIES = [
    "SELECT id FROM facts WHERE amount > 250.0",
    "SELECT status, count(*) FROM facts GROUP BY status ORDER BY status",
    "SELECT d.region, sum(f.amount) FROM facts f, dims d "
    "WHERE f.dim_id = d.id AND f.status = 'DONE' "
    "GROUP BY d.region ORDER BY sum(f.amount) DESC LIMIT 3",
    "SELECT d.region, f.amount FROM dims d "
    "LEFT JOIN facts f ON d.id = f.dim_id AND f.amount > 490 "
    "ORDER BY d.region, f.amount LIMIT 10",
]


def actual_rows(rendered):
    """``[(actual rows, batches or None), ...]`` per plan line."""
    out = []
    for line in rendered.splitlines():
        match = ACTUAL.search(line)
        assert match is not None, f"missing actuals on line: {line!r}"
        batches = match.group(2)
        out.append((int(match.group(1)),
                    None if batches is None else int(batches)))
    return out


class TestExplainAnalyze:
    @pytest.mark.parametrize("mode", ["row", "batch"])
    @pytest.mark.parametrize("sql", QUERIES)
    def test_every_operator_reports_actuals(self, mode, sql):
        db = make_db(mode)
        rendered = db.explain(sql, analyze=True)
        rows = actual_rows(rendered)
        assert rows  # one entry per operator line
        if mode == "batch":
            assert all(batches is not None for __, batches in rows)
        else:
            assert all(batches is None for __, batches in rows)

    @pytest.mark.parametrize("sql", QUERIES)
    def test_row_and_batch_modes_agree_on_actual_rows(self, sql):
        row_rendered = make_db("row").explain(sql, analyze=True)
        batch_rendered = make_db("batch").explain(sql, analyze=True)
        row_counts = [rows for rows, __ in actual_rows(row_rendered)]
        batch_counts = [rows for rows, __ in actual_rows(batch_rendered)]
        assert row_counts == batch_counts

    @pytest.mark.parametrize("mode", ["row", "batch"])
    @pytest.mark.parametrize("sql", QUERIES)
    def test_estimates_match_plain_explain(self, mode, sql):
        db = make_db(mode)
        plain = db.explain(sql)
        analyzed = db.explain(sql, analyze=True)
        assert "(actual" not in plain
        assert ACTUAL.sub("", analyzed) == plain

    def test_root_actual_rows_match_result_set(self):
        db = make_db("batch")
        sql = QUERIES[2]
        result = db.execute(sql)
        analyzed = db.explain(sql, analyze=True)
        root_rows = actual_rows(analyzed)[0][0]
        assert root_rows == len(result.rows)

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_instrumented_plans_never_enter_the_cache(self, mode):
        db = make_db(mode)
        sql = QUERIES[0]
        db.explain(sql, analyze=True)
        misses_after_analyze = db.planner.cache.stats.misses
        assert len(db.planner.cache) == 0
        # the next real execution plans from scratch (a cache miss, not
        # a hit on a leaked instrumented plan)
        db.execute(sql)
        assert db.planner.cache.stats.misses == misses_after_analyze + 1
        plan = db.planner.prepare(parse_select(sql))
        assert "Instrumented" not in type(plan._root).__name__

    def test_analyze_execution_leaves_results_unchanged(self):
        db = make_db("batch")
        sql = QUERIES[1]
        before = db.execute(sql)
        db.explain(sql, analyze=True)
        after = db.execute(sql)
        assert after.columns == before.columns
        assert after.rows == before.rows

    def test_union_branches_are_analyzed(self):
        db = make_db("batch")
        sql = (
            "SELECT id FROM facts WHERE amount > 495 "
            "UNION SELECT id FROM dims WHERE id < 3"
        )
        analyzed = db.explain(sql, analyze=True)
        assert analyzed.count("(actual") >= 2
