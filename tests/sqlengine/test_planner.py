"""Tests for the cost-aware planner subsystem.

Covers logical lowering, the optimizer rules (constant folding,
predicate pushdown, projection pruning, statistics-driven join
ordering), the volcano physical operators (via naive-vs-optimized
equivalence), EXPLAIN determinism and the LRU plan cache.
"""

import pytest

from repro.sqlengine.database import Database
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import QueryPlanner, render_plan, lower_select
from repro.sqlengine.planner.cache import PlanCache
from repro.sqlengine.planner.logical import (
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.sqlengine.planner.optimizer import fold_constants
from repro.sqlengine.planner.stats import StatisticsProvider


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE small (id INT PRIMARY KEY, tag TEXT)")
    database.execute(
        "CREATE TABLE big (id INT PRIMARY KEY, small_id INT, amount REAL, "
        "status TEXT)"
    )
    database.execute("INSERT INTO small VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    database.execute(
        "INSERT INTO big VALUES "
        + ", ".join(
            f"({i}, {i % 3 + 1}, {i * 10.0}, "
            f"'{'OPEN' if i % 4 else 'DONE'}')"
            for i in range(1, 41)
        )
    )
    return database


class TestLowering:
    def test_canonical_plan_shape(self, db):
        select = parse_select(
            "SELECT tag FROM small, big WHERE small.id = big.small_id "
            "ORDER BY tag LIMIT 5"
        )
        root = lower_select(db.catalog, select)
        assert isinstance(root, LogicalLimit)
        assert isinstance(root.child, LogicalSort)
        assert isinstance(root.child.child, LogicalProject)
        filter_node = root.child.child.child
        assert isinstance(filter_node, LogicalFilter)
        assert isinstance(filter_node.child, LogicalJoin)
        assert filter_node.child.equi == ()  # canonical = cross join

    def test_scans_in_syntax_order(self, db):
        select = parse_select("SELECT count(*) FROM big, small")
        root = lower_select(db.catalog, select)
        scans = []

        def walk(node):
            if isinstance(node, LogicalScan):
                scans.append(node.binding)
            for child in node.children():
                walk(child)

        walk(root)
        assert scans == ["big", "small"]


class TestOptimizerRules:
    def test_constant_folding(self):
        select = parse_select("SELECT * FROM t WHERE id = 1 + 2")
        folded = fold_constants(select.where)
        assert folded.to_sql() == "(id = 3)"

    def test_always_true_conjunct_dropped(self, db):
        plan = db.explain("SELECT tag FROM small WHERE 1 = 1 AND tag = 'a'")
        assert "1 = 1" not in plan
        assert "filter: (tag = 'a')" in plan

    def test_folding_preserves_division_by_zero(self, db):
        from repro.errors import SqlExecutionError

        with pytest.raises(SqlExecutionError, match="division by zero"):
            db.execute("SELECT tag FROM small WHERE id = 1 / 0")

    def test_predicate_pushdown_reaches_scan(self, db):
        plan = db.explain(
            "SELECT tag FROM small, big "
            "WHERE small.id = big.small_id AND big.status = 'DONE'"
        )
        assert "scan big as big (40 rows) filter: (big.status = 'DONE')" in plan
        assert "residual" not in plan

    def test_projection_pruning_listed_in_plan(self, db):
        plan = db.explain(
            "SELECT tag FROM small, big WHERE small.id = big.small_id"
        )
        # big is narrowed to the join key; small needs both its columns
        # (join key + projected tag) so it keeps its full layout (tag is
        # low-cardinality TEXT, hence dictionary-encoded)
        assert "[cols: small_id]" in plan
        assert "scan small as small (3 rows) [dict: tag] [batch]\n" in plan + "\n"

    def test_no_pruning_with_star(self, db):
        plan = db.explain(
            "SELECT * FROM small, big WHERE small.id = big.small_id"
        )
        assert "[cols:" not in plan

    def test_join_order_starts_from_most_selective(self, db):
        # big shrinks to ~10 rows after the filter; small has 3 rows ->
        # small is still the cheapest start, big is hash-joined into it.
        plan = db.explain(
            "SELECT tag FROM big, small "
            "WHERE small.id = big.small_id AND big.status = 'DONE'"
        )
        assert "hash join big on" in plan

    def test_cardinality_estimates_present(self, db):
        plan = db.explain(
            "SELECT tag FROM small, big WHERE small.id = big.small_id"
        )
        assert "[~" in plan and "rows]" in plan

    def test_residual_predicate_stays_above_join(self, db):
        plan = db.explain(
            "SELECT tag FROM small, big "
            "WHERE small.id = big.small_id AND small.id + big.id > 4"
        )
        assert "residual filter ((small.id + big.id) > 4)" in plan


class TestExplain:
    def test_explain_is_deterministic(self, db):
        sql = (
            "SELECT status, count(*) FROM big, small "
            "WHERE small.id = big.small_id GROUP BY status "
            "ORDER BY count(*) DESC LIMIT 2"
        )
        assert db.explain(sql) == db.explain(sql)

    def test_explain_renders_every_stage(self, db):
        plan = db.explain(
            "SELECT DISTINCT status, count(*) FROM big GROUP BY status "
            "HAVING count(*) > 1 ORDER BY count(*) DESC LIMIT 2"
        )
        for needle in (
            "top-n 2 by count(*) DESC",  # Sort+Limit fused by the optimizer
            "distinct",
            "project status, count(*)",
            "aggregate group by status having (count(*) > 1)",
            "scan big as big (40 rows)",
        ):
            assert needle in plan

    def test_render_plan_matches_database_explain(self, db):
        select = parse_select("SELECT tag FROM small WHERE id = 2")
        planner = db.planner
        rendered = render_plan(
            planner.prepare(select).logical,
            mode=planner.execution_mode,
            catalog=db.catalog,
        )
        assert rendered == db.explain("SELECT tag FROM small WHERE id = 2")


NAIVE_EQUIVALENCE_QUERIES = [
    "SELECT tag FROM small ORDER BY tag",
    "SELECT small.tag, big.amount FROM small, big "
    "WHERE small.id = big.small_id AND big.status = 'DONE' "
    "ORDER BY big.amount",
    "SELECT count(*), status FROM big GROUP BY status ORDER BY count(*)",
    "SELECT s.tag, sum(b.amount) FROM small s, big b "
    "WHERE s.id = b.small_id GROUP BY s.tag ORDER BY 2 DESC",
    "SELECT DISTINCT status FROM big ORDER BY status LIMIT 2",
    "SELECT s.tag, b.amount FROM small s "
    "LEFT JOIN big b ON s.id = b.small_id AND b.amount > 350 "
    "ORDER BY s.tag, b.amount",
    "SELECT count(*) FROM small a, small2 c, big b "
    "WHERE a.id = b.small_id AND c.id = a.id",
    "SELECT tag FROM small WHERE id IN (1, 3) OR tag = 'b' ORDER BY tag",
]


class TestNaiveOptimizedEquivalence:
    @pytest.fixture
    def planners(self, db):
        db.execute("CREATE TABLE small2 (id INT PRIMARY KEY, note TEXT)")
        db.execute("INSERT INTO small2 VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        naive = QueryPlanner(db.catalog, cache_size=0, optimize=False)
        return naive, db.planner

    @pytest.mark.parametrize("sql", NAIVE_EQUIVALENCE_QUERIES)
    def test_same_rows_and_columns(self, planners, sql):
        naive, optimized = planners
        select = parse_select(sql)
        naive_result = naive.execute(select)
        optimized_result = optimized.execute(select)
        assert naive_result.columns == optimized_result.columns
        assert sorted(naive_result.rows, key=repr) == sorted(
            optimized_result.rows, key=repr
        )


class TestPlanCache:
    def test_repeated_statement_hits_cache(self, db):
        sql = "SELECT tag FROM small WHERE id = 1"
        db.execute(sql)
        before = db.planner.cache.stats.hits
        db.execute(sql)
        db.execute(sql)
        assert db.planner.cache.stats.hits == before + 2

    def test_normalized_key_collapses_formatting(self, db):
        db.execute("SELECT tag FROM small WHERE id = 1")
        before = db.planner.cache.stats.hits
        db.execute("select  tag\nfrom small  where id = 1")
        assert db.planner.cache.stats.hits == before + 1

    def test_insert_invalidates_via_fingerprint(self, db):
        sql = "SELECT count(*) FROM small"
        assert db.execute(sql).rows == [(3,)]
        db.execute("INSERT INTO small VALUES (4, 'd')")
        assert db.execute(sql).rows == [(4,)]

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b becomes the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables_caching(self, db):
        database = Database(plan_cache_size=0)
        database.execute("CREATE TABLE t (id INT)")
        database.execute("SELECT * FROM t")
        database.execute("SELECT * FROM t")
        assert database.planner.cache.stats.hits == 0

    def test_cached_plan_sees_fresh_rows_after_replan(self, db):
        sql = "SELECT tag FROM small ORDER BY tag"
        first = db.execute(sql).column("tag")
        db.execute("INSERT INTO small VALUES (9, 'zz')")
        second = db.execute(sql).column("tag")
        assert second == first + ["zz"]


class TestPerTableInvalidation:
    """Writes drop only the cached plans that scan the written table."""

    def test_write_to_other_table_keeps_plan_cached(self, db):
        small_sql = "SELECT tag FROM small WHERE id = 1"
        db.execute(small_sql)
        hits = db.planner.cache.stats.hits
        db.execute("UPDATE big SET status = 'HELD' WHERE id = 1")
        db.execute("INSERT INTO big VALUES (99, 1, 990.0, 'OPEN')")
        db.execute("DELETE FROM big WHERE id = 99")
        db.execute(small_sql)
        assert db.planner.cache.stats.hits == hits + 1
        assert db.planner.cache.stats.invalidations == 0

    def test_write_to_scanned_table_invalidates(self, db):
        big_sql = "SELECT count(*) FROM big WHERE status = 'DONE'"
        before = db.execute(big_sql).rows
        db.execute("UPDATE big SET status = 'OPEN' WHERE status = 'DONE'")
        assert db.execute(big_sql).rows == [(0,)]
        assert before != [(0,)]
        assert db.planner.cache.stats.invalidations == 1

    def test_update_invalidates_join_plans_of_either_table(self, db):
        join_sql = (
            "SELECT count(*) FROM small, big "
            "WHERE small.id = big.small_id AND small.tag = 'a'"
        )
        db.execute(join_sql)
        db.execute("UPDATE small SET tag = 'z' WHERE tag = 'a'")
        assert db.execute(join_sql).rows == [(0,)]
        assert db.planner.cache.stats.invalidations == 1

    def test_delete_then_count_via_cached_statement(self, db):
        sql = "SELECT count(*) FROM big"
        total = db.execute(sql).rows[0][0]
        removed = db.execute("DELETE FROM big WHERE status = 'DONE'").rowcount
        assert removed > 0
        assert db.execute(sql).rows == [(total - removed,)]

    def test_drop_and_recreate_invalidates_via_ddl_version(self, db):
        sql = "SELECT count(*) FROM small"
        assert db.execute(sql).rows == [(3,)]
        db.catalog.drop_table("small")
        db.execute("CREATE TABLE small (id INT PRIMARY KEY, tag TEXT)")
        # the re-created table starts empty; a stale plan would still
        # scan the old table object and report 3
        assert db.execute(sql).rows == [(0,)]


class TestStatistics:
    def test_distinct_and_null_counts(self, db):
        provider = StatisticsProvider(db.catalog)
        stats = provider.table_stats("small")
        assert stats.row_count == 3
        assert stats.distinct("tag") == 3
        assert stats.null_fraction("tag") == 0.0

    def test_stats_cache_refreshes_on_growth(self, db):
        provider = StatisticsProvider(db.catalog)
        assert provider.table_stats("small").row_count == 3
        db.execute("INSERT INTO small VALUES (4, 'd')")
        assert provider.table_stats("small").row_count == 4

    def test_stats_cache_refreshes_after_drop_recreate(self, db):
        provider = StatisticsProvider(db.catalog)
        assert provider.table_stats("small").distinct("tag") == 3
        db.catalog.drop_table("small")
        db.execute("CREATE TABLE small (id INT PRIMARY KEY, tag TEXT)")
        db.execute("INSERT INTO small VALUES (1, 'z'), (2, 'z'), (3, 'z')")
        # same name and row count as before: only the DDL version differs
        assert provider.table_stats("small").distinct("tag") == 1


class TestSodaIntegration:
    def test_facade_explain(self, soda):
        result = soda.search("private customers family name", execute=False)
        plan = soda.explain(result.best.sql)
        assert "scan" in plan and "project" in plan

    def test_executed_statements_carry_plans(self, soda):
        result = soda.search("Zurich", execute=True)
        executed = [s for s in result.statements if s.snippet is not None]
        assert executed, "expected at least one executed statement"
        assert all(s.plan and "scan" in s.plan for s in executed)

    def test_plan_cache_stats_exposed(self, soda):
        stats = soda.plan_cache_stats()
        assert stats.hits + stats.misses > 0
