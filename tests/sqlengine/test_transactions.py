"""Explicit transactions: BEGIN/COMMIT/ROLLBACK semantics and parity.

The core invariant under test: after ROLLBACK the catalog is
*byte-identical* — fingerprint, tuple rows, columnar stores, and any
write-through-maintained inverted index — to an oracle catalog that
never saw the transaction.  This must hold across every storage
layout (plain lists, dictionary-encoded TEXT, typed-array numerics)
because rollback routes through the same public mutation paths as
forward execution.
"""

import pytest

from repro.errors import SqlTypeError, TransactionError
from repro.index.inverted import InvertedIndex
from repro.index.maintenance import attach_maintainer
from repro.sqlengine.database import Database

SEED_SQL = [
    "CREATE TABLE items (id INT PRIMARY KEY, grp INT, amount REAL, "
    "label TEXT)",
    "INSERT INTO items VALUES "
    "(1, 1, 10.0, 'alpha'), (2, 1, 20.0, 'beta'), "
    "(3, 2, 30.0, NULL), (4, NULL, 40.0, 'delta')",
]

TXN_SQL = [
    "BEGIN",
    "INSERT INTO items VALUES (5, 3, 50.0, 'epsilon')",
    "UPDATE items SET amount = amount * 2 WHERE grp = 1",
    "DELETE FROM items WHERE id = 3",
    "UPDATE items SET label = 'rewritten' WHERE id = 4",
]


def make_db(**kwargs) -> Database:
    db = Database(**kwargs)
    for sql in SEED_SQL:
        db.execute(sql)
    return db


def catalog_state(db: Database) -> dict:
    """Everything observable about the catalog, for byte-identity checks."""
    state = {"fingerprint": db.catalog.fingerprint()}
    for name in db.table_names():
        table = db.table(name)
        state[name] = {
            "rows": list(table.rows),
            "columns": [
                list(table.column_data(i)) for i in range(len(table.columns))
            ],
        }
    return state


def index_state(index: InvertedIndex) -> dict:
    tokens = ["alpha", "beta", "epsilon", "rewritten", "delta", "zurich"]
    return {
        "summary": index.size_summary(),
        "lookups": {token: index.lookup(token) for token in tokens},
    }


class TestProtocol:
    def test_commit_without_begin(self):
        db = make_db()
        with pytest.raises(TransactionError, match="no transaction"):
            db.execute("COMMIT")

    def test_rollback_without_begin(self):
        db = make_db()
        with pytest.raises(TransactionError, match="no transaction"):
            db.execute("ROLLBACK")

    def test_nested_begin_rejected(self):
        db = make_db()
        db.execute("BEGIN")
        with pytest.raises(TransactionError, match="already open"):
            db.execute("BEGIN")

    def test_begin_transaction_keyword_optional(self):
        db = make_db()
        db.execute("BEGIN TRANSACTION")
        db.execute("INSERT INTO items VALUES (9, 9, 9.0, 'nine')")
        db.execute("COMMIT")
        assert db.row_count("items") == 5

    def test_ddl_inside_transaction_rejected(self):
        db = make_db()
        db.execute("BEGIN")
        with pytest.raises(TransactionError, match="auto-commit"):
            db.execute("CREATE TABLE other (id INT)")
        with pytest.raises(TransactionError, match="auto-commit"):
            db.create_table("other", [("id", "INTEGER")])
        db.execute("ROLLBACK")

    def test_transaction_reusable_after_close(self):
        db = make_db()
        for _ in range(3):
            db.execute("BEGIN")
            db.execute("DELETE FROM items WHERE id = 1")
            db.execute("ROLLBACK")
        assert db.row_count("items") == 4


class TestCommit:
    def test_commit_keeps_changes(self):
        db = make_db()
        for sql in TXN_SQL:
            db.execute(sql)
        db.execute("COMMIT")
        oracle = make_db()
        for sql in TXN_SQL[1:]:  # same statements, auto-commit
            oracle.execute(sql)
        assert catalog_state(db) == catalog_state(oracle)

    def test_empty_transaction_is_a_noop(self):
        db = make_db()
        before = catalog_state(db)
        db.execute("BEGIN")
        db.execute("COMMIT")
        assert catalog_state(db) == before


class TestRollbackParity:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"dict_encoding_threshold": 2},
            {"array_store": True},
            {"array_store": True, "dict_encoding_threshold": 2},
        ],
        ids=["plain", "dict", "array", "dict+array"],
    )
    def test_rollback_restores_byte_identical_state(self, kwargs):
        oracle = make_db(**kwargs)
        db = make_db(**kwargs)
        for sql in TXN_SQL:
            db.execute(sql)
        db.execute("ROLLBACK")
        assert catalog_state(db) == catalog_state(oracle)

    def test_rollback_of_insert_rows(self):
        oracle = make_db()
        db = make_db()
        db.execute("BEGIN")
        db.insert_rows("items", [(10, 5, 1.0, "bulk one"), (11, 5, 2.0, None)])
        db.execute("ROLLBACK")
        assert catalog_state(db) == catalog_state(oracle)

    def test_rollback_spans_multiple_tables(self):
        def seed(database):
            database.execute("CREATE TABLE notes (id INT, body TEXT)")
            database.execute("INSERT INTO notes VALUES (1, 'gold bond')")

        oracle = make_db()
        seed(oracle)
        db = make_db()
        seed(db)
        db.execute("BEGIN")
        db.execute("INSERT INTO notes VALUES (2, 'silver')")
        db.execute("DELETE FROM items WHERE grp = 1")
        db.execute("UPDATE notes SET body = 'rewritten'")
        db.execute("ROLLBACK")
        assert catalog_state(db) == catalog_state(oracle)

    def test_rollback_restores_inverted_index(self):
        """The maintained index converges back without index-specific undo."""
        db = make_db()
        maintained = InvertedIndex.build(db.catalog)
        attach_maintainer(db.catalog, maintained)
        baseline = index_state(maintained)
        for sql in TXN_SQL:
            db.execute(sql)
        assert index_state(maintained) != baseline  # writes flowed through
        db.execute("ROLLBACK")
        assert index_state(maintained) == baseline
        rebuilt = InvertedIndex.build(db.catalog)
        assert index_state(maintained) == index_state(rebuilt)

    def test_rollback_of_delete_heavy_transaction(self):
        """restore_rows puts deleted rows back at their old positions."""
        oracle = make_db()
        db = make_db()
        db.execute("BEGIN")
        db.execute("DELETE FROM items WHERE id = 2")
        db.execute("DELETE FROM items WHERE id = 4")
        db.execute("INSERT INTO items VALUES (6, 6, 6.0, 'six')")
        db.execute("DELETE FROM items")
        db.execute("ROLLBACK")
        assert catalog_state(db) == catalog_state(oracle)


class TestFingerprintToken:
    def test_mid_transaction_fingerprint_is_marked(self):
        db = make_db()
        before = db.catalog.fingerprint()
        db.execute("BEGIN")
        during = db.catalog.fingerprint()
        assert during != before
        assert during[-1][0] == "txn"
        db.execute("ROLLBACK")
        assert db.catalog.fingerprint() == before

    def test_successive_transactions_get_distinct_tokens(self):
        """A memo keyed on txn 1's fingerprint can't validate in txn 2."""
        db = make_db()
        db.execute("BEGIN")
        first = db.catalog.fingerprint()
        db.execute("ROLLBACK")
        db.execute("BEGIN")
        second = db.catalog.fingerprint()
        db.execute("ROLLBACK")
        assert first != second

    def test_plan_cache_survives_rollback(self):
        """SELECT inside a txn, rollback, SELECT again: same results."""
        db = make_db()
        baseline = db.execute("SELECT id FROM items ORDER BY id").rows
        db.execute("BEGIN")
        db.execute("INSERT INTO items VALUES (7, 7, 7.0, 'seven')")
        inside = db.execute("SELECT id FROM items ORDER BY id").rows
        assert inside != baseline
        db.execute("ROLLBACK")
        assert db.execute("SELECT id FROM items ORDER BY id").rows == baseline


class TestStatementAtomicity:
    def test_multi_row_insert_fails_atomically(self):
        """A coercion failure on row three leaves rows one and two out."""
        oracle = make_db()
        db = make_db()
        with pytest.raises(SqlTypeError):
            db.execute(
                "INSERT INTO items VALUES "
                "(5, 5, 5.0, 'ok'), (6, 6, 6.0, 'ok'), (7, 7, 'bad', 'x')"
            )
        assert catalog_state(db) == catalog_state(oracle)

    def test_insert_rows_fails_atomically(self):
        oracle = make_db()
        db = make_db()
        with pytest.raises(SqlTypeError):
            db.insert_rows(
                "items", [(5, 5, 5.0, "ok"), (6, 6, "bad", "x")]
            )
        assert catalog_state(db) == catalog_state(oracle)

    def test_failed_statement_inside_transaction_keeps_earlier_writes(self):
        """Savepoint rollback: the failed statement vanishes, the rest stay."""
        db = make_db()
        db.execute("BEGIN")
        db.execute("INSERT INTO items VALUES (5, 5, 5.0, 'keep me')")
        with pytest.raises(SqlTypeError):
            db.execute(
                "INSERT INTO items VALUES (6, 6, 6.0, 'ok'), "
                "(7, 7, 'bad', 'x')"
            )
        db.execute("COMMIT")
        oracle = make_db()
        oracle.execute("INSERT INTO items VALUES (5, 5, 5.0, 'keep me')")
        assert catalog_state(db) == catalog_state(oracle)

    def test_failed_statement_then_rollback(self):
        """Savepoint undo composes with a later full ROLLBACK."""
        oracle = make_db()
        db = make_db()
        db.execute("BEGIN")
        db.execute("UPDATE items SET amount = 0.0 WHERE id = 1")
        with pytest.raises(SqlTypeError):
            db.execute(
                "INSERT INTO items VALUES (6, 6, 6.0, 'ok'), "
                "(7, 7, 'bad', 'x')"
            )
        db.execute("ROLLBACK")
        assert catalog_state(db) == catalog_state(oracle)
