"""Tests for expression compilation details (scope resolution, 3VL, LIKE)."""

import pytest

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.ast_nodes import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    collect_column_refs,
    contains_aggregate,
)
from repro.sqlengine.expressions import (
    Scope,
    compile_expr,
    like_to_regex,
    split_conjuncts,
)
from repro.sqlengine.parser import parse_select


def where_expr(condition):
    return parse_select(f"SELECT * FROM t WHERE {condition}").where


class TestScope:
    def test_qualified_resolution(self):
        scope = Scope([("t", "a"), ("u", "a")])
        assert scope.resolve(ColumnRef("t", "a")) == 0
        assert scope.resolve(ColumnRef("u", "a")) == 1

    def test_unqualified_unique(self):
        scope = Scope([("t", "a"), ("u", "b")])
        assert scope.resolve(ColumnRef(None, "b")) == 1

    def test_unqualified_ambiguous_raises(self):
        scope = Scope([("t", "a"), ("u", "a")])
        with pytest.raises(SqlCatalogError):
            scope.resolve(ColumnRef(None, "a"))

    def test_unknown_raises_with_description(self):
        scope = Scope([("t", "a")])
        with pytest.raises(SqlCatalogError) as excinfo:
            scope.resolve(ColumnRef("t", "zzz"))
        assert "t.a" in str(excinfo.value)

    def test_try_resolve(self):
        scope = Scope([("t", "a")])
        assert scope.try_resolve(ColumnRef("t", "zzz")) is None

    def test_concat(self):
        scope = Scope([("t", "a")]).concat(Scope([("u", "b")]))
        assert len(scope) == 2
        assert scope.bindings() == {"t", "u"}


class TestThreeValuedLogic:
    def evaluate(self, condition, row, pairs):
        scope = Scope(pairs)
        return compile_expr(where_expr(condition), scope)(row)

    def test_and_false_dominates_null(self):
        # NULL AND FALSE is FALSE
        assert self.evaluate("a = 1 AND b = 1", (None, 0), [("t", "a"), ("t", "b")]) \
            is False

    def test_and_null(self):
        assert self.evaluate("a = 1 AND b = 1", (None, 1), [("t", "a"), ("t", "b")]) \
            is None

    def test_or_true_dominates_null(self):
        assert self.evaluate("a = 1 OR b = 1", (None, 1), [("t", "a"), ("t", "b")]) \
            is True

    def test_or_null(self):
        assert self.evaluate("a = 1 OR b = 1", (None, 0), [("t", "a"), ("t", "b")]) \
            is None

    def test_not_null_is_null(self):
        assert self.evaluate("NOT a = 1", (None,), [("t", "a")]) is None

    def test_comparison_with_null_is_null(self):
        assert self.evaluate("a < 5", (None,), [("t", "a")]) is None

    def test_in_with_null_item(self):
        assert self.evaluate("a IN (1, NULL)", (2,), [("t", "a")]) is None
        assert self.evaluate("a IN (2, NULL)", (2,), [("t", "a")]) is True

    def test_between_null_bound(self):
        assert self.evaluate("a BETWEEN 1 AND b", (2, None),
                             [("t", "a"), ("t", "b")]) is None

    def test_arithmetic_null_propagates(self):
        assert self.evaluate("a + 1 = 2", (None,), [("t", "a")]) is None


class TestLike:
    def test_percent(self):
        assert like_to_regex("%gold%").match("The Gold Standard")

    def test_underscore(self):
        assert like_to_regex("gol_").match("gold")
        assert not like_to_regex("gol_").match("golds")

    def test_escapes_regex_chars(self):
        assert like_to_regex("a.b%").match("a.b-rest")
        assert not like_to_regex("a.b%").match("axb-rest")

    def test_not_like(self):
        scope = Scope([("t", "a")])
        fn = compile_expr(where_expr("a NOT LIKE '%x%'"), scope)
        assert fn(("yyy",)) is True
        assert fn(("x",)) is False
        assert fn((None,)) is None


class TestHelpers:
    def test_split_conjuncts(self):
        expr = where_expr("a = 1 AND b = 2 AND (c = 3 OR d = 4)")
        parts = split_conjuncts(expr)
        assert len(parts) == 3

    def test_split_none(self):
        assert split_conjuncts(None) == []

    def test_contains_aggregate(self):
        assert contains_aggregate(
            BinaryOp("+", FuncCall("sum", (ColumnRef(None, "a"),)), Literal(1))
        )
        assert not contains_aggregate(ColumnRef(None, "a"))

    def test_collect_column_refs(self):
        expr = where_expr("t.a = 1 AND lower(t.b) LIKE '%x%'")
        refs = collect_column_refs(expr)
        assert ColumnRef("t", "a") in refs
        assert ColumnRef("t", "b") in refs

    def test_aggregate_outside_context_raises(self):
        scope = Scope([("t", "a")])
        with pytest.raises(SqlExecutionError):
            compile_expr(FuncCall("sum", (ColumnRef("t", "a"),)), scope)
