"""EngineConfig: the unified public engine configuration surface.

One frozen dataclass consolidates the six ``Database(...)`` engine
knobs (plus the new ``segment_rows``); the old keyword arguments stay
as deprecation shims, ``Database.config`` reports the resolved live
settings, and ``EngineConfig.from_cli`` parses the
``--engine-config key=value[,key=value]`` CLI spec.
"""

import dataclasses
import io
import warnings

import pytest

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.config import DEFAULT_SEGMENT_ROWS, EngineConfig
from repro.sqlengine.database import Database


class TestEngineConfig:
    def test_defaults_match_the_legacy_knob_defaults(self):
        config = EngineConfig()
        assert config.plan_cache_size == 128
        assert config.execution_mode == "batch"
        assert config.dict_encoding_threshold is None
        assert config.fused is True
        assert config.parallel_workers == 1
        assert config.array_store is False
        assert config.segment_rows == 0  # flat storage unless asked

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EngineConfig().fused = False

    def test_validation_mirrors_the_engine_errors(self):
        with pytest.raises(SqlExecutionError, match="plan_cache_size"):
            EngineConfig(plan_cache_size=-1)
        with pytest.raises(SqlExecutionError, match="execution mode"):
            EngineConfig(execution_mode="turbo")
        with pytest.raises(SqlExecutionError, match="parallel_workers"):
            EngineConfig(parallel_workers=0)
        with pytest.raises(SqlExecutionError, match="fused"):
            EngineConfig(fused="yes")
        with pytest.raises(SqlCatalogError, match="dict_encoding_threshold"):
            EngineConfig(dict_encoding_threshold=-2)
        with pytest.raises(SqlCatalogError, match="array_store"):
            EngineConfig(array_store=1)
        with pytest.raises(SqlCatalogError, match="segment_rows"):
            EngineConfig(segment_rows=-8)

    def test_replace_and_as_dict_round_trip(self):
        config = EngineConfig().replace(parallel_workers=4, segment_rows=64)
        assert config.parallel_workers == 4
        assert EngineConfig(**config.as_dict()) == config


class TestFromCli:
    def test_parses_every_field_with_dash_aliases(self):
        config = EngineConfig.from_cli(
            "plan-cache-size=16,execution-mode=row,"
            "dict-encoding-threshold=none,fused=off,parallel-workers=4,"
            "array-store=true,segment-rows=512"
        )
        assert config == EngineConfig(
            plan_cache_size=16,
            execution_mode="row",
            dict_encoding_threshold=None,
            fused=False,
            parallel_workers=4,
            array_store=True,
            segment_rows=512,
        )

    def test_overrides_a_base_field_by_field(self):
        base = EngineConfig(segment_rows=DEFAULT_SEGMENT_ROWS)
        config = EngineConfig.from_cli("parallel-workers=2", base=base)
        assert config.segment_rows == DEFAULT_SEGMENT_ROWS
        assert config.parallel_workers == 2

    def test_unknown_key_lists_the_valid_ones(self):
        with pytest.raises(SqlExecutionError, match="segment_rows"):
            EngineConfig.from_cli("segmnet-rows=4")

    def test_bad_value_surfaces_the_field_error(self):
        with pytest.raises(SqlExecutionError, match="parallel_workers"):
            EngineConfig.from_cli("parallel-workers=99")


class TestDatabaseConfig:
    def test_database_accepts_a_config(self):
        db = Database(config=EngineConfig(parallel_workers=2, fused=False))
        assert db.config.parallel_workers == 2
        assert db.config.fused is False

    def test_config_reflects_runtime_setters(self):
        db = Database(config=EngineConfig())
        db.set_execution_mode("row")
        db.set_parallel_workers(4)
        db.set_fused(False)
        config = db.config
        assert config.execution_mode == "row"
        assert config.parallel_workers == 4
        assert config.fused is False

    def test_legacy_kwargs_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="EngineConfig"):
            db = Database(plan_cache_size=4, execution_mode="row")
        assert db.config.plan_cache_size == 4
        assert db.config.execution_mode == "row"

    def test_legacy_kwargs_override_the_config(self):
        with pytest.warns(DeprecationWarning):
            db = Database(
                parallel_workers=2,
                config=EngineConfig(parallel_workers=4, segment_rows=32),
            )
        assert db.config.parallel_workers == 2
        assert db.config.segment_rows == 32  # untouched fields survive

    def test_plain_database_warns_nothing(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Database()
            Database(config=EngineConfig(segment_rows=16))

    def test_segment_rows_reaches_the_catalog(self):
        db = Database(config=EngineConfig(segment_rows=16))
        db.execute("CREATE TABLE t (id INT)")
        assert db.table("t").segmented
        assert db.catalog.segment_rows == 16


class TestCliFlag:
    def _run(self, *argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_engine_config_flag_round_trips(self):
        code, output = self._run(
            "--scale", "0.2",
            "--engine-config", "segment-rows=256,parallel-workers=2",
            "sql", "SELECT COUNT(*) FROM addresses",
        )
        assert code == 0
        assert "row(s)" in output

    def test_bad_engine_config_is_a_clean_error(self):
        code, output = self._run(
            "--scale", "0.2", "--engine-config", "bogus=1",
            "sql", "SELECT 1",
        )
        assert code == 2
        assert "error:" in output
