"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sqlengine.lexer import Token, TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestTokenize:
    def test_keywords_uppercased(self):
        assert values("select from where") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_lowercased(self):
        assert values("Parties INDIVIDUALS") == ["parties", "individuals"]

    def test_numbers(self):
        tokens = tokenize("SELECT 42, 3.14")
        numbers = [t for t in tokens if t.type is TokenType.NUMBER]
        assert [t.value for t in numbers] == ["42", "3.14"]

    def test_string_literal_strips_quotes(self):
        token = tokenize("'Zurich'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "Zurich"

    def test_string_literal_unescapes_doubled_quotes(self):
        token = tokenize("'O''Brien'")[0]
        assert token.value == "O'Brien"

    def test_operators(self):
        assert values("a <> b != c <= d >= e") == [
            "a", "<>", "b", "<>", "c", "<=", "d", ">=", "e"
        ]

    def test_punctuation(self):
        assert values("( ) , . ; *") == ["(", ")", ",", ".", ";", "*"]

    def test_comment_skipped(self):
        assert values("SELECT 1 -- trailing comment") == ["SELECT", "1"]

    def test_eof_token_appended(self):
        assert tokenize("")[-1].type is TokenType.EOF

    def test_unknown_character_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")

    def test_positions_recorded(self):
        tokens = tokenize("SELECT a")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_matches_helper(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.matches(TokenType.KEYWORD)
        assert token.matches(TokenType.KEYWORD, "SELECT")
        assert not token.matches(TokenType.KEYWORD, "FROM")
        assert not token.matches(TokenType.IDENTIFIER)

    def test_identifier_with_dollar(self):
        assert values("col$1") == ["col$1"]

    def test_date_keyword(self):
        assert values("DATE '2010-01-01'") == ["DATE", "2010-01-01"]
