"""Unit tests for PR-7's engine layers.

Covers the pieces the end-to-end parity matrix exercises only
indirectly: the fused-expression compiler's fuse/refuse decisions, the
typed-array column store (NULLs, demotion, the single DML path), the
morsel dispatcher's ordering and error propagation, partial-aggregate
merge, the TopN bound pushdown wiring, and the new engine knobs.
"""

import pytest

from repro.errors import SqlCatalogError, SqlExecutionError
from repro.sqlengine.database import Database
from repro.sqlengine.encoding import ArrayColumn
from repro.sqlengine.planner import physical
from repro.sqlengine.planner.parallel import (
    MAX_PARALLEL_WORKERS,
    MorselDispatcher,
)


class TestArrayColumn:
    def test_round_trips_exact_python_types(self):
        col = ArrayColumn("q")
        for value in (0, 1, -5, 2**62):
            col.append(value)
        assert list(col) == [0, 1, -5, 2**62]
        assert all(type(v) is int for v in col)
        real = ArrayColumn("d")
        real.append(1.5)
        real.append(-0.0)
        assert repr(real[:]) == "[1.5, -0.0]"

    def test_nulls_via_validity(self):
        col = ArrayColumn("q")
        col.append(None)
        col.append(7)
        col.append(None)
        assert col[0] is None and col[1] == 7 and col[2] is None
        assert col[:] == [None, 7, None]
        assert col.count(None) == 2
        # the NULL placeholder zero must not count as a real zero
        assert col.count(0) == 0
        col.append(0)
        assert col.count(0) == 1

    def test_update_and_delete_paths(self):
        col = ArrayColumn("q")
        for i in range(6):
            col.append(i)
        col[2] = None          # UPDATE to NULL
        col[3] = 99            # UPDATE to a value
        assert col[:] == [0, 1, None, 99, 4, 5]
        col[:] = [v for v in col[:] if v != 99]  # DELETE compaction
        assert col[:] == [0, 1, None, 4, 5]
        assert len(col) == 5

    def test_overflow_demotes_in_place(self):
        col = ArrayColumn("q")
        col.append(1)
        col.append(None)
        alias = col
        col.append(2**70)  # beyond int64: storage becomes a plain list
        assert col.demoted
        assert alias[:] == [1, None, 2**70]
        col.append(None)
        col[0] = 2**80
        assert col[:] == [2**80, None, 2**70, None]

    def test_rejects_unknown_typecode(self):
        with pytest.raises(ValueError, match="typecode"):
            ArrayColumn("f")

    def test_database_opt_in(self):
        db = Database(array_store=True)
        db.execute("CREATE TABLE t (id INT, x REAL, s TEXT)")
        db.execute("INSERT INTO t VALUES (1, 1.5, 'a'), (2, NULL, NULL)")
        table = db.table("t")
        assert isinstance(table.column_data(0), ArrayColumn)
        assert isinstance(table.column_data(1), ArrayColumn)
        assert not isinstance(table.column_data(2), ArrayColumn)
        assert db.execute("SELECT id, x, s FROM t ORDER BY id").rows == [
            (1, 1.5, "a"),
            (2, None, None),
        ]
        # big-int INSERT goes through the same demotion path
        db.execute("INSERT INTO t VALUES (99999999999999999999, 2.0, 'b')")
        assert db.execute("SELECT max(id) FROM t").rows == [
            (99999999999999999999,)
        ]

    def test_default_database_keeps_plain_lists(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        assert isinstance(db.table("t").column_data(0), list)


class TestFusedCompilation:
    @staticmethod
    def _db(**kwargs):
        db = Database(**kwargs)
        db.execute("CREATE TABLE t (id INT, x REAL, s TEXT)")
        db.execute(
            "INSERT INTO t VALUES " + ", ".join(
                f"({i}, {i * 1.5}, 's{i % 4}')" for i in range(50)
            )
        )
        return db

    def _scan(self, db, sql):
        from repro.sqlengine.parser import parse_select

        plan = db.planner.prepare(parse_select(sql))
        op = plan._root
        while not isinstance(op, physical.BatchScanOp):
            op = op._child
        return op

    @staticmethod
    def _kinds(scan):
        return [kind for kind, __ in scan._filter_stages]

    def test_safe_conjunction_fuses_to_one_stage(self):
        scan = self._scan(
            self._db(), "SELECT id FROM t WHERE x > 3 AND id < 40 AND s = 's1'"
        )
        assert self._kinds(scan) == ["fused"]

    def test_unsafe_conjunct_stays_a_closure(self):
        # division can raise, so it must stay an ordered closure; the
        # safe prefix before it still fuses
        scan = self._scan(
            self._db(), "SELECT id FROM t WHERE x > 3 AND 10 / id > 0"
        )
        assert self._kinds(scan) == ["fused", "closures"]

    def test_fusible_run_after_unfusible_conjunct_fuses(self):
        # the fusible run does not have to be a prefix: conjuncts after
        # an unfusible one still collapse, they just run behind it
        scan = self._scan(
            self._db(),
            "SELECT id FROM t WHERE 10 / id > 0 AND x > 3 AND id < 40",
        )
        assert self._kinds(scan) == ["closures", "fused"]

    def test_fused_off_uses_closures_only(self):
        scan = self._scan(
            self._db(fused=False), "SELECT id FROM t WHERE x > 3 AND id < 40"
        )
        assert self._kinds(scan) == ["closures"]
        assert len(scan._filter_stages[0][1]) == 2

    def test_fused_batches_counter_moves(self):
        db = self._db()
        before = db.metrics().get("engine.fused_batches", {}).get("value", 0)
        db.execute("SELECT id FROM t WHERE x > 3 AND id < 40")
        after = db.metrics()["engine.fused_batches"]["value"]
        assert after > before


class TestMorselDispatcher:
    def test_results_in_task_order(self):
        import time

        def make(i):
            def task():
                time.sleep(0.002 * ((i * 7) % 5))  # scramble finish order
                return i

            return task

        dispatcher = MorselDispatcher(4)
        assert list(dispatcher.run_ordered([make(i) for i in range(20)])) \
            == list(range(20))

    def test_earliest_failure_wins(self):
        def ok(i):
            return lambda: i

        def boom():
            raise ValueError("morsel 3 failed")

        dispatcher = MorselDispatcher(4)
        out = []
        with pytest.raises(ValueError, match="morsel 3 failed"):
            for value in dispatcher.run_ordered(
                [ok(0), ok(1), ok(2), boom, ok(4)]
            ):
                out.append(value)
        assert out == [0, 1, 2]

    def test_single_task_runs_inline(self):
        dispatcher = MorselDispatcher(4)
        assert list(dispatcher.run_ordered([lambda: "only"])) == ["only"]


class TestAccumulatorMerge:
    def test_sum_merge_matches_serial(self):
        from repro.sqlengine.functions import make_accumulator

        serial = make_accumulator("sum", False, False)
        parts = [make_accumulator("sum", False, False) for _ in range(3)]
        values = [1, 2.5, -0.0, 10**20, 0.1, None]
        for i, value in enumerate(values):
            serial.add(value)
            parts[i % 3].add(value)
        merged = parts[0]
        merged.merge(parts[1])
        merged.merge(parts[2])
        assert repr(merged.result()) == repr(serial.result())

    def test_distinct_sum_refuses_merge(self):
        from repro.sqlengine.functions import make_accumulator

        left = make_accumulator("sum", False, True)
        right = make_accumulator("sum", False, True)
        left.add(1)
        right.add(2)
        with pytest.raises(SqlExecutionError, match="DISTINCT"):
            left.merge(right)

    def test_count_distinct_merges_as_set_union(self):
        from repro.sqlengine.functions import make_accumulator

        left = make_accumulator("count", False, True)
        right = make_accumulator("count", False, True)
        for value in ("a", "b"):
            left.add(value)
        for value in ("b", "c"):
            right.add(value)
        left.merge(right)
        assert left.result() == 3


class TestTopNBoundPushdown:
    @staticmethod
    def _scan_of(db, sql):
        from repro.sqlengine.parser import parse_select

        plan = db.planner.prepare(parse_select(sql))
        op = plan._root

        def find(node, cls):
            if isinstance(node, cls):
                return node
            for attr in ("_child", "_project", "_chain", "_scan"):
                nxt = getattr(node, attr, None)
                if nxt is not None:
                    found = find(nxt, cls)
                    if found is not None:
                        return found
            return None

        return find(op, physical.BatchTopNOp), find(op, physical.BatchScanOp)

    @staticmethod
    def _db():
        db = Database()
        db.execute("CREATE TABLE t (id INT, v REAL)")
        db.execute(
            "INSERT INTO t VALUES " + ", ".join(
                f"({i}, {i * 1.5})" for i in range(300)
            )
        )
        return db

    def test_plain_column_key_connects(self):
        topn, scan = self._scan_of(
            self._db(), "SELECT id, v FROM t WHERE v > 10 ORDER BY v DESC LIMIT 5"
        )
        assert topn._bound_cell is not None
        assert scan._bound_cell is topn._bound_cell

    def test_expression_key_bails(self):
        topn, scan = self._scan_of(
            self._db(), "SELECT id FROM t ORDER BY v * 2 LIMIT 5"
        )
        assert topn._bound_cell is None
        assert scan._bound_cell is None

    def test_unsafe_projection_bails(self):
        # 100 / id can raise for rows the bound would have dropped
        topn, scan = self._scan_of(
            self._db(), "SELECT 100 / id FROM t ORDER BY v LIMIT 5"
        )
        assert topn._bound_cell is None
        assert scan._bound_cell is None

    def test_explain_analyze_stays_unpruned(self):
        db = self._db()
        text = db.explain(
            "SELECT id, v FROM t ORDER BY v DESC LIMIT 5", analyze=True
        )
        # the scan reports every row: instrumented plans never prune
        assert "rows=300" in text


class TestEngineKnobs:
    def test_invalid_parallel_workers_rejected(self):
        db = Database()
        for bad in (0, -1, MAX_PARALLEL_WORKERS + 1, "4", 2.0, True, None):
            with pytest.raises(SqlExecutionError, match="parallel_workers"):
                db.set_parallel_workers(bad)
        with pytest.raises(SqlExecutionError, match="parallel_workers"):
            Database(parallel_workers=0)

    def test_invalid_fused_rejected(self):
        db = Database()
        for bad in ("yes", 1, None):
            with pytest.raises(SqlExecutionError, match="fused"):
                db.set_fused(bad)

    def test_invalid_array_store_rejected(self):
        with pytest.raises(SqlCatalogError, match="array_store"):
            Database(array_store="yes")

    def test_knob_changes_drop_plan_cache(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        db.execute("SELECT id FROM t")
        assert len(db.planner.cache) == 1
        db.set_parallel_workers(2)
        assert len(db.planner.cache) == 0
        db.execute("SELECT id FROM t")
        db.set_fused(False)
        assert len(db.planner.cache) == 0
        # setting the same value again keeps the cache
        db.execute("SELECT id FROM t")
        db.set_fused(False)
        db.set_parallel_workers(2)
        assert len(db.planner.cache) == 1

    def test_parallel_workers_gauge_tracks_knob(self):
        db = Database(parallel_workers=3)
        assert db.metrics()["engine.parallel_workers"]["value"] == 3
        db.set_parallel_workers(5)
        assert db.metrics()["engine.parallel_workers"]["value"] == 5

    def test_explain_marks_parallel_scans(self):
        db = Database(parallel_workers=4)
        db.execute("CREATE TABLE t (id INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert "[parallel n=4]" in db.explain("SELECT count(*) FROM t")
        db.set_parallel_workers(1)
        assert "[parallel" not in db.explain("SELECT count(*) FROM t")
