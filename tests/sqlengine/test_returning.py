"""RETURNING clauses on INSERT/UPDATE/DELETE."""

import pytest

from repro.errors import SqlCatalogError, SqlSyntaxError
from repro.sqlengine.database import Database


def make_db() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, grp INT, amount REAL, "
        "label TEXT)"
    )
    db.execute(
        "INSERT INTO items VALUES "
        "(1, 1, 10.0, 'alpha'), (2, 1, 20.0, 'beta'), (3, 2, 30.0, NULL)"
    )
    return db


class TestInsertReturning:
    def test_returning_star(self):
        db = make_db()
        result = db.execute(
            "INSERT INTO items VALUES (4, 2, 40.0, 'delta') RETURNING *"
        )
        assert result.columns == ["id", "grp", "amount", "label"]
        assert result.rows == [(4, 2, 40.0, "delta")]
        assert result.rowcount == 1

    def test_returning_projects_and_aliases(self):
        db = make_db()
        result = db.execute(
            "INSERT INTO items VALUES (4, 2, 40.0, 'delta'), "
            "(5, 3, 50.0, 'epsilon') "
            "RETURNING id, amount * 2 AS doubled"
        )
        assert result.columns == ["id", "doubled"]
        assert result.rows == [(4, 80.0), (5, 100.0)]
        assert result.rowcount == 2

    def test_returning_sees_coerced_values(self):
        """RETURNING reflects the stored row, not the literal text."""
        db = make_db()
        result = db.execute(
            "INSERT INTO items VALUES (4, 2, 40, 'delta') RETURNING amount"
        )
        assert result.rows == [(40.0,)]

    def test_named_column_insert_returning(self):
        db = make_db()
        result = db.execute(
            "INSERT INTO items (id, label) VALUES (4, 'partial') "
            "RETURNING id, grp, label"
        )
        assert result.rows == [(4, None, "partial")]


class TestUpdateReturning:
    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_returning_new_image(self, mode):
        db = make_db()
        db.set_execution_mode(mode)
        result = db.execute(
            "UPDATE items SET amount = amount + 1.0 WHERE grp = 1 "
            "RETURNING id, amount"
        )
        assert sorted(result.rows) == [(1, 11.0), (2, 21.0)]
        assert result.rowcount == 2

    def test_no_matches_returns_empty(self):
        db = make_db()
        result = db.execute(
            "UPDATE items SET amount = 0.0 WHERE id = 99 RETURNING *"
        )
        assert result.rows == []
        assert result.rowcount == 0
        assert result.columns == ["id", "grp", "amount", "label"]


class TestDeleteReturning:
    def test_returning_deleted_rows(self):
        db = make_db()
        result = db.execute(
            "DELETE FROM items WHERE grp = 1 RETURNING id, label"
        )
        assert sorted(result.rows) == [(1, "alpha"), (2, "beta")]
        assert result.rowcount == 2
        assert db.row_count("items") == 1

    def test_returning_star_captures_old_image(self):
        db = make_db()
        result = db.execute("DELETE FROM items WHERE id = 3 RETURNING *")
        assert result.rows == [(3, 2, 30.0, None)]


class TestErrorsAndTransactions:
    def test_unknown_column_rejected(self):
        db = make_db()
        with pytest.raises(SqlCatalogError):
            db.execute(
                "INSERT INTO items VALUES (4, 2, 40.0, 'x') RETURNING nope"
            )
        assert db.row_count("items") == 3  # statement rolled back whole

    def test_wrong_star_qualifier_rejected(self):
        db = make_db()
        with pytest.raises(SqlCatalogError):
            db.execute("DELETE FROM items WHERE id = 1 RETURNING other.*")

    def test_returning_requires_items(self):
        db = make_db()
        with pytest.raises(SqlSyntaxError):
            db.execute("DELETE FROM items RETURNING")

    def test_returning_inside_rolled_back_transaction(self):
        """RETURNING reports the provisional rows; ROLLBACK discards them."""
        db = make_db()
        db.execute("BEGIN")
        result = db.execute(
            "INSERT INTO items VALUES (4, 2, 40.0, 'delta') RETURNING id"
        )
        assert result.rows == [(4,)]
        db.execute("ROLLBACK")
        assert db.row_count("items") == 3
