"""Tests for the base-data inverted index."""

import pytest

from repro.index.inverted import InvertedIndex, Posting, tokenize_text
from repro.sqlengine.database import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE orgs (id INT, org_nm TEXT, notes TEXT)"
    )
    database.execute(
        "INSERT INTO orgs VALUES "
        "(1, 'Credit Suisse', 'bank'), "
        "(2, 'Suisse Credit Union', NULL), "
        "(3, 'Alpine Trading AG', 'gold dealer')"
    )
    database.execute("CREATE TABLE nums (id INT, amount REAL)")
    database.execute("INSERT INTO nums VALUES (1, 5.0)")
    return database


@pytest.fixture
def index(db):
    return InvertedIndex.build(db.catalog)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize_text("Credit Suisse AG") == ["credit", "suisse", "ag"]

    def test_punctuation_split(self):
        assert tokenize_text("a-b_c.d") == ["a", "b", "c", "d"]

    def test_numbers_kept(self):
        assert tokenize_text("Loan 2011") == ["loan", "2011"]

    def test_empty(self):
        assert tokenize_text("   ") == []


class TestBuild:
    def test_only_text_columns_indexed(self, index):
        # the paper: numeric columns are not in the inverted index
        assert not index.lookup("5")

    def test_null_values_skipped(self, index):
        assert index.entry_count() == 5  # 3 org names + 2 non-null notes

    def test_restricted_tables(self, db):
        partial = InvertedIndex.build(db.catalog, tables=["nums"])
        assert partial.entry_count() == 0


class TestLookup:
    def test_single_token(self, index):
        postings = index.lookup("credit")
        assert len(postings) == 2
        assert all(p.column == "org_nm" for p in postings)

    def test_lookup_is_case_insensitive(self, index):
        assert index.lookup("CREDIT") == index.lookup("credit")

    def test_unknown_token(self, index):
        assert index.lookup("zzz") == []

    def test_has_token(self, index):
        assert index.has_token("gold")
        assert not index.has_token("silver")

    def test_occurrences_counted(self):
        index = InvertedIndex()
        index.add("t", "c", "Zurich")
        index.add("t", "c", "Zurich")
        assert index.lookup("zurich")[0].occurrences == 2


class TestPhrase:
    def test_contiguous_phrase_matches(self, index):
        postings = index.lookup_phrase("credit suisse")
        assert [p.value for p in postings] == ["Credit Suisse"]

    def test_non_contiguous_rejected(self, index):
        # 'Suisse Credit Union' has both tokens but not adjacent in order
        values = [p.value for p in index.lookup_phrase("credit union")]
        assert values == ["Suisse Credit Union"]
        assert not [
            p for p in index.lookup_phrase("credit suisse")
            if p.value == "Suisse Credit Union"
        ]

    def test_single_word_phrase(self, index):
        assert index.lookup_phrase("gold")

    def test_empty_phrase(self, index):
        assert index.lookup_phrase("") == []

    def test_missing_token_short_circuits(self, index):
        assert index.lookup_phrase("credit zzz") == []


class TestPhraseOccurrences:
    """occurrences = contiguous phrase matches, not per-token minimum."""

    def test_repeated_token_not_overcounted(self):
        # 'alpha' appears twice but the phrase 'alpha beta' only once:
        # the per-token minimum would claim a match count driven by the
        # stray leading 'alpha'
        index = InvertedIndex()
        index.add("t", "c", "alpha gamma alpha beta")
        postings = index.lookup_phrase("alpha beta")
        assert [p.occurrences for p in postings] == [1]

    def test_phrase_repeated_in_value_counted(self):
        index = InvertedIndex()
        index.add("t", "c", "ping pong ping pong")
        assert index.lookup_phrase("ping pong")[0].occurrences == 2

    def test_row_multiplicity_multiplies(self):
        index = InvertedIndex()
        index.add("t", "c", "credit suisse")
        index.add("t", "c", "credit suisse")
        assert index.lookup_phrase("credit suisse")[0].occurrences == 2

    def test_overlapping_needle(self):
        index = InvertedIndex()
        index.add("t", "c", "la la la")
        assert index.lookup_phrase("la la")[0].occurrences == 2


class TestCaching:
    def test_lookup_results_stable_after_cache_hit(self, index):
        first = index.lookup("credit")
        second = index.lookup("credit")
        assert first == second
        assert first is not second  # callers get their own list

    def test_caller_mutation_does_not_poison_cache(self, index):
        index.lookup("credit").clear()
        assert len(index.lookup("credit")) == 2

    def test_incremental_add_invalidates_lookup(self, index):
        assert len(index.lookup("credit")) == 2
        index.add("orgs", "org_nm", "Credit Nouveau")
        assert len(index.lookup("credit")) == 3

    def test_incremental_add_invalidates_phrase(self, index):
        assert len(index.lookup_phrase("credit suisse")) == 1
        index.add("orgs", "notes", "another credit suisse deal")
        assert len(index.lookup_phrase("credit suisse")) == 2

    def test_version_property_tracks_mutations(self, index):
        before = index.version
        index.add("orgs", "org_nm", "Delta")
        assert index.version > before


class TestStats:
    def test_size_summary(self, index):
        summary = index.size_summary()
        assert summary["indexed_values"] == 5
        assert summary["distinct_tokens"] == index.token_count()
        assert summary["postings"] >= summary["distinct_tokens"]

    def test_posting_sort_key(self):
        a = Posting("a", "c", "v")
        b = Posting("b", "c", "v")
        assert sorted([b, a], key=Posting.sort_key)[0] is a


class TestRemove:
    """The incremental un-index path (UPDATE/DELETE write-through)."""

    def test_remove_last_occurrence_drops_postings(self, db):
        index = InvertedIndex.build(db.catalog)
        index.remove("orgs", "org_nm", "Alpine Trading AG")
        assert index.lookup("alpine") == []
        assert index.lookup("trading") == []
        # shared tokens from other values survive
        assert index.lookup("credit")

    def test_remove_decrements_occurrences(self, db):
        index = InvertedIndex.build(db.catalog)
        index.add("orgs", "org_nm", "Credit Suisse")  # second row, same value
        assert index.lookup("credit")[0].occurrences == 2
        index.remove("orgs", "org_nm", "Credit Suisse")
        postings = [p for p in index.lookup("credit")
                    if p.value == "Credit Suisse"]
        assert postings[0].occurrences == 1
        assert index.entry_count() == 5  # back to the as-built count

    def test_remove_add_round_trip_is_identity(self, db):
        index = InvertedIndex.build(db.catalog)
        before = (index.size_summary(), index.lookup("gold"),
                  index.lookup_phrase("credit suisse"))
        index.remove("orgs", "notes", "gold dealer")
        index.add("orgs", "notes", "gold dealer")
        after = (index.size_summary(), index.lookup("gold"),
                 index.lookup_phrase("credit suisse"))
        assert after == before

    def test_remove_unknown_value_raises(self, db):
        from repro.errors import WarehouseError

        index = InvertedIndex.build(db.catalog)
        with pytest.raises(WarehouseError, match="unindexed"):
            index.remove("orgs", "org_nm", "Never Indexed")

    def test_remove_bumps_version(self, db):
        index = InvertedIndex.build(db.catalog)
        before = index.version
        index.remove("orgs", "notes", "bank")
        assert index.version > before
