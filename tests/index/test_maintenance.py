"""Incremental index maintenance: write-through parity with full builds."""

import pytest

from repro.index.inverted import InvertedIndex
from repro.index.maintenance import InvertedIndexMaintainer, attach_maintainer
from repro.sqlengine.database import Database


def index_state(index: InvertedIndex) -> dict:
    """Everything observable about an index, for equality assertions."""
    tokens = sorted(
        token for token in ["zurich", "basel", "credit", "suisse", "alpha",
                            "beta", "gamma", "bond", "gold"]
    )
    return {
        "summary": index.size_summary(),
        "lookups": {token: index.lookup(token) for token in tokens},
        "phrases": {
            phrase: index.lookup_phrase(phrase)
            for phrase in ["credit suisse", "alpha beta", "gold bond"]
        },
    }


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE orgs (id INT, org_nm TEXT)")
    database.execute(
        "INSERT INTO orgs VALUES (1, 'Credit Suisse'), (2, 'Alpha Beta AG')"
    )
    return database


class TestWriteThrough:
    def test_parity_after_mixed_workload(self, db):
        """Maintained index == from-scratch build after INSERTs + DDL."""
        maintained = InvertedIndex.build(db.catalog)
        attach_maintainer(db.catalog, maintained)

        # mixed workload: inserts into an existing table, a new table
        # with inserts, another wave of inserts, and a drop
        db.execute("INSERT INTO orgs VALUES (3, 'Zurich Kantonalbank')")
        db.execute("CREATE TABLE notes (id INT, body TEXT, amount REAL)")
        db.execute(
            "INSERT INTO notes VALUES (1, 'gold bond', 5.0), "
            "(2, 'credit line Basel', 1.0)"
        )
        db.insert_rows("orgs", [(4, "Gamma Trading"), (5, None)])
        db.execute("CREATE TABLE scratch (id INT, label TEXT)")
        db.execute("INSERT INTO scratch VALUES (1, 'ephemeral zurich')")
        db.catalog.drop_table("scratch")

        rebuilt = InvertedIndex.build(db.catalog)
        assert index_state(maintained) == index_state(rebuilt)

    def test_null_and_numeric_values_skipped(self, db):
        maintained = InvertedIndex.build(db.catalog)
        attach_maintainer(db.catalog, maintained)
        db.execute("CREATE TABLE nums (id INT, amount REAL)")
        db.execute("INSERT INTO nums VALUES (1, 7.5)")
        db.execute("INSERT INTO orgs VALUES (9, NULL)")
        assert index_state(maintained) == index_state(
            InvertedIndex.build(db.catalog)
        )

    def test_counters_track_applied_deltas(self, db):
        maintainer = attach_maintainer(db.catalog, InvertedIndex.build(db.catalog))
        db.execute("CREATE TABLE t (id INT, name TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        db.catalog.drop_table("t")
        assert maintainer.applied_inserts == 2
        assert maintainer.applied_ddl == 2  # create + drop

    def test_counters_track_updates_and_deletes(self, db):
        maintainer = attach_maintainer(db.catalog, InvertedIndex.build(db.catalog))
        db.execute("UPDATE orgs SET org_nm = 'Renamed AG' WHERE id = 1")
        db.execute("DELETE FROM orgs WHERE id = 2")
        assert maintainer.applied_updates == 1
        assert maintainer.applied_deletes == 1


class TestDmlWriteThrough:
    """UPDATE/DELETE deltas keep the index equal to a full rebuild."""

    def test_update_unindexes_old_value_and_indexes_new(self, db):
        maintained = InvertedIndex.build(db.catalog)
        attach_maintainer(db.catalog, maintained)
        db.execute("UPDATE orgs SET org_nm = 'Zurich Trust' WHERE id = 1")
        assert not maintained.lookup("credit")  # only row 1 held 'Credit...'
        assert [p.value for p in maintained.lookup("zurich")] == [
            "Zurich Trust"
        ]
        assert index_state(maintained) == index_state(
            InvertedIndex.build(db.catalog)
        )

    def test_update_of_duplicated_value_keeps_other_rows(self, db):
        db.execute("INSERT INTO orgs VALUES (3, 'Credit Suisse')")
        maintained = InvertedIndex.build(db.catalog)
        attach_maintainer(db.catalog, maintained)
        db.execute("UPDATE orgs SET org_nm = 'Solo Bank' WHERE id = 1")
        postings = maintained.lookup("credit")
        assert [(p.value, p.occurrences) for p in postings] == [
            ("Credit Suisse", 1)
        ]
        assert index_state(maintained) == index_state(
            InvertedIndex.build(db.catalog)
        )

    def test_delete_removes_postings(self, db):
        maintained = InvertedIndex.build(db.catalog)
        attach_maintainer(db.catalog, maintained)
        db.execute("DELETE FROM orgs WHERE id = 1")
        assert not maintained.lookup("credit")
        assert maintained.lookup("alpha")  # row 2 survives
        assert index_state(maintained) == index_state(
            InvertedIndex.build(db.catalog)
        )

    def test_update_touching_null_values(self, db):
        db.execute("INSERT INTO orgs VALUES (4, NULL)")
        maintained = InvertedIndex.build(db.catalog)
        attach_maintainer(db.catalog, maintained)
        db.execute("UPDATE orgs SET org_nm = 'Was Null Gmbh' WHERE id = 4")
        db.execute("UPDATE orgs SET org_nm = NULL WHERE id = 1")
        assert index_state(maintained) == index_state(
            InvertedIndex.build(db.catalog)
        )

    def test_parity_after_mixed_dml_workload(self, db):
        maintained = InvertedIndex.build(db.catalog)
        attach_maintainer(db.catalog, maintained)
        db.execute("INSERT INTO orgs VALUES (3, 'Zurich Kantonalbank')")
        db.execute("UPDATE orgs SET org_nm = 'Beta Gamma AG' WHERE id = 2")
        db.execute("CREATE TABLE notes (id INT, body TEXT)")
        db.execute(
            "INSERT INTO notes VALUES (1, 'gold bond'), (2, 'basel note')"
        )
        db.execute("DELETE FROM orgs WHERE id = 1")
        db.execute("UPDATE notes SET body = 'gold suisse bond' WHERE id = 1")
        db.execute("DELETE FROM notes WHERE body LIKE '%basel%'")
        db.execute("INSERT INTO orgs VALUES (5, 'Credit Suisse')")
        db.execute("DELETE FROM orgs")
        db.execute("INSERT INTO orgs VALUES (6, 'Final Alpha Holdings')")
        assert index_state(maintained) == index_state(
            InvertedIndex.build(db.catalog)
        )

    def test_unregister_stops_maintenance(self, db):
        maintained = InvertedIndex.build(db.catalog)
        maintainer = attach_maintainer(db.catalog, maintained)
        db.catalog.unregister_observer(maintainer)
        db.execute("INSERT INTO orgs VALUES (7, 'Unseen Holdings')")
        assert not maintained.lookup("unseen")

    def test_version_bumps_on_maintenance(self, db):
        maintained = InvertedIndex.build(db.catalog)
        attach_maintainer(db.catalog, maintained)
        before = maintained.version
        db.execute("INSERT INTO orgs VALUES (8, 'Fresh Value')")
        assert maintained.version > before


class TestRemoveTable:
    def test_remove_table_drops_all_postings(self, db):
        index = InvertedIndex.build(db.catalog)
        index.remove_table("orgs")
        assert index.entry_count() == 0
        assert index.lookup("credit") == []
        assert index.size_summary()["distinct_tokens"] == 0

    def test_remove_missing_table_is_noop(self, db):
        index = InvertedIndex.build(db.catalog)
        before = index.size_summary()
        index.remove_table("missing")
        assert index.size_summary() == before


class TestWarehouseMaintenance:
    @pytest.fixture
    def fresh_warehouse(self):
        from repro.warehouse.minibank import build_minibank

        return build_minibank(seed=42, scale=0.1)

    def test_warehouse_registers_maintainer(self, fresh_warehouse):
        wh = fresh_warehouse
        assert wh.maintainer is not None
        assert wh.maintainer in wh.database.catalog.observers()

    def test_warehouse_index_stays_fresh(self, fresh_warehouse):
        """INSERT through the warehouse database is immediately findable."""
        wh = fresh_warehouse
        assert not wh.inverted.lookup("xyzzyfresh")
        wh.database.execute(
            "INSERT INTO currencies VALUES ('XZY', 'Xyzzyfresh Dollar')"
        )
        postings = wh.inverted.lookup("xyzzyfresh")
        assert [p.table for p in postings] == ["currencies"]
        # and equals a from-scratch build over the grown catalog
        assert index_state(wh.inverted) == index_state(
            InvertedIndex.build(wh.database.catalog)
        )
