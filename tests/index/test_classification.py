"""Tests for the classification index and term normalisation."""

import pytest

from repro.index.classification import (
    ClassificationIndex,
    EntrySource,
    TermMatch,
    depluralize,
    normalize_term,
)


class TestNormalize:
    def test_whitespace_and_case(self):
        assert normalize_term("  Private   CUSTOMERS ") == "private customers"

    def test_depluralize_simple(self):
        assert depluralize("customers") == "customer"

    def test_depluralize_ies(self):
        assert depluralize("parties") == "party"
        assert depluralize("currencies") == "currency"

    def test_depluralize_sses(self):
        assert depluralize("addresses") == "address"

    def test_depluralize_keeps_ss(self):
        assert depluralize("class") == "class"

    def test_depluralize_short_words(self):
        assert depluralize("is") == "is"

    def test_depluralize_multiword(self):
        assert depluralize("trade orders") == "trade order"


class TestClassificationIndex:
    @pytest.fixture
    def index(self):
        idx = ClassificationIndex()
        idx.add_term("customers", "soda://ontology/c/customers",
                     EntrySource.DOMAIN_ONTOLOGY)
        idx.add_term("financial instruments", "soda://conceptual/entity/FI",
                     EntrySource.CONCEPTUAL_SCHEMA)
        idx.add_term("financial instruments", "soda://logical/entity/FI",
                     EntrySource.LOGICAL_SCHEMA)
        return idx

    def test_lookup_exact(self, index):
        matches = index.lookup("customers")
        assert len(matches) == 1
        assert matches[0].source is EntrySource.DOMAIN_ONTOLOGY

    def test_lookup_singular_matches_plural(self, index):
        assert index.lookup("customer")

    def test_lookup_multiple_sources(self, index):
        assert len(index.lookup("financial instruments")) == 2

    def test_lookup_order_deterministic(self, index):
        sources = [m.source for m in index.lookup("financial instrument")]
        assert sources == [
            EntrySource.CONCEPTUAL_SCHEMA, EntrySource.LOGICAL_SCHEMA
        ]

    def test_contains(self, index):
        assert "customers" in index
        assert "nonexistent" not in index

    def test_duplicate_add_ignored(self, index):
        index.add_term("customers", "soda://ontology/c/customers",
                       EntrySource.DOMAIN_ONTOLOGY)
        assert len(index.lookup("customers")) == 1

    def test_empty_term_ignored(self, index):
        index.add_term("  ", "soda://x/y", EntrySource.DBPEDIA)
        assert index.term_count() == 2

    def test_max_term_words(self, index):
        assert index.max_term_words == 2
        index.add_term("very long business term", "soda://x/y",
                       EntrySource.DOMAIN_ONTOLOGY)
        assert index.max_term_words == 4

    def test_terms_listing(self, index):
        assert "customer" in index.terms()

    def test_term_match_sort_key(self):
        a = TermMatch("t", "soda://a", EntrySource.BASE_DATA)
        b = TermMatch("t", "soda://b", EntrySource.BASE_DATA)
        assert sorted([b, a], key=TermMatch.sort_key)[0] is a
