"""Index snapshots: versioning, fingerprint stamping, round-trips."""

import json

import pytest

from repro.errors import SnapshotError, WarehouseError
from repro.index.classification import ClassificationIndex, EntrySource
from repro.index.inverted import InvertedIndex
from repro.index.snapshot import (
    SNAPSHOT_VERSION,
    IndexSnapshot,
    load_snapshot,
    save_snapshot,
)
from repro.sqlengine.database import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE orgs (id INT, org_nm TEXT)")
    database.execute(
        "INSERT INTO orgs VALUES (1, 'Credit Suisse'), "
        "(2, 'Credit Suisse'), (3, 'Alpine Gold AG')"
    )
    return database


@pytest.fixture
def snapshot(db):
    classification = ClassificationIndex()
    classification.add_term("organizations", "soda://x", EntrySource.LOGICAL_SCHEMA)
    return IndexSnapshot(
        name="testbank",
        fingerprint=db.catalog.fingerprint(),
        inverted=InvertedIndex.build(db.catalog),
        classifications={(True, False): classification},
    )


class TestRoundTrip:
    def test_inverted_round_trip_exact(self, snapshot):
        restored = InvertedIndex.from_dict(snapshot.inverted.to_dict())
        assert restored.size_summary() == snapshot.inverted.size_summary()
        assert restored.lookup("credit") == snapshot.inverted.lookup("credit")
        assert restored.lookup_phrase("credit suisse") == (
            snapshot.inverted.lookup_phrase("credit suisse")
        )
        assert restored.entry_count() == snapshot.inverted.entry_count()

    def test_classification_round_trip_exact(self, snapshot):
        original = snapshot.classifications[(True, False)]
        restored = ClassificationIndex.from_dict(original.to_dict())
        assert restored.terms() == original.terms()
        assert restored.lookup("organization") == original.lookup("organization")
        assert restored.max_term_words == original.max_term_words

    def test_file_round_trip(self, snapshot, tmp_path):
        path = tmp_path / "snap.json"
        save_snapshot(snapshot, path)
        loaded = load_snapshot(path)
        assert loaded.name == "testbank"
        assert loaded.fingerprint == snapshot.fingerprint
        assert loaded.inverted.size_summary() == snapshot.inverted.size_summary()
        assert set(loaded.classifications) == {(True, False)}

    def test_saved_snapshot_is_gzip_compressed(self, snapshot, tmp_path):
        import gzip

        path = tmp_path / "snap.json.gz"
        save_snapshot(snapshot, path)
        raw = path.read_bytes()
        assert raw[:2] == b"\x1f\x8b"  # gzip magic
        payload = json.loads(gzip.decompress(raw))
        assert payload["snapshot_version"] == SNAPSHOT_VERSION
        # compression must actually pay for itself on real postings
        plain = tmp_path / "snap.json"
        save_snapshot(snapshot, plain, compress=False)
        assert len(raw) < plain.stat().st_size

    def test_loader_reads_legacy_plain_json(self, snapshot, tmp_path):
        path = tmp_path / "legacy.json"
        save_snapshot(snapshot, path, compress=False)
        assert not path.read_bytes().startswith(b"\x1f\x8b")
        loaded = load_snapshot(path)
        assert loaded.name == "testbank"
        assert loaded.inverted.size_summary() == snapshot.inverted.size_summary()

    def test_compressed_save_is_deterministic(self, snapshot, tmp_path):
        first, second = tmp_path / "a.json.gz", tmp_path / "b.json.gz"
        save_snapshot(snapshot, first)
        save_snapshot(snapshot, second)
        assert first.read_bytes() == second.read_bytes()

    def test_truncated_gzip_raises_warehouse_error(self, snapshot, tmp_path):
        path = tmp_path / "snap.json.gz"
        save_snapshot(snapshot, path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(SnapshotError, match="corrupt index snapshot") as e:
            load_snapshot(path)
        assert e.value.kind == "corrupt"
        assert e.value.path == str(path)

    def test_corrupted_gzip_raises_warehouse_error(self, snapshot, tmp_path):
        # valid magic, corrupted deflate stream: zlib.error must surface
        # as WarehouseError so warm-start falls back to a cold build
        path = tmp_path / "snap.json.gz"
        save_snapshot(snapshot, path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="corrupt index snapshot") as e:
            load_snapshot(path)
        assert e.value.kind == "corrupt"

    def test_restored_index_accepts_incremental_adds(self, snapshot):
        restored = InvertedIndex.from_dict(snapshot.inverted.to_dict())
        restored.add("orgs", "org_nm", "Brand New Credit")
        values = [p.value for p in restored.lookup("credit")]
        assert values == ["Brand New Credit", "Credit Suisse"]


class TestVerification:
    def test_verify_accepts_matching_stamp(self, snapshot, db):
        snapshot.verify("testbank", db.catalog.fingerprint())

    def test_verify_rejects_wrong_name(self, snapshot, db):
        with pytest.raises(WarehouseError, match="testbank"):
            snapshot.verify("otherbank", db.catalog.fingerprint())

    def test_verify_rejects_stale_fingerprint(self, snapshot, db):
        db.execute("INSERT INTO orgs VALUES (4, 'Late Arrival')")
        with pytest.raises(WarehouseError, match="stale"):
            snapshot.verify("testbank", db.catalog.fingerprint())

    def test_verify_rejects_post_delete_fingerprint(self, snapshot, db):
        db.execute("DELETE FROM orgs WHERE id = 2")
        with pytest.raises(WarehouseError, match="stale"):
            snapshot.verify("testbank", db.catalog.fingerprint())

    def test_verify_rejects_post_update_fingerprint(self, snapshot, db):
        """An in-place rewrite changes no row count but still stales."""
        db.execute("UPDATE orgs SET org_nm = 'Renamed AG' WHERE id = 3")
        with pytest.raises(WarehouseError, match="stale"):
            snapshot.verify("testbank", db.catalog.fingerprint())

    def test_legacy_two_field_fingerprint_still_warm_starts(
        self, snapshot, db, tmp_path
    ):
        """Pre-DML snapshots stamped (ddl, rows) migrate to (ddl, rows, 0)."""
        path = tmp_path / "legacy.json"
        payload = snapshot.to_dict()
        payload["fingerprint"] = payload["fingerprint"][:2]
        path.write_text(json.dumps(payload))
        loaded = load_snapshot(path)
        assert loaded.fingerprint == db.catalog.fingerprint()
        loaded.verify("testbank", db.catalog.fingerprint())  # no raise
        # but any mutation since the save still reads as stale
        db.execute("UPDATE orgs SET org_nm = 'Churned' WHERE id = 1")
        with pytest.raises(WarehouseError, match="stale"):
            loaded.verify("testbank", db.catalog.fingerprint())

    def test_verify_rejects_delete_reinsert_churn(self, snapshot, db):
        """Deleting and re-adding the same number of rows still stales."""
        db.execute("DELETE FROM orgs WHERE id = 1")
        db.execute("INSERT INTO orgs VALUES (1, 'Credit Suisse')")
        with pytest.raises(WarehouseError, match="stale"):
            snapshot.verify("testbank", db.catalog.fingerprint())

    def test_unsupported_version_rejected(self, snapshot, tmp_path):
        path = tmp_path / "snap.json"
        payload = snapshot.to_dict()
        payload["snapshot_version"] = SNAPSHOT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(WarehouseError, match="version"):
            load_snapshot(path)

    def test_malformed_payload_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"snapshot_version": SNAPSHOT_VERSION}))
        with pytest.raises(WarehouseError, match="malformed"):
            load_snapshot(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="missing") as e:
            load_snapshot(tmp_path / "missing.json")
        assert e.value.kind == "missing"

    def test_non_dict_payload_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("[]")
        with pytest.raises(WarehouseError, match="malformed"):
            load_snapshot(path)

    def test_non_dict_snapshot_falls_back_in_build(self, tmp_path):
        from repro.warehouse.minibank import build_minibank

        path = tmp_path / "snap.json"
        path.write_text("42")
        warehouse = build_minibank(seed=42, scale=0.1, snapshot=str(path))
        assert warehouse.inverted.entry_count() > 0

    def test_structurally_malformed_inner_payload_rejected(
        self, snapshot, tmp_path
    ):
        # 'postings' as a list instead of a dict must not escape as
        # AttributeError: Warehouse.build relies on WarehouseError to
        # fall back to a cold build
        path = tmp_path / "snap.json"
        payload = snapshot.to_dict()
        payload["inverted"]["postings"] = []
        path.write_text(json.dumps(payload))
        with pytest.raises(WarehouseError, match="malformed"):
            load_snapshot(path)


class TestContentDigest:
    def test_same_shape_different_data_rejected(self, tmp_path):
        """Same fingerprint, different seed: the digest must catch it."""
        from repro.index.snapshot import catalog_digest
        from repro.warehouse.minibank import build_minibank

        donor = build_minibank(seed=42, scale=0.2)
        other = build_minibank(seed=5, scale=0.2)
        assert donor.database.catalog.fingerprint() == (
            other.database.catalog.fingerprint()
        )
        assert catalog_digest(donor.database.catalog) != (
            catalog_digest(other.database.catalog)
        )
        path = tmp_path / "snap.json"
        donor.save_index_snapshot(path)
        # strict load refuses
        with pytest.raises(WarehouseError, match="content digest"):
            other.load_index_snapshot(path)
        # soft build falls back to a cold build of ITS OWN data
        from repro.index.inverted import InvertedIndex

        rebuilt = build_minibank(seed=5, scale=0.2, snapshot=str(path))
        assert rebuilt.inverted.size_summary() == (
            InvertedIndex.build(other.database.catalog).size_summary()
        )

    def test_matching_data_accepted(self, tmp_path):
        from repro.warehouse.minibank import build_minibank

        donor = build_minibank(seed=42, scale=0.2)
        path = tmp_path / "snap.json"
        donor.save_index_snapshot(path)
        twin = build_minibank(seed=42, scale=0.2)
        snapshot = twin.load_index_snapshot(path)
        assert snapshot.content_digest
        assert twin.inverted is snapshot.inverted


class TestStructuredErrors:
    """SnapshotError carries the path and a failure kind (no string
    matching needed to know *why* a warm start failed)."""

    def test_version_kind(self, snapshot, tmp_path):
        path = tmp_path / "snap.json"
        payload = snapshot.to_dict()
        payload["snapshot_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError) as e:
            load_snapshot(path)
        assert e.value.kind == "version"
        assert e.value.path == str(path)

    def test_malformed_kind_carries_path(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("{not json")
        with pytest.raises(SnapshotError) as e:
            load_snapshot(path)
        assert e.value.kind == "malformed"
        assert e.value.path == str(path)

    def test_snapshot_error_is_a_warehouse_error(self):
        # Warehouse.build's fallback catches WarehouseError; the
        # structured subclass must stay inside that net
        assert issubclass(SnapshotError, WarehouseError)

    def test_build_fallback_logs_the_kind(self, tmp_path, caplog):
        import logging

        from repro.warehouse.minibank import build_minibank

        path = tmp_path / "snap.json.gz"
        path.write_bytes(b"\x1f\x8b not actually gzip")
        with caplog.at_level(
            logging.WARNING, logger="repro.warehouse.warehouse"
        ):
            warehouse = build_minibank(
                seed=42, scale=0.1, snapshot=str(path)
            )
        assert warehouse.inverted.entry_count() > 0  # cold build ran
        records = [
            r for r in caplog.records
            if r.name == "repro.warehouse.warehouse"
        ]
        assert len(records) == 1
        message = records[0].getMessage()
        assert "corrupt" in message
        assert "falling back to cold index build" in message

    def test_build_fallback_logs_stale_for_verify_failures(
        self, tmp_path, caplog
    ):
        import logging

        from repro.warehouse.minibank import build_minibank

        path = tmp_path / "snap.json.gz"
        # a snapshot from a *different* warehouse shape: verify() fails
        # with a plain WarehouseError, logged under the "stale" kind
        other = build_minibank(seed=7, scale=0.05)
        other.save_index_snapshot(path)
        with caplog.at_level(
            logging.WARNING, logger="repro.warehouse.warehouse"
        ):
            warehouse = build_minibank(seed=42, scale=0.1, snapshot=str(path))
        assert warehouse.inverted.entry_count() > 0
        messages = [
            r.getMessage() for r in caplog.records
            if r.name == "repro.warehouse.warehouse"
        ]
        assert len(messages) == 1
        assert "stale" in messages[0]
