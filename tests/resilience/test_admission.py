"""Admission control: bounded queue, queue-wait deadline, shedding."""

import asyncio

import pytest

from repro.resilience.admission import AdmissionController, LoadShedError


def run(coro):
    return asyncio.run(coro)


class TestFastPath:
    def test_admits_up_to_max_concurrent(self):
        async def scenario():
            gate = AdmissionController(max_concurrent=2, queue_depth=4)
            await gate.acquire()
            await gate.acquire()
            snap = gate.snapshot()
            gate.release()
            gate.release()
            return snap

        snap = run(scenario())
        assert snap["active"] == 2
        assert snap["admitted"] == 2
        assert snap["shed"] == 0

    def test_release_frees_the_slot(self):
        async def scenario():
            gate = AdmissionController(max_concurrent=1, queue_depth=0)
            await gate.acquire()
            gate.release()
            await gate.acquire()  # would shed if the slot leaked
            gate.release()
            return gate.snapshot()

        assert run(scenario())["admitted"] == 2


class TestShedding:
    def test_queue_full_sheds_immediately(self):
        async def scenario():
            gate = AdmissionController(
                max_concurrent=1, queue_depth=1, queue_timeout_ms=5000
            )
            await gate.acquire()  # take the only slot
            waiter = asyncio.ensure_future(gate.acquire())  # fills the queue
            await asyncio.sleep(0)  # let the waiter enqueue
            with pytest.raises(LoadShedError) as info:
                await gate.acquire()  # queue at depth: shed now, no wait
            gate.release()  # lets the waiter through
            await waiter
            gate.release()
            return info.value, gate.snapshot()

        exc, snap = run(scenario())
        assert exc.reason == "queue_full"
        assert exc.retry_after_s > 0
        assert snap["shed"] == 1
        assert snap["admitted"] == 2

    def test_queue_timeout_sheds_the_waiter(self):
        async def scenario():
            gate = AdmissionController(
                max_concurrent=1, queue_depth=4, queue_timeout_ms=20
            )
            await gate.acquire()  # never released during the wait
            with pytest.raises(LoadShedError) as info:
                await gate.acquire()
            gate.release()
            return info.value, gate.snapshot()

        exc, snap = run(scenario())
        assert exc.reason == "queue_timeout"
        assert snap["shed"] == 1
        assert snap["waiting"] == 0  # the counter unwound

    def test_timed_out_waiter_does_not_leak_a_slot(self):
        async def scenario():
            gate = AdmissionController(
                max_concurrent=1, queue_depth=4, queue_timeout_ms=20
            )
            await gate.acquire()
            with pytest.raises(LoadShedError):
                await gate.acquire()
            gate.release()
            # the slot freed above must be acquirable again
            await asyncio.wait_for(gate.acquire(), timeout=5)
            gate.release()

        run(scenario())


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_concurrent": 0},
            {"queue_depth": -1},
            {"queue_timeout_ms": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        async def scenario():
            AdmissionController(**kwargs)

        with pytest.raises(ValueError):
            run(scenario())
