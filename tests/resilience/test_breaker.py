"""Circuit breaker: trip, cooldown, half-open probes — no sleeping."""

import pytest

from repro.resilience.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, cooldown_s=5.0, clock=clock)


class TestTripping:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self, breaker):
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"  # under threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # never 3 in a row

    def test_retry_after_counts_down(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after_s() == pytest.approx(5.0)
        clock.advance(2.0)
        assert breaker.retry_after_s() == pytest.approx(3.0)


class TestHalfOpen:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()

    def test_cooldown_opens_the_probe_window(self, breaker, clock):
        self._trip(breaker)
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe

    def test_one_probe_at_a_time(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()
        assert not breaker.allow()  # second request fast-fails

    def test_probe_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.allow()  # fully open for traffic

    def test_probe_failure_reopens_for_another_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # one failure suffices in half-open
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # probing again

    def test_abandoned_probe_releases_the_slot(self, breaker, clock):
        self._trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()  # probe claimed...
        breaker.record_abandoned()  # ...but the work never ran
        assert breaker.state == "half_open"  # no verdict either way
        assert breaker.allow()  # the slot is free for the next probe
        breaker.record_success()
        assert breaker.state == "closed"

    def test_abandoned_does_not_touch_the_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_abandoned()  # harmless while closed
        assert breaker.state == "closed"
        breaker.record_failure()  # still the third consecutive failure
        assert breaker.state == "open"


class TestSnapshot:
    def test_snapshot_shape(self, breaker, clock):
        snap = breaker.snapshot()
        assert snap == {
            "state": "closed",
            "consecutive_failures": 0,
            "failure_threshold": 3,
            "cooldown_s": 5.0,
            "retry_after_s": 0.0,
        }
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["consecutive_failures"] == 3
        assert snap["retry_after_s"] == pytest.approx(3.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0)
