"""Deadlines: fake-clock expiry, structured errors, thread-local scopes."""

import threading

import pytest

from repro.errors import ReproError
from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)


def ticking(*seconds):
    """A clock that returns the given instants, then sticks at the last."""
    times = list(seconds)

    def clock():
        return times.pop(0) if len(times) > 1 else times[0]

    return clock


class TestDeadline:
    def test_expiry_follows_the_injected_clock(self):
        deadline = Deadline(100, clock=ticking(0.0, 0.05, 0.2))
        assert not deadline.expired  # 50ms in
        assert deadline.expired  # 200ms in

    def test_remaining_and_elapsed(self):
        deadline = Deadline(1000, clock=ticking(0.0, 0.25, 0.25, 2.0))
        assert deadline.elapsed_ms() == pytest.approx(250.0)
        assert deadline.remaining_ms() == pytest.approx(750.0)
        assert deadline.remaining_ms() == 0.0  # never negative

    def test_check_raises_structured_error(self):
        deadline = Deadline(100, clock=ticking(0.0, 0.25))
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("scan")
        exc = info.value
        assert exc.timeout_ms == 100.0
        assert exc.elapsed_ms == pytest.approx(250.0)
        assert exc.where == "scan"
        assert "100ms deadline" in str(exc)
        assert "(at scan)" in str(exc)

    def test_check_is_silent_within_budget(self):
        deadline = Deadline(100, clock=ticking(0.0, 0.05))
        deadline.check("scan")  # no raise

    def test_is_a_repro_error(self):
        assert issubclass(DeadlineExceeded, ReproError)

    @pytest.mark.parametrize("bad", [0, -1, "100", None])
    def test_rejects_non_positive_timeouts(self, bad):
        with pytest.raises(ValueError):
            Deadline(bad)


class TestDeadlineScope:
    def test_scope_installs_and_restores(self):
        assert current_deadline() is None
        deadline = Deadline(1000)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_none_scope_is_a_true_noop(self):
        outer = Deadline(1000)
        with deadline_scope(outer):
            with deadline_scope(None):
                # the outer (request-level) deadline stays active
                assert current_deadline() is outer
            assert current_deadline() is outer

    def test_scopes_nest_and_unwind(self):
        outer, inner = Deadline(1000), Deadline(500)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_scope_restores_on_exception(self):
        deadline = Deadline(1000)
        with pytest.raises(RuntimeError):
            with deadline_scope(deadline):
                raise RuntimeError("boom")
        assert current_deadline() is None

    def test_active_deadline_is_per_thread(self):
        deadline = Deadline(1000)
        seen = {}

        def worker():
            seen["other_thread"] = current_deadline()

        with deadline_scope(deadline):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other_thread"] is None
