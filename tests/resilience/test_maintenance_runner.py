"""Background maintenance: supervision, backoff, clean shutdown."""

import threading

import pytest

from repro.resilience.maintenance import MaintenanceRunner, RetryPolicy


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_s=1.0, max_s=30.0, multiplier=2.0, jitter=0.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4, 5, 6)] == [
            1.0, 2.0, 4.0, 8.0, 16.0, 30.0,
        ]

    def test_jitter_is_seeded_and_bounded(self):
        first = RetryPolicy(base_s=10.0, jitter=0.1, seed=7)
        second = RetryPolicy(base_s=10.0, jitter=0.1, seed=7)
        delays = [first.delay(1) for _ in range(20)]
        assert delays == [second.delay(1) for _ in range(20)]  # replayable
        assert all(9.0 <= d <= 11.0 for d in delays)
        assert len(set(delays)) > 1  # actually jittered

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_s=2.0, max_s=1.0)


class TestRunnerSupervision:
    def test_success_updates_stats_and_schedule(self):
        clock = FakeClock()
        runner = MaintenanceRunner(clock=clock)
        runs = []
        runner.add_task("refresh", lambda: runs.append(1), interval_s=60)
        assert runner.run_task_now("refresh")
        stats = runner.stats()["refresh"]
        assert stats["runs"] == 1
        assert stats["failures"] == 0
        assert stats["last_error"] is None
        assert stats["next_run_in_s"] == pytest.approx(60.0)
        assert runs == [1]

    def test_failure_records_error_and_backs_off(self):
        clock = FakeClock()
        runner = MaintenanceRunner(clock=clock)

        def broken():
            raise OSError("disk full")

        runner.add_task(
            "snapshot", broken, interval_s=60,
            policy=RetryPolicy(base_s=2.0, jitter=0.0),
        )
        assert not runner.run_task_now("snapshot")
        stats = runner.stats()["snapshot"]
        assert stats["failures"] == 1
        assert stats["last_error"] == "OSError: disk full"
        assert stats["backoff_s"] == 2.0
        assert stats["next_run_in_s"] == pytest.approx(2.0)

    def test_backoff_grows_then_success_resets(self):
        clock = FakeClock()
        runner = MaintenanceRunner(clock=clock)
        outcomes = [OSError("a"), OSError("b"), OSError("c"), None]

        def flaky():
            outcome = outcomes.pop(0)
            if outcome is not None:
                raise outcome

        runner.add_task(
            "flaky", flaky, interval_s=60,
            policy=RetryPolicy(base_s=1.0, multiplier=2.0, jitter=0.0),
        )
        backoffs = []
        for _ in range(3):
            runner.run_task_now("flaky")
            backoffs.append(runner.stats()["flaky"]["backoff_s"])
        assert backoffs == [1.0, 2.0, 4.0]
        assert runner.run_task_now("flaky")  # recovery
        stats = runner.stats()["flaky"]
        assert stats["consecutive_failures"] == 0
        assert stats["backoff_s"] == 0.0
        assert stats["next_run_in_s"] == pytest.approx(60.0)

    def test_one_failing_task_does_not_starve_others(self):
        clock = FakeClock()
        runner = MaintenanceRunner(clock=clock)
        runs = []

        def broken():
            raise RuntimeError("boom")

        runner.add_task("broken", broken, interval_s=60)
        runner.add_task("healthy", lambda: runs.append(1), interval_s=60)
        runner.run_task_now("broken")
        assert runner.run_task_now("healthy")
        assert runs == [1]

    def test_duplicate_task_names_rejected(self):
        runner = MaintenanceRunner()
        runner.add_task("x", lambda: None, interval_s=1)
        with pytest.raises(ValueError):
            runner.add_task("x", lambda: None, interval_s=1)
        with pytest.raises(ValueError):
            runner.add_task("y", lambda: None, interval_s=0)


class TestRunnerLifecycle:
    def test_worker_runs_due_tasks(self):
        # real clock, tiny interval: the worker thread must pick it up
        ran = threading.Event()
        runner = MaintenanceRunner()
        runner.add_task("tick", ran.set, interval_s=0.01)
        runner.start()
        try:
            assert ran.wait(timeout=10)
        finally:
            assert runner.stop(timeout=10)
        assert not runner.running

    def test_start_is_idempotent(self):
        runner = MaintenanceRunner()
        runner.start()
        first = runner._thread
        runner.start()
        assert runner._thread is first
        assert runner.stop(timeout=10)

    def test_stop_without_start_is_a_noop(self):
        runner = MaintenanceRunner()
        assert runner.stop() is True
        assert runner.stop() is True  # and idempotent

    def test_stop_waits_for_inflight_task(self):
        started = threading.Event()
        release = threading.Event()
        finished = threading.Event()

        def slow():
            started.set()
            release.wait(timeout=10)
            finished.set()

        runner = MaintenanceRunner()
        runner.add_task("slow", slow, interval_s=0.01)
        runner.start()
        assert started.wait(timeout=10)
        stopper = threading.Thread(target=runner.stop)
        stopper.start()
        release.set()
        stopper.join(timeout=10)
        assert finished.is_set()  # the in-flight run completed
        assert not runner.running
