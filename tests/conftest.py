"""Shared fixtures: one finbank warehouse per test session.

Building the warehouse (tables, data, graph, inverted index) takes well
under a second, but SODA instances and experiment outcomes are shared
across modules to keep the suite fast.
"""

from __future__ import annotations

import pytest

from repro.core.soda import Soda, SodaConfig
from repro.warehouse.minibank import build_minibank


@pytest.fixture(scope="session")
def warehouse():
    """The finbank warehouse at evaluation scale."""
    return build_minibank(seed=42, scale=1.0)


@pytest.fixture(scope="session")
def small_warehouse():
    """A reduced finbank for data-graph-heavy tests (BANKS etc.)."""
    return build_minibank(seed=42, scale=0.25)


@pytest.fixture(scope="session")
def soda(warehouse):
    return Soda(warehouse, SodaConfig())


@pytest.fixture(scope="session")
def experiment_outcomes(warehouse):
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(warehouse=warehouse)
    return runner.run_all()
