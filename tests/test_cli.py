"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSearch:
    def test_search_prints_statements(self):
        code, output = run_cli(
            "--scale", "0.25", "search", "Sara Guttinger", "--no-execute"
        )
        assert code == 0
        assert "complexity:" in output
        assert "SELECT" in output

    def test_search_with_snippets(self):
        code, output = run_cli("--scale", "0.25", "search", "Zurich")
        assert code == 0
        assert "snippet tuple" in output

    def test_search_limit(self):
        __, output = run_cli(
            "--scale", "0.25", "search", "Sara", "--no-execute", "--limit", "1"
        )
        assert output.count("score ") == 1

    def test_search_no_dbpedia(self):
        __, output = run_cli(
            "--scale", "0.25", "search", "client", "--no-execute",
            "--no-dbpedia",
        )
        assert "no executable statements" in output

    def test_unknown_keywords(self):
        code, output = run_cli(
            "--scale", "0.25", "search", "zzzz qqqq", "--no-execute"
        )
        assert code == 0
        assert "no executable statements" in output

    def test_search_json_emits_the_wire_shape(self):
        import json

        code, output = run_cli(
            "--scale", "0.25", "search", "Zurich", "--json", "--limit", "2"
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["query"]["text"] == "Zurich"
        assert len(payload["statements"]) <= 2
        assert payload["statements"][0]["sql"].startswith("SELECT")


class TestOtherCommands:
    def test_stats(self):
        code, output = run_cli("--scale", "0.25", "stats")
        assert code == 0
        assert "physical_tables" in output
        assert "472" in output  # Table 1 paper scale

    def test_experiments(self):
        code, output = run_cli("--scale", "0.5", "experiments")
        assert code == 0
        assert "Table 3" in output
        assert "paperP" in output

    def test_compare(self):
        code, output = run_cli("--scale", "0.25", "compare")
        assert code == 0
        assert "Keymantic" in output
        assert "SODA" in output

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            run_cli("--scale", "0.25")

    def test_browse_table(self):
        code, output = run_cli("--scale", "0.25", "browse", "individuals")
        assert code == 0
        assert "inherits from: parties" in output

    def test_browse_term(self):
        code, output = run_cli("--scale", "0.25", "browse", "customers")
        assert code == 0
        assert "reaches tables" in output

    def test_page(self):
        code, output = run_cli("--scale", "0.25", "page", "Credit Suisse")
        assert code == 0
        assert "results for: Credit Suisse" in output
        assert "page 1/" in output


class TestExplain:
    def test_explain_renders_plan_tree(self):
        code, output = run_cli(
            "--scale", "0.25", "explain",
            "SELECT count(*), o.status_cd FROM orders_td o, parties p "
            "WHERE o.party_id = p.id AND p.party_type_cd = 'I' "
            "GROUP BY o.status_cd ORDER BY count(*) DESC LIMIT 3",
        )
        assert code == 0
        assert "hash join" in output
        assert "aggregate group by o.status_cd" in output
        assert "top-n 3 by count(*) DESC" in output

    def test_explain_is_deterministic(self):
        sql = "SELECT id FROM parties WHERE party_type_cd = 'I'"
        __, first = run_cli("--scale", "0.25", "explain", sql)
        __, second = run_cli("--scale", "0.25", "explain", sql)
        assert first == second

    def test_explain_rejects_non_select(self):
        code, output = run_cli(
            "--scale", "0.25", "explain", "INSERT INTO parties VALUES (1)"
        )
        assert code == 1
        assert "error:" in output

    def test_sql_select_prints_rows(self):
        code, output = run_cli(
            "--scale", "0.25", "sql",
            "SELECT city, count(*) FROM addresses GROUP BY city "
            "ORDER BY count(*) DESC, city LIMIT 2",
        )
        assert code == 0
        assert "city | count(*)" in output
        assert "row(s)" in output

    def test_sql_update_reports_rowcount(self):
        code, output = run_cli(
            "--scale", "0.25", "sql",
            "UPDATE addresses SET country = 'CH' WHERE country = 'CH'",
        )
        assert code == 0
        assert "row(s) affected" in output

    def test_sql_delete_no_match_reports_zero(self):
        code, output = run_cli(
            "--scale", "0.25", "sql",
            "DELETE FROM addresses WHERE city = 'Nowhereville'",
        )
        assert code == 0
        assert "0 row(s) affected" in output

    def test_sql_error_exits_nonzero(self):
        code, output = run_cli(
            "--scale", "0.25", "sql", "UPDATE missing SET x = 1"
        )
        assert code == 1
        assert "error:" in output

    def test_sql_respects_display_limit(self):
        code, output = run_cli(
            "--scale", "0.25", "sql", "SELECT id FROM parties", "--limit", "3"
        )
        assert code == 0
        assert "(3 shown)" in output

    def test_explain_annotates_batch_mode_by_default(self):
        code, output = run_cli(
            "--scale", "0.25", "explain", "SELECT id FROM parties"
        )
        assert code == 0
        assert "[batch]" in output
        assert "[row]" not in output

    def test_execution_mode_flag_switches_engine(self):
        sql = "SELECT id FROM parties WHERE party_type_cd = 'I'"
        code, output = run_cli(
            "--scale", "0.25", "--execution-mode", "row", "explain", sql
        )
        assert code == 0
        assert "[row]" in output
        assert "[batch]" not in output

    def test_search_with_explain_flag(self):
        code, output = run_cli(
            "--scale", "0.25", "search", "Sara Guttinger", "--explain"
        )
        assert code == 0
        assert "    | " in output
        assert "scan" in output


class TestIndexCommand:
    def test_index_build_reports_timing_and_sizes(self):
        code, output = run_cli("--scale", "0.25", "index", "build")
        assert code == 0
        assert "cold index build:" in output
        assert "distinct_tokens" in output

    def test_index_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "snap.json")
        code, output = run_cli(
            "--scale", "0.25", "index", "save", "--path", path
        )
        assert code == 0
        assert "saved index snapshot" in output
        code, output = run_cli(
            "--scale", "0.25", "index", "load", "--path", path
        )
        assert code == 0
        assert "loaded snapshot" in output
        assert "classification variant" in output

    def test_index_load_falls_back_to_legacy_default_path(
        self, tmp_path, monkeypatch
    ):
        # a pre-compression snapshot saved under the old default name
        # must still load when --path is omitted
        monkeypatch.chdir(tmp_path)
        code, __ = run_cli(
            "--scale", "0.25", "index", "save",
            "--path", "soda_index_snapshot.json",
        )
        assert code == 0
        code, output = run_cli("--scale", "0.25", "index", "load")
        assert code == 0
        assert "loaded snapshot soda_index_snapshot.json " in output

    def test_index_load_rejects_mismatched_snapshot(self, tmp_path):
        path = str(tmp_path / "snap.json")
        run_cli("--scale", "0.25", "index", "save", "--path", path)
        code, output = run_cli(
            "--scale", "0.1", "index", "load", "--path", path
        )
        assert code == 1
        assert "error:" in output

    def test_index_stats(self):
        code, output = run_cli("--scale", "0.25", "index", "stats")
        assert code == 0
        assert "classification_terms" in output
        assert "maintained_inserts" in output

    def test_snapshot_warm_start_search(self, tmp_path):
        path = str(tmp_path / "snap.json")
        run_cli("--scale", "0.25", "index", "save", "--path", path)
        cold_code, cold = run_cli(
            "--scale", "0.25", "search", "Zurich", "--no-execute"
        )
        warm_code, warm = run_cli(
            "--scale", "0.25", "--snapshot", path,
            "search", "Zurich", "--no-execute",
        )
        assert (cold_code, warm_code) == (0, 0)
        assert warm == cold


class TestSearchBatch:
    def test_batch_file(self, tmp_path):
        batch = tmp_path / "queries.txt"
        batch.write_text("Zurich\nSara Guttinger\n\nZurich\n")
        code, output = run_cli(
            "--scale", "0.25", "search", "--batch", str(batch), "--no-execute"
        )
        assert code == 0
        assert "3 queries (2 unique)" in output
        assert output.count("'Zurich'") == 2

    def test_batch_missing_file(self):
        code, output = run_cli(
            "--scale", "0.25", "search", "--batch", "/nonexistent/q.txt"
        )
        assert code == 1
        assert "cannot read batch file" in output

    def test_batch_empty_file(self, tmp_path):
        batch = tmp_path / "empty.txt"
        batch.write_text("\n\n")
        code, output = run_cli(
            "--scale", "0.25", "search", "--batch", str(batch)
        )
        assert code == 1
        assert "no queries" in output

    def test_no_query_and_no_batch(self):
        code, output = run_cli("--scale", "0.25", "search")
        assert code == 2
        assert "provide a query or --batch" in output

    def test_experiments_batch_flag(self):
        code, output = run_cli("--scale", "0.25", "experiments", "--batch")
        assert code == 0
        assert "Table 4" in output

    def test_batch_with_explain(self, tmp_path):
        batch = tmp_path / "queries.txt"
        batch.write_text("Zurich\n")
        code, output = run_cli(
            "--scale", "0.25", "search", "--batch", str(batch), "--explain"
        )
        assert code == 0
        assert "    | " in output and "scan" in output

    def test_query_and_batch_are_mutually_exclusive(self, tmp_path):
        batch = tmp_path / "queries.txt"
        batch.write_text("Zurich\n")
        code, output = run_cli(
            "--scale", "0.25", "search", "Zurich", "--batch", str(batch)
        )
        assert code == 2
        assert "not both" in output

    def test_experiments_honors_snapshot(self, tmp_path):
        path = str(tmp_path / "snap.json")
        run_cli("--scale", "0.25", "index", "save", "--path", path)
        code, output = run_cli(
            "--scale", "0.25", "--snapshot", path, "experiments"
        )
        assert code == 0
        assert "Table 4" in output


class TestObservabilityCli:
    def test_explain_analyze_annotates_actuals(self):
        code, output = run_cli(
            "--scale", "0.25", "explain", "--analyze",
            "SELECT currency_cd, count(*) FROM money_transactions "
            "GROUP BY currency_cd ORDER BY count(*) DESC LIMIT 3",
        )
        assert code == 0
        assert "(actual rows=" in output
        assert "self=" in output
        assert "[~" in output  # estimates stay alongside the actuals

    def test_explain_analyze_row_mode(self):
        code, output = run_cli(
            "--scale", "0.25", "--execution-mode", "row",
            "explain", "--analyze",
            "SELECT count(*) FROM money_transactions",
        )
        assert code == 0
        assert "(actual rows=" in output
        assert "batches=" not in output

    def test_search_analyze_shows_actuals_under_statements(self):
        code, output = run_cli(
            "--scale", "0.25", "search", "Zurich", "--analyze"
        )
        assert code == 0
        assert "    | " in output
        assert "(actual rows=" in output

    def test_trace_renders_span_tree(self):
        code, output = run_cli("--scale", "0.25", "trace", "Zurich")
        assert code == 0
        assert "search [query='Zurich']" in output
        assert "step:lookup" in output
        assert "step:execute" in output
        assert "ms" in output

    def test_trace_json_is_parseable(self):
        import json

        code, output = run_cli(
            "--scale", "0.25", "trace", "--json", "--no-execute", "Zurich"
        )
        assert code == 0
        parsed = json.loads(output)
        assert parsed[0]["name"] == "search"
        names = [child["name"] for child in parsed[0]["children"]]
        assert "step:lookup" in names

    def test_stats_metrics_table(self):
        code, output = run_cli("--scale", "0.25", "stats", "--metrics")
        assert code == 0
        assert "plan_cache.capacity" in output
        assert "engine.rows_scanned" in output
        assert "finbank warehouse:" not in output

    def test_stats_metrics_json(self):
        import json

        code, output = run_cli(
            "--scale", "0.25", "stats", "--metrics",
            "--metrics-format", "json",
        )
        assert code == 0
        parsed = json.loads(output)
        assert parsed["plan_cache.capacity"]["kind"] == "gauge"

    def test_stats_metrics_prometheus(self):
        code, output = run_cli(
            "--scale", "0.25", "stats", "--metrics",
            "--metrics-format", "prometheus",
        )
        assert code == 0
        assert "# TYPE repro_plan_cache_hits counter" in output
        assert "repro_plan_cache_capacity" in output


class TestDurableCli:
    def test_sql_data_dir_persists_across_invocations(self, tmp_path):
        data_dir = str(tmp_path / "db")
        code, output = run_cli(
            "sql", "--data-dir", data_dir,
            "CREATE TABLE t (id INT, label TEXT)",
            "INSERT INTO t VALUES (1, 'alpha'), (2, 'beta')",
        )
        assert code == 0
        code, output = run_cli(
            "sql", "--data-dir", data_dir,
            "SELECT label FROM t ORDER BY id",
        )
        assert code == 0
        assert "alpha" in output and "beta" in output

    def test_sql_data_dir_transactions(self, tmp_path):
        data_dir = str(tmp_path / "db")
        code, output = run_cli(
            "sql", "--data-dir", data_dir,
            "CREATE TABLE t (id INT)",
            "INSERT INTO t VALUES (1)",
            "BEGIN",
            "INSERT INTO t VALUES (2)",
            "ROLLBACK",
            "SELECT count(*) FROM t",
        )
        assert code == 0
        assert "1" in output
        code, output = run_cli("recover", data_dir)
        assert code == 0
        assert "1 row(s)" in output
        assert "2 WAL record(s) replayed" in output

    def test_recover_reports_summary(self, tmp_path):
        data_dir = str(tmp_path / "db")
        run_cli(
            "sql", "--data-dir", data_dir,
            "CREATE TABLE t (id INT)",
            "INSERT INTO t VALUES (1), (2)",
        )
        code, output = run_cli("recover", data_dir, "--checkpoint")
        assert code == 0
        assert "generation" in output
        assert "replayed" in output
        # a second recover starts from the checkpoint written above
        code, output = run_cli("recover", data_dir)
        assert code == 0
        assert "checkpoint loaded" in output
        assert "0 WAL record(s) replayed" in output

    def test_recover_corrupt_wal_exits_nonzero(self, tmp_path):
        import os

        data_dir = str(tmp_path / "db")
        run_cli(
            "sql", "--data-dir", data_dir,
            "CREATE TABLE t (id INT)",
            "INSERT INTO t VALUES (1), (2)",
        )
        wal = os.path.join(data_dir, "wal.0.log")
        with open(wal, "r+b") as handle:
            handle.seek(12)
            byte = handle.read(1)
            handle.seek(12)
            handle.write(bytes([byte[0] ^ 0xFF]))
        code, output = run_cli("recover", data_dir)
        assert code == 1
        assert "error:" in output


class TestRecoverFailurePaths:
    """`repro recover` on damaged directories: structured, no traceback."""

    def _seed(self, tmp_path, *, checkpoint=False):
        data_dir = str(tmp_path / "db")
        code, __ = run_cli(
            "sql", "--data-dir", data_dir,
            "CREATE TABLE t (id INT)",
            "INSERT INTO t VALUES (1), (2), (3)",
        )
        assert code == 0
        if checkpoint:
            code, __ = run_cli("recover", data_dir, "--checkpoint")
            assert code == 0
        return data_dir

    def test_midlog_wal_corruption_prints_wal_kind(self, tmp_path):
        import os

        data_dir = self._seed(tmp_path)
        wal = os.path.join(data_dir, "wal.0.log")
        with open(wal, "r+b") as handle:
            # flip a byte inside the *first* record: damage followed by
            # valid records is mid-log corruption and must be a hard
            # RecoveryError (only a torn final record may be truncated)
            handle.seek(12)
            byte = handle.read(1)
            handle.seek(12)
            handle.write(bytes([byte[0] ^ 0xFF]))
        code, output = run_cli("recover", data_dir)
        assert code == 1
        assert "error: recovery failed" in output
        assert "[wal]" in output  # the machine-readable failure kind
        assert "wal.0.log" in output  # ...and the offending file
        assert "Traceback" not in output

    def test_corrupt_checkpoint_prints_checkpoint_kind(self, tmp_path):
        import os

        data_dir = self._seed(tmp_path, checkpoint=True)
        checkpoint = os.path.join(data_dir, "checkpoint.json.gz")
        assert os.path.exists(checkpoint)
        with open(checkpoint, "wb") as handle:
            handle.write(b"this is not a gzip checkpoint")
        code, output = run_cli("recover", data_dir)
        assert code == 1
        assert "error: recovery failed" in output
        assert "[checkpoint]" in output
        assert "checkpoint.json.gz" in output
        assert "Traceback" not in output

    def test_truncated_checkpoint_prints_checkpoint_kind(self, tmp_path):
        import os

        data_dir = self._seed(tmp_path, checkpoint=True)
        checkpoint = os.path.join(data_dir, "checkpoint.json.gz")
        size = os.path.getsize(checkpoint)
        with open(checkpoint, "r+b") as handle:
            handle.truncate(size // 2)
        code, output = run_cli("recover", data_dir)
        assert code == 1
        assert "[checkpoint]" in output
        assert "Traceback" not in output
