"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSearch:
    def test_search_prints_statements(self):
        code, output = run_cli(
            "--scale", "0.25", "search", "Sara Guttinger", "--no-execute"
        )
        assert code == 0
        assert "complexity:" in output
        assert "SELECT" in output

    def test_search_with_snippets(self):
        code, output = run_cli("--scale", "0.25", "search", "Zurich")
        assert code == 0
        assert "snippet tuple" in output

    def test_search_limit(self):
        __, output = run_cli(
            "--scale", "0.25", "search", "Sara", "--no-execute", "--limit", "1"
        )
        assert output.count("score ") == 1

    def test_search_no_dbpedia(self):
        __, output = run_cli(
            "--scale", "0.25", "search", "client", "--no-execute",
            "--no-dbpedia",
        )
        assert "no executable statements" in output

    def test_unknown_keywords(self):
        code, output = run_cli(
            "--scale", "0.25", "search", "zzzz qqqq", "--no-execute"
        )
        assert code == 0
        assert "no executable statements" in output


class TestOtherCommands:
    def test_stats(self):
        code, output = run_cli("--scale", "0.25", "stats")
        assert code == 0
        assert "physical_tables" in output
        assert "472" in output  # Table 1 paper scale

    def test_experiments(self):
        code, output = run_cli("--scale", "0.5", "experiments")
        assert code == 0
        assert "Table 3" in output
        assert "paperP" in output

    def test_compare(self):
        code, output = run_cli("--scale", "0.25", "compare")
        assert code == 0
        assert "Keymantic" in output
        assert "SODA" in output

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            run_cli("--scale", "0.25")

    def test_browse_table(self):
        code, output = run_cli("--scale", "0.25", "browse", "individuals")
        assert code == 0
        assert "inherits from: parties" in output

    def test_browse_term(self):
        code, output = run_cli("--scale", "0.25", "browse", "customers")
        assert code == 0
        assert "reaches tables" in output

    def test_page(self):
        code, output = run_cli("--scale", "0.25", "page", "Credit Suisse")
        assert code == 0
        assert "results for: Credit Suisse" in output
        assert "page 1/" in output


class TestExplain:
    def test_explain_renders_plan_tree(self):
        code, output = run_cli(
            "--scale", "0.25", "explain",
            "SELECT count(*), o.status_cd FROM orders_td o, parties p "
            "WHERE o.party_id = p.id AND p.party_type_cd = 'I' "
            "GROUP BY o.status_cd ORDER BY count(*) DESC LIMIT 3",
        )
        assert code == 0
        assert "hash join" in output
        assert "aggregate group by o.status_cd" in output
        assert "limit 3" in output

    def test_explain_is_deterministic(self):
        sql = "SELECT id FROM parties WHERE party_type_cd = 'I'"
        __, first = run_cli("--scale", "0.25", "explain", sql)
        __, second = run_cli("--scale", "0.25", "explain", sql)
        assert first == second

    def test_explain_rejects_non_select(self):
        code, output = run_cli(
            "--scale", "0.25", "explain", "INSERT INTO parties VALUES (1)"
        )
        assert code == 1
        assert "error:" in output

    def test_search_with_explain_flag(self):
        code, output = run_cli(
            "--scale", "0.25", "search", "Sara Guttinger", "--explain"
        )
        assert code == 0
        assert "    | " in output
        assert "scan" in output
