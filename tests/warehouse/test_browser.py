"""Tests for the schema browser (war stories, Section 5.3.2)."""

import pytest

from repro.errors import WarehouseError
from repro.warehouse.browser import SchemaBrowser


@pytest.fixture(scope="module")
def browser(warehouse):
    return SchemaBrowser(warehouse)


class TestDescribeTable:
    def test_columns_listed(self, browser):
        description = browser.describe_table("individuals")
        names = [name for name, __, __ in description.columns]
        assert "given_nm" in names and "salary" in names
        pk = [name for name, __, is_pk in description.columns if is_pk]
        assert pk == ["id"]

    def test_inheritance_roles(self, browser):
        child = browser.describe_table("individuals")
        assert child.inheritance_parent == "parties"
        parent = browser.describe_table("parties")
        assert set(parent.inheritance_children) == {
            "individuals", "organizations"
        }

    def test_refinement_chain(self, browser):
        description = browser.describe_table("individuals")
        assert description.refinement_chain == [
            "logical:Individuals", "conceptual:Individuals"
        ]

    def test_unannotated_join_flagged(self, browser):
        description = browser.describe_table("individual_name_hist")
        unannotated = [
            rendered for rendered, annotated in description.joins
            if not annotated
        ]
        assert unannotated
        rendered = description.render()
        assert "NOT ANNOTATED" in rendered

    def test_classifying_terms(self, browser):
        # "names" classifies organization_name_hist through its org_nm column
        description = browser.describe_table("organization_name_hist")
        assert "names" in description.classified_by

    def test_business_term_classification(self, browser):
        description = browser.describe_table("individuals")
        assert "private customers" in description.classified_by
        assert "wealthy customers" in description.classified_by

    def test_unknown_table_raises(self, browser):
        with pytest.raises(WarehouseError):
            browser.describe_table("zzz")

    def test_render_contains_sections(self, browser):
        rendered = browser.describe_table("parties").render()
        assert "columns:" in rendered
        assert "children:" in rendered


class TestDescribeTerm:
    def test_ontology_term(self, browser):
        description = browser.describe_term("private customers")
        assert ("domain_ontology" in source
                for source, __ in description.locations)
        assert "individuals" in description.reachable_tables

    def test_multi_location_term(self, browser):
        description = browser.describe_term("financial instruments")
        sources = {source for source, __ in description.locations}
        assert sources == {"conceptual_schema", "logical_schema"}
        assert "securities" in description.reachable_tables

    def test_unknown_term(self, browser):
        description = browser.describe_term("flurbl")
        assert description.locations == []
        assert "unknown term" in description.render()

    def test_render(self, browser):
        rendered = browser.describe_term("customers").render()
        assert "reaches tables:" in rendered
        assert "parties" in rendered


class TestQualityReport:
    def test_unannotated_joins_reported(self, browser):
        joins = browser.unannotated_joins()
        assert [join.name for join in joins] == ["j_indiv_name_hist"]
