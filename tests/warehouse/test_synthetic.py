"""Tests for the Table 1 synthetic schema generator."""

import pytest

from repro.warehouse.graphbuilder import build_metadata_graph, graph_statistics
from repro.warehouse.synthetic import SyntheticConfig, generate_definition


class TestCardinalities:
    def test_paper_defaults_exact(self):
        stats = generate_definition().schema_statistics()
        assert stats == {
            "conceptual_entities": 226,
            "conceptual_attributes": 985,
            "conceptual_relationships": 243,
            "logical_entities": 436,
            "logical_attributes": 2700,
            "logical_relationships": 254,
            "physical_tables": 472,
            "physical_columns": 3181,
        }

    def test_scaled_config(self):
        config = SyntheticConfig().scaled(0.1)
        stats = generate_definition(config).schema_statistics()
        assert stats["conceptual_entities"] == 22
        assert stats["physical_tables"] == 47

    def test_custom_config(self):
        config = SyntheticConfig(
            conceptual_entities=5,
            conceptual_attributes=20,
            conceptual_relationships=4,
            logical_entities=8,
            logical_attributes=30,
            logical_relationships=5,
            physical_tables=10,
            physical_columns=40,
        )
        stats = generate_definition(config).schema_statistics()
        assert stats["physical_columns"] == 40
        assert stats["logical_entities"] == 8


class TestStructure:
    @pytest.fixture(scope="class")
    def small(self):
        return generate_definition(SyntheticConfig().scaled(0.05))

    def test_definition_validates(self, small):
        small.validate()  # does not raise

    def test_cryptic_physical_names(self, small):
        assert all(t.name.endswith("_td") for t in small.physical_tables)

    def test_join_backbone_connects_everything(self, small):
        import networkx as nx

        graph = nx.Graph()
        for table in small.physical_tables:
            graph.add_node(table.name)
        for join in small.join_relationships:
            graph.add_edge(join.left_table, join.right_table)
        assert nx.is_connected(graph)

    def test_inheritance_trees_present(self, small):
        assert small.inheritances
        for inheritance in small.inheritances:
            assert len(inheritance.children) == 2

    def test_deterministic(self):
        config = SyntheticConfig().scaled(0.05)
        a = generate_definition(config)
        b = generate_definition(config)
        assert [t.name for t in a.physical_tables] == [
            t.name for t in b.physical_tables
        ]
        assert [j.right_table for j in a.join_relationships] == [
            j.right_table for j in b.join_relationships
        ]

    def test_graph_builds_at_scale(self, small):
        graph = build_metadata_graph(small)
        stats = graph_statistics(graph)
        assert stats["physical_tables"] == len(small.physical_tables)
        assert stats["inheritance_nodes"] == len(small.inheritances)
