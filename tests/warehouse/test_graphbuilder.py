"""Tests for warehouse-definition -> metadata-graph construction (Fig. 3)."""

import pytest

from repro.graph.node import Text, Vocab
from repro.index.classification import EntrySource
from repro.warehouse.graphbuilder import (
    build_classification_index,
    build_metadata_graph,
    column_uri,
    conceptual_entity_uri,
    dbpedia_uri,
    graph_statistics,
    inheritance_uri,
    join_uri,
    logical_entity_uri,
    ontology_term_uri,
    resolve_target,
    table_uri,
)
from repro.warehouse.minibank import build_definition


@pytest.fixture(scope="module")
def definition():
    return build_definition()


@pytest.fixture(scope="module")
def graph(definition):
    return build_metadata_graph(definition)


class TestLayers:
    def test_conceptual_entity_typed_and_labelled(self, graph):
        node = conceptual_entity_uri("Parties")
        assert graph.has_type(node, Vocab.CONCEPTUAL_ENTITY)
        assert graph.object(node, Vocab.LABEL) == Text("parties")

    def test_refinement_chain_conceptual_to_physical(self, graph):
        conceptual = conceptual_entity_uri("Parties")
        logical = logical_entity_uri("Parties")
        physical = table_uri("parties")
        assert logical in graph.objects(conceptual, Vocab.REFINES)
        assert physical in graph.objects(logical, Vocab.REFINES)

    def test_attribute_refinement(self, graph):
        # conceptual "family name" -> logical -> physical individuals.family_nm
        from repro.warehouse.graphbuilder import (
            conceptual_attr_uri,
            logical_attr_uri,
        )

        conceptual = conceptual_attr_uri("Individuals", "family name")
        logical = logical_attr_uri("Individuals", "family name")
        column = column_uri("individuals", "family_nm")
        assert logical in graph.objects(conceptual, Vocab.REFINES)
        assert column in graph.objects(logical, Vocab.REFINES)

    def test_table_has_tablename_and_columns(self, graph):
        node = table_uri("parties")
        assert graph.object(node, Vocab.TABLENAME) == Text("parties")
        columns = graph.objects(node, Vocab.COLUMN)
        assert column_uri("parties", "id") in columns

    def test_column_belongs_to_table(self, graph):
        column = column_uri("parties", "id")
        assert graph.object(column, Vocab.BELONGS_TO) == table_uri("parties")


class TestJoinsAndInheritance:
    def test_annotated_join_node(self, graph):
        node = join_uri("j_indiv_domicile")
        assert graph.has_type(node, Vocab.JOIN_NODE)
        assert graph.object(node, Vocab.JOIN_LEFT) == column_uri(
            "individuals", "domicile_adr_id"
        )
        assert graph.object(node, Vocab.JOIN_RIGHT) == column_uri("addresses", "id")

    def test_unannotated_join_absent(self, graph):
        # the bi-temporal historization gap of the paper
        node = join_uri("j_indiv_name_hist")
        assert not list(graph.outgoing(node))

    def test_has_join_back_edges(self, graph):
        column = column_uri("individuals", "domicile_adr_id")
        assert join_uri("j_indiv_domicile") in graph.objects(column, Vocab.HAS_JOIN)

    def test_inheritance_node_structure(self, graph):
        node = inheritance_uri("physical", "inh_parties")
        assert graph.has_type(node, Vocab.INHERITANCE_NODE)
        assert graph.object(node, Vocab.INHERITANCE_PARENT) == table_uri("parties")
        children = graph.objects(node, Vocab.INHERITANCE_CHILD)
        assert table_uri("individuals") in children
        assert table_uri("organizations") in children

    def test_parent_points_at_inheritance_node(self, graph):
        parent = table_uri("parties")
        assert inheritance_uri("physical", "inh_parties") in graph.objects(
            parent, Vocab.HAS_INHERITANCE
        )


class TestOntologyAndDbpedia:
    def test_ontology_term_classifies(self, graph):
        node = ontology_term_uri("customer_ontology", "customers")
        assert graph.has_type(node, Vocab.ONTOLOGY_TERM)
        assert conceptual_entity_uri("Parties") in graph.objects(
            node, Vocab.CLASSIFIES
        )

    def test_business_term_filter_triples(self, graph):
        node = ontology_term_uri("customer_ontology", "wealthy customers")
        assert graph.has_type(node, Vocab.BUSINESS_TERM)
        assert graph.object(node, Vocab.FILTER_COLUMN) == column_uri(
            "individuals", "salary"
        )
        assert graph.object(node, Vocab.FILTER_OP) == Text(">=")

    def test_business_term_aggregation_triples(self, graph):
        node = ontology_term_uri("product_ontology", "trading volume")
        assert graph.object(node, Vocab.AGG_FUNC) == Text("sum")
        assert graph.object(node, Vocab.AGG_COLUMN) == column_uri(
            "fi_transactions", "amount"
        )

    def test_dbpedia_synonym(self, graph):
        node = dbpedia_uri("client")
        assert graph.has_type(node, Vocab.DBPEDIA_TERM)
        assert ontology_term_uri("customer_ontology", "customers") in graph.objects(
            node, Vocab.SYNONYM_OF
        )


class TestResolveTarget:
    def test_all_layers(self, definition):
        assert resolve_target(definition, "conceptual:Parties") == (
            conceptual_entity_uri("Parties")
        )
        assert resolve_target(definition, "logical:Parties") == (
            logical_entity_uri("Parties")
        )
        assert resolve_target(definition, "physical:parties") == table_uri("parties")
        assert resolve_target(definition, "column:parties.id") == column_uri(
            "parties", "id"
        )
        assert resolve_target(definition, "ontology:customers") == (
            ontology_term_uri("customer_ontology", "customers")
        )

    def test_unknown_ontology_term(self, definition):
        from repro.errors import WarehouseError

        with pytest.raises(WarehouseError):
            resolve_target(definition, "ontology:nonexistent")


class TestClassificationBuilding:
    def test_ontology_terms_registered(self, graph):
        index = build_classification_index(graph)
        matches = index.lookup("private customers")
        assert any(m.source is EntrySource.DOMAIN_ONTOLOGY for m in matches)

    def test_fig5_financial_instruments_found_twice(self, graph):
        # Fig. 5: "financial instruments" appears in conceptual AND logical
        index = build_classification_index(graph)
        sources = sorted(m.source.value for m in index.lookup("financial instruments"))
        assert sources == ["conceptual_schema", "logical_schema"]

    def test_dbpedia_exclusion(self, graph):
        index = build_classification_index(graph, include_dbpedia=False)
        assert not index.lookup("client")
        index_with = build_classification_index(graph, include_dbpedia=True)
        assert index_with.lookup("client")

    def test_physical_names_excluded_by_default(self, graph):
        index = build_classification_index(graph)
        for match in index.lookup("financial instruments"):
            assert match.source is not EntrySource.PHYSICAL_SCHEMA

    def test_physical_names_included_on_request(self, graph):
        index = build_classification_index(graph, include_physical=True)
        sources = {m.source for m in index.lookup("financial instruments")}
        assert EntrySource.PHYSICAL_SCHEMA in sources


class TestStatistics:
    def test_graph_statistics_counts(self, graph, definition):
        stats = graph_statistics(graph)
        expected = definition.schema_statistics()
        assert stats["conceptual_entities"] == expected["conceptual_entities"]
        assert stats["physical_tables"] == expected["physical_tables"]
        assert stats["physical_columns"] == expected["physical_columns"]
        assert stats["triples"] == len(graph)
        # one join node per *annotated* join relationship
        annotated = sum(1 for j in definition.join_relationships if j.annotated)
        assert stats["join_nodes"] == annotated
