"""Tests for warehouse-definition JSON (de)serialization."""

import json

import pytest

from repro.errors import WarehouseError
from repro.warehouse.minibank import build_definition
from repro.warehouse.serialization import (
    FORMAT_VERSION,
    definition_from_dict,
    definition_to_dict,
    load_definition,
    save_definition,
)
from repro.warehouse.synthetic import SyntheticConfig, generate_definition


class TestRoundTrip:
    def test_finbank_round_trip(self):
        original = build_definition()
        restored = definition_from_dict(definition_to_dict(original))
        assert definition_to_dict(restored) == definition_to_dict(original)

    def test_synthetic_round_trip(self):
        original = generate_definition(SyntheticConfig().scaled(0.05))
        restored = definition_from_dict(definition_to_dict(original))
        assert definition_to_dict(restored) == definition_to_dict(original)

    def test_payload_is_json_compatible(self):
        payload = definition_to_dict(build_definition())
        json.dumps(payload)  # must not raise

    def test_business_terms_survive(self):
        restored = definition_from_dict(definition_to_dict(build_definition()))
        wealthy = None
        for ontology in restored.ontologies:
            for term in ontology.terms:
                if term.term == "wealthy customers":
                    wealthy = term
        assert wealthy is not None
        assert wealthy.filter.op == ">="
        assert wealthy.filter.value == 1_000_000

    def test_unannotated_joins_survive(self):
        restored = definition_from_dict(definition_to_dict(build_definition()))
        join = next(
            j for j in restored.join_relationships
            if j.name == "j_indiv_name_hist"
        )
        assert not join.annotated


class TestFiles:
    def test_save_load(self, tmp_path):
        path = tmp_path / "finbank.json"
        original = build_definition()
        save_definition(original, path)
        restored = load_definition(path)
        assert definition_to_dict(restored) == definition_to_dict(original)

    def test_loaded_definition_builds_working_warehouse(self, tmp_path):
        from repro.core.soda import Soda
        from repro.warehouse.minibank import populate
        from repro.warehouse.warehouse import Warehouse

        path = tmp_path / "finbank.json"
        save_definition(build_definition(), path)
        warehouse = Warehouse.build(
            load_definition(path),
            populate=lambda db: populate(db, scale=0.25),
        )
        result = Soda(warehouse).search("Credit Suisse", execute=False)
        assert result.statements


class TestValidation:
    def test_wrong_version_rejected(self):
        payload = definition_to_dict(build_definition())
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(WarehouseError):
            definition_from_dict(payload)

    def test_invalid_definition_rejected(self):
        payload = definition_to_dict(build_definition())
        payload["join_relationships"][0]["left_table"] = "nonexistent"
        with pytest.raises(WarehouseError):
            definition_from_dict(payload)

    def test_defaults_applied(self):
        payload = {
            "format_version": FORMAT_VERSION,
            "name": "tiny",
            "physical_tables": [
                {
                    "name": "t",
                    "columns": [{"name": "id", "sql_type": "INT"}],
                }
            ],
        }
        definition = definition_from_dict(payload)
        assert definition.physical_tables[0].columns[0].primary_key is False
        assert definition.ontologies == []
