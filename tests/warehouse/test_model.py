"""Tests for the warehouse schema model and its validation."""

import pytest

from repro.errors import WarehouseError
from repro.warehouse.model import (
    ConceptualEntity,
    Inheritance,
    JoinRelationship,
    LogicalEntity,
    PhysicalColumn,
    PhysicalTable,
    WarehouseDefinition,
    build_database,
)
from repro.warehouse.ontology import Ontology, OntologyTerm


def tiny_definition() -> WarehouseDefinition:
    return WarehouseDefinition(
        name="tiny",
        conceptual_entities=[ConceptualEntity("Parties", attributes=("name",))],
        logical_entities=[
            LogicalEntity("Parties", attributes=("name",), refines="Parties")
        ],
        physical_tables=[
            PhysicalTable(
                "parties",
                refines="Parties",
                columns=(
                    PhysicalColumn("id", "INT", primary_key=True),
                    PhysicalColumn("name_nm", "TEXT", refines=("Parties", "name")),
                ),
            ),
            PhysicalTable(
                "children",
                columns=(
                    PhysicalColumn("id", "INT", primary_key=True),
                    PhysicalColumn("parent_id", "INT"),
                ),
            ),
        ],
        join_relationships=[
            JoinRelationship("j1", "children", "parent_id", "parties", "id")
        ],
        inheritances=[],
        ontologies=[],
        dbpedia=[],
    )


class TestValidation:
    def test_valid_definition_passes(self):
        tiny_definition().validate()

    def test_logical_refines_unknown_conceptual(self):
        definition = tiny_definition()
        definition.logical_entities.append(
            LogicalEntity("Broken", refines="Nonexistent")
        )
        with pytest.raises(WarehouseError):
            definition.validate()

    def test_physical_refines_unknown_logical(self):
        definition = tiny_definition()
        definition.physical_tables.append(
            PhysicalTable(
                "broken",
                refines="Nonexistent",
                columns=(PhysicalColumn("id", "INT"),),
            )
        )
        with pytest.raises(WarehouseError):
            definition.validate()

    def test_join_references_unknown_table(self):
        definition = tiny_definition()
        definition.join_relationships.append(
            JoinRelationship("bad", "nope", "id", "parties", "id")
        )
        with pytest.raises(WarehouseError):
            definition.validate()

    def test_join_references_unknown_column(self):
        definition = tiny_definition()
        definition.join_relationships.append(
            JoinRelationship("bad", "children", "zzz", "parties", "id")
        )
        with pytest.raises(WarehouseError):
            definition.validate()

    def test_inheritance_unknown_parent(self):
        definition = tiny_definition()
        definition.inheritances.append(
            Inheritance("bad", "nope", ("children",), layer="physical")
        )
        with pytest.raises(WarehouseError):
            definition.validate()

    def test_inheritance_needs_children(self):
        with pytest.raises(WarehouseError):
            Inheritance("bad", "parties", ())

    def test_ontology_target_validated(self):
        definition = tiny_definition()
        definition.ontologies.append(
            Ontology("o", terms=(OntologyTerm("x", classifies=("physical:zzz",)),))
        )
        with pytest.raises(WarehouseError):
            definition.validate()

    def test_malformed_target_spec(self):
        definition = tiny_definition()
        definition.ontologies.append(
            Ontology("o", terms=(OntologyTerm("x", classifies=("no-colon",)),))
        )
        with pytest.raises(WarehouseError):
            definition.validate()

    def test_column_target_spec(self):
        definition = tiny_definition()
        definition.ontologies.append(
            Ontology(
                "o",
                terms=(OntologyTerm("x", classifies=("column:parties.name_nm",)),),
            )
        )
        definition.validate()

    def test_duplicate_columns_rejected(self):
        definition = tiny_definition()
        definition.physical_tables.append(
            PhysicalTable(
                "dup",
                columns=(
                    PhysicalColumn("a", "INT"),
                    PhysicalColumn("a", "TEXT"),
                ),
            )
        )
        with pytest.raises(WarehouseError):
            definition.validate()


class TestLookups:
    def test_physical_table_lookup(self):
        definition = tiny_definition()
        assert definition.physical_table("parties").name == "parties"
        assert definition.has_physical_table("parties")
        assert not definition.has_physical_table("zzz")
        with pytest.raises(WarehouseError):
            definition.physical_table("zzz")

    def test_entity_lookups(self):
        definition = tiny_definition()
        assert definition.logical_entity("Parties").refines == "Parties"
        assert definition.conceptual_entity("Parties").attributes == ("name",)

    def test_joins_of_table(self):
        definition = tiny_definition()
        assert len(definition.joins_of_table("parties")) == 1
        assert definition.joins_of_table("zzz") == []

    def test_table_column_lookup(self):
        table = tiny_definition().physical_table("parties")
        assert table.column("id").primary_key
        with pytest.raises(WarehouseError):
            table.column("zzz")


class TestStatistics:
    def test_schema_statistics(self):
        stats = tiny_definition().schema_statistics()
        assert stats["conceptual_entities"] == 1
        assert stats["physical_tables"] == 2
        assert stats["physical_columns"] == 4


class TestBuildDatabase:
    def test_tables_created_with_fks(self):
        db = build_database(tiny_definition())
        assert db.table_names() == ["children", "parties"]
        assert db.table("children").foreign_keys[0].ref_table == "parties"

    def test_unannotated_joins_still_become_fks(self):
        definition = tiny_definition()
        definition.join_relationships[0] = JoinRelationship(
            "j1", "children", "parent_id", "parties", "id", annotated=False
        )
        db = build_database(definition)
        assert db.table("children").foreign_keys
