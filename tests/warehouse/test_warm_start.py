"""Warehouse warm-start: snapshot save/load produces identical search."""

import pytest

from repro.core.soda import Soda, SodaConfig
from repro.errors import WarehouseError
from repro.warehouse.minibank import build_minibank

QUERIES = ["Zurich", "Sara Guttinger", "customers Zurich", "gold agreement"]


def result_fingerprint(result):
    return [
        (s.sql, round(s.score, 12), s.estimated_rows)
        for s in result.statements
    ]


@pytest.fixture(scope="module")
def cold_warehouse():
    return build_minibank(seed=42, scale=0.25)


@pytest.fixture(scope="module")
def snapshot_path(cold_warehouse, tmp_path_factory):
    path = tmp_path_factory.mktemp("snapshots") / "minibank.json"
    cold_warehouse.classification_index()  # materialize the default variant
    cold_warehouse.save_index_snapshot(path)
    return path


class TestWarmStart:
    def test_search_results_identical(self, cold_warehouse, snapshot_path):
        warm = build_minibank(seed=42, scale=0.25, snapshot=str(snapshot_path))
        cold_soda = Soda(cold_warehouse, SodaConfig())
        warm_soda = Soda(warm, SodaConfig())
        for text in QUERIES:
            cold_result = cold_soda.search(text, execute=False)
            warm_result = warm_soda.search(text, execute=False)
            assert result_fingerprint(cold_result) == result_fingerprint(
                warm_result
            )

    def test_size_summary_round_trips(self, cold_warehouse, snapshot_path):
        warm = build_minibank(seed=42, scale=0.25, snapshot=str(snapshot_path))
        assert warm.inverted.size_summary() == (
            cold_warehouse.inverted.size_summary()
        )

    def test_stale_snapshot_falls_back_to_cold_build(self, snapshot_path):
        # a different scale yields a different fingerprint: build() must
        # silently rebuild rather than serve stale postings
        warehouse = build_minibank(
            seed=42, scale=0.1, snapshot=str(snapshot_path)
        )
        from repro.index.inverted import InvertedIndex

        rebuilt = InvertedIndex.build(warehouse.database.catalog)
        assert warehouse.inverted.size_summary() == rebuilt.size_summary()

    def test_missing_snapshot_falls_back(self, tmp_path):
        warehouse = build_minibank(
            seed=42, scale=0.1, snapshot=str(tmp_path / "nope.json")
        )
        assert warehouse.inverted.entry_count() > 0

    def test_strict_load_rejects_stale(self, snapshot_path):
        other = build_minibank(seed=42, scale=0.1)
        with pytest.raises(WarehouseError):
            other.load_index_snapshot(snapshot_path)

    def test_strict_load_rejects_post_delete_snapshot(self, tmp_path):
        """A DELETE after saving makes the snapshot unloadable (strict)."""
        warehouse = build_minibank(seed=42, scale=0.1)
        path = tmp_path / "predelete.json"
        warehouse.save_index_snapshot(path)
        warehouse.database.execute("DELETE FROM currencies WHERE currency_cd = 'CHF'")
        with pytest.raises(WarehouseError, match="stale"):
            warehouse.load_index_snapshot(path)
        # and the soft build() path falls back to a cold build
        rebuilt = build_minibank(seed=42, scale=0.1, snapshot=str(path))
        assert rebuilt.inverted.entry_count() > 0

    def test_strict_load_rejects_post_update_snapshot(self, tmp_path):
        """An UPDATE leaves the row count unchanged but still stales."""
        warehouse = build_minibank(seed=42, scale=0.1)
        path = tmp_path / "preupdate.json"
        warehouse.save_index_snapshot(path)
        changed = warehouse.database.execute(
            "UPDATE currencies SET currency_nm = 'Renamed Franc' "
            "WHERE currency_cd = 'CHF'"
        ).rowcount
        assert changed == 1
        with pytest.raises(WarehouseError, match="stale"):
            warehouse.load_index_snapshot(path)

    def test_strict_load_replaces_indexes(self, snapshot_path):
        warehouse = build_minibank(seed=42, scale=0.25)
        old_index = warehouse.inverted
        snapshot = warehouse.load_index_snapshot(snapshot_path)
        assert warehouse.inverted is snapshot.inverted
        assert warehouse.inverted is not old_index
        # maintenance got re-pointed at the loaded index
        assert warehouse.maintainer.index is warehouse.inverted
        warehouse.database.execute(
            "INSERT INTO currencies VALUES ('QQQ', 'Warmstart Quid')"
        )
        assert warehouse.inverted.lookup("warmstart")


class TestClassificationCache:
    def test_sodas_share_one_classification_build(self):
        warehouse = build_minibank(seed=42, scale=0.1)
        first = Soda(warehouse, SodaConfig())
        second = Soda(warehouse, SodaConfig())
        assert first.classification is second.classification

    def test_flag_variants_are_distinct(self):
        warehouse = build_minibank(seed=42, scale=0.1)
        default = warehouse.classification_index()
        no_dbpedia = warehouse.classification_index(include_dbpedia=False)
        assert default is not no_dbpedia
        assert default.term_count() >= no_dbpedia.term_count()

    def test_graph_mutation_invalidates(self):
        warehouse = build_minibank(seed=42, scale=0.1)
        before = warehouse.classification_index()
        from repro.graph.node import Text, Vocab

        warehouse.graph.add("soda://test/extra", Vocab.TYPE, Text("x"))
        after = warehouse.classification_index()
        assert after is not before
