"""Tests for runtime metadata repair (paper Section 5.3.1 war stories)."""

import pytest

from repro.core.evaluation import evaluate_sql
from repro.core.soda import Soda, SodaConfig
from repro.errors import WarehouseError
from repro.experiments.workload import query_by_id
from repro.graph.node import Text, Vocab
from repro.warehouse.graphbuilder import join_uri
from repro.warehouse.minibank import build_minibank


@pytest.fixture
def wh():
    # fresh warehouse per test: annotations mutate the graph
    return build_minibank(seed=42, scale=0.5)


def best_metrics(soda, qid):
    query = query_by_id(qid)
    result = soda.search(query.text, execute=False)
    best = None
    for statement in result.statements:
        metrics = evaluate_sql(
            soda.warehouse.database, statement.sql, query.gold,
            estimated_rows=statement.estimated_rows,
        )
        if best is None or (metrics.precision, metrics.recall) > (
            best.precision, best.recall
        ):
            best = metrics
    return best


class TestAnnotateJoin:
    def test_annotation_adds_join_node(self, wh):
        node = join_uri("j_indiv_name_hist")
        assert not list(wh.graph.outgoing(node))
        wh.annotate_join("j_indiv_name_hist")
        assert wh.graph.has_type(node, Vocab.JOIN_NODE)

    def test_annotation_fixes_q22_recall(self, wh):
        # the paper's war-story remedy: annotating the historization join
        # lifts Q2.2 from R=0.2 to R=1.0
        before = best_metrics(Soda(wh), "2.2")
        assert before.recall == pytest.approx(0.2)
        wh.annotate_join("j_indiv_name_hist")
        after = best_metrics(Soda(wh), "2.2")
        assert after.precision == 1.0
        assert after.recall == 1.0

    def test_definition_updated(self, wh):
        wh.annotate_join("j_indiv_name_hist")
        join = next(
            j for j in wh.definition.join_relationships
            if j.name == "j_indiv_name_hist"
        )
        assert join.annotated

    def test_double_annotation_rejected(self, wh):
        wh.annotate_join("j_indiv_name_hist")
        with pytest.raises(WarehouseError):
            wh.annotate_join("j_indiv_name_hist")

    def test_annotating_annotated_join_rejected(self, wh):
        with pytest.raises(WarehouseError):
            wh.annotate_join("j_indiv_domicile")

    def test_unknown_join_rejected(self, wh):
        with pytest.raises(WarehouseError):
            wh.annotate_join("j_nonexistent")


class TestIgnoreJoin:
    def test_ignore_marks_node(self, wh):
        wh.ignore_join("j_assoc_indiv")
        node = join_uri("j_assoc_indiv")
        assert wh.graph.object(node, Vocab.IGNORED) == Text("true")

    def test_ignored_join_skipped_by_soda(self, wh):
        # Q5.0 routes through the sibling bridge; ignoring both bridge
        # joins removes associate_employment from the generated statement
        wh.ignore_join("j_assoc_indiv")
        wh.ignore_join("j_assoc_org")
        soda = Soda(wh)
        result = soda.search("customers names", execute=False)
        assert result.best is not None
        assert "associate_employment" not in result.best.statement.tables

    def test_unignore_restores(self, wh):
        wh.ignore_join("j_assoc_indiv")
        wh.unignore_join("j_assoc_indiv")
        node = join_uri("j_assoc_indiv")
        assert wh.graph.object(node, Vocab.IGNORED) is None

    def test_ignore_unannotated_rejected(self, wh):
        with pytest.raises(WarehouseError):
            wh.ignore_join("j_indiv_name_hist")

    def test_unignore_not_ignored_rejected(self, wh):
        with pytest.raises(WarehouseError):
            wh.unignore_join("j_assoc_indiv")
