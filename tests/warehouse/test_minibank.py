"""Tests for the finbank warehouse: schema shape, sentinel data, indexes."""

import datetime

import pytest

from repro.warehouse.minibank import (
    CREDIT_SUISSE_ORG_ID,
    SARA_ID,
    build_definition,
    build_minibank,
)


@pytest.fixture(scope="module")
def wh():
    return build_minibank(seed=42, scale=0.5)


class TestDefinition:
    def test_definition_validates(self):
        build_definition().validate()

    def test_fig1_conceptual_entities_present(self):
        names = {e.name for e in build_definition().conceptual_entities}
        assert {
            "Parties", "Individuals", "Organizations", "Transactions",
            "FinancialInstruments",
        } <= names

    def test_fig2_logical_split(self):
        names = {e.name for e in build_definition().logical_entities}
        # the logical layer splits transactions and stores addresses separately
        assert {
            "FinancialInstrumentTransactions", "MoneyTransactions", "Addresses",
        } <= names

    def test_fig10_sibling_bridge_exists(self):
        definition = build_definition()
        joins = {j.name: j for j in definition.join_relationships}
        assert joins["j_assoc_indiv"].kind == "bridge"
        assert joins["j_assoc_org"].kind == "bridge"

    def test_historization_join_not_annotated(self):
        definition = build_definition()
        join = next(
            j for j in definition.join_relationships
            if j.name == "j_indiv_name_hist"
        )
        assert not join.annotated

    def test_three_physical_inheritances(self):
        definition = build_definition()
        physical = [i for i in definition.inheritances if i.layer == "physical"]
        assert {i.parent for i in physical} == {
            "parties", "transactions", "orders_td"
        }


class TestData:
    def test_sara_guttinger_exists(self, wh):
        rs = wh.database.execute(
            "SELECT given_nm, family_nm, birth_dt FROM individuals "
            f"WHERE id = {SARA_ID}"
        )
        assert rs.rows == [("Sara", "Guttinger", datetime.date(1981, 4, 23))]

    def test_exactly_one_current_sara(self, wh):
        rs = wh.database.execute(
            "SELECT count(*) FROM individuals WHERE given_nm = 'Sara'"
        )
        assert rs.rows == [(1,)]

    def test_five_historical_saras(self, wh):
        # the Q2.1 story: the gold standard finds five Saras in the history
        rs = wh.database.execute(
            "SELECT count(DISTINCT indiv_id) FROM individual_name_hist "
            "WHERE given_nm = 'Sara'"
        )
        assert rs.rows == [(5,)]

    def test_credit_suisse_org(self, wh):
        rs = wh.database.execute(
            f"SELECT org_nm FROM organizations WHERE id = {CREDIT_SUISSE_ORG_ID}"
        )
        assert rs.rows == [("Credit Suisse",)]

    def test_credit_suisse_agreements(self, wh):
        rs = wh.database.execute(
            "SELECT count(*) FROM agreements_td "
            "WHERE agreement_nm LIKE '%Credit Suisse%'"
        )
        assert rs.rows == [(3,)]

    def test_gold_agreement(self, wh):
        rs = wh.database.execute(
            "SELECT count(*) FROM agreements_td WHERE agreement_nm LIKE '%Gold%'"
        )
        assert rs.rows == [(1,)]

    def test_lehman_product(self, wh):
        rs = wh.database.execute(
            "SELECT count(*) FROM investment_products "
            "WHERE product_nm LIKE '%Lehman XYZ%'"
        )
        assert rs.rows == [(1,)]

    def test_yen_trade_orders_exist(self, wh):
        rs = wh.database.execute(
            "SELECT count(*) FROM trade_orders WHERE currency_cd = 'YEN'"
        )
        assert rs.rows[0][0] > 0

    def test_party_per_individual_and_org(self, wh):
        individuals = wh.database.row_count("individuals")
        organizations = wh.database.row_count("organizations")
        assert wh.database.row_count("parties") == individuals + organizations

    def test_inheritance_is_mutually_exclusive(self, wh):
        rs = wh.database.execute(
            "SELECT count(*) FROM individuals, organizations "
            "WHERE individuals.id = organizations.id"
        )
        assert rs.rows == [(0,)]

    def test_every_investment_has_known_currency(self, wh):
        rs = wh.database.execute(
            "SELECT count(*) FROM investments_td "
            "WHERE currency_cd NOT IN "
            "('CHF', 'USD', 'EUR', 'GBP', 'YEN', 'SEK')"
        )
        assert rs.rows == [(0,)]

    def test_domicile_partially_populated(self, wh):
        # Q9.0 story: the domicile FK is stale/incomplete
        with_domicile = wh.database.execute(
            "SELECT count(*) FROM individuals WHERE domicile_adr_id IS NOT NULL"
        ).rows[0][0]
        total = wh.database.row_count("individuals")
        assert 0 < with_domicile < total

    def test_party_address_complete(self, wh):
        assert wh.database.row_count("party_address") >= (
            wh.database.row_count("parties")
        )

    def test_deterministic_given_seed(self):
        a = build_minibank(seed=7, scale=0.25)
        b = build_minibank(seed=7, scale=0.25)
        assert a.row_counts() == b.row_counts()
        assert a.database.execute("SELECT * FROM individuals").rows == (
            b.database.execute("SELECT * FROM individuals").rows
        )

    def test_different_seeds_differ(self):
        a = build_minibank(seed=7, scale=0.25)
        b = build_minibank(seed=8, scale=0.25)
        assert a.database.execute("SELECT * FROM addresses").rows != (
            b.database.execute("SELECT * FROM addresses").rows
        )


class TestFacade:
    def test_row_counts(self, wh):
        counts = wh.row_counts()
        assert counts["currencies"] == 6
        assert all(count > 0 for count in counts.values())

    def test_statistics_combined(self, wh):
        stats = wh.statistics()
        assert stats["physical_tables"] == 21
        assert stats["graph_triples"] > 0
        assert stats["index_indexed_values"] > 0
        assert stats["total_rows"] == sum(wh.row_counts().values())

    def test_inverted_index_covers_sentinels(self, wh):
        assert wh.inverted.lookup_phrase("credit suisse")
        assert wh.inverted.lookup_phrase("zurich")
        assert wh.inverted.lookup_phrase("lehman xyz")
        assert wh.inverted.lookup_phrase("switzerland")
