"""Robustness and failure-injection tests.

A production system survives broken metadata, empty data and hostile
input.  These tests corrupt the warehouse in the ways the paper's war
stories describe (imperfect schema descriptions, unpopulated tables,
inconsistent modelling) and assert that SODA degrades gracefully
instead of crashing.
"""

import pytest

from repro.core.soda import Soda, SodaConfig
from repro.graph.node import Text, Vocab
from repro.graph.triples import TripleStore
from repro.warehouse.graphbuilder import table_uri
from repro.warehouse.minibank import build_definition, build_minibank
from repro.warehouse.warehouse import Warehouse


@pytest.fixture
def wh():
    return build_minibank(seed=42, scale=0.25)


class TestHostileInput:
    @pytest.mark.parametrize(
        "text",
        [
            "'; DROP TABLE parties; --",
            "((((((((",
            ">>>>> <<<<<",
            "date(9999-99-99)",
            "sum()" * 30,
            "a " * 200,
            "ümlaut-кириллица-漢字",
        ],
    )
    def test_garbage_queries_do_not_crash(self, wh, text):
        soda = Soda(wh)
        from repro.errors import ReproError

        try:
            result = soda.search(text, execute=True)
        except ReproError:
            return  # a clean library error is acceptable
        for statement in result.statements:
            assert statement.sql.startswith("SELECT")

    def test_sql_injection_in_values_is_escaped(self, wh):
        # a keyword matching a stored value containing a quote must not
        # break the generated SQL
        wh.database.insert_rows(
            "agreements_td",
            [(39999, 1, "O'Hara Special Agreement", None)],
        )
        wh.inverted.add("agreements_td", "agreement_nm",
                        "O'Hara Special Agreement")
        soda = Soda(wh)
        result = soda.search("ohara", execute=True)
        for statement in result.statements:
            assert statement.execution_error is None or (
                "exceeds" in statement.execution_error
            )


class TestEmptyWarehouse:
    def test_empty_database_searchable(self):
        definition = build_definition()
        warehouse = Warehouse.build(definition, populate=None)  # 0 rows
        soda = Soda(warehouse)
        # metadata queries still work
        result = soda.search("private customers family name")
        assert result.statements
        assert result.best.snippet is not None
        assert result.best.snippet.rows == []
        # base-data queries find nothing
        assert soda.search("Zurich").statements == []


class TestCorruptedMetadata:
    def test_table_without_tablename_is_skipped(self, wh):
        # injected node that matches `type physical_table` but carries no
        # tablename: the Table pattern must simply not match
        node = table_uri("ghost")
        wh.graph.add(node, Vocab.TYPE, Vocab.PHYSICAL_TABLE)
        soda = Soda(wh)
        result = soda.search("private customers", execute=False)
        assert result.statements
        assert all("ghost" not in s.sql for s in result.statements)

    def test_dangling_classifies_edge(self, wh):
        # ontology term pointing at a node that has no further structure
        from repro.warehouse.graphbuilder import ontology_term_uri

        term = ontology_term_uri("customer_ontology", "broken term")
        wh.graph.add(term, Vocab.TYPE, Vocab.ONTOLOGY_TERM)
        wh.graph.add(term, Vocab.LABEL, Text("broken term"))
        wh.graph.add(term, Vocab.CLASSIFIES, table_uri("nonexistent_tbl"))
        soda = Soda(wh)
        result = soda.search("broken term", execute=False)
        # the term resolves but yields no tables -> no statements, no crash
        assert result.statements == []

    def test_metadata_table_missing_from_database(self, wh):
        # graph knows a table the engine does not have (schema drift):
        # an ontology term classifies a phantom physical table
        from repro.warehouse.graphbuilder import ontology_term_uri

        node = table_uri("phantom_td")
        wh.graph.add(node, Vocab.TYPE, Vocab.PHYSICAL_TABLE)
        wh.graph.add(node, Vocab.TABLENAME, Text("phantom_td"))
        term = ontology_term_uri("customer_ontology", "phantom things")
        wh.graph.add(term, Vocab.TYPE, Vocab.ONTOLOGY_TERM)
        wh.graph.add(term, Vocab.LABEL, Text("phantom things"))
        wh.graph.add(term, Vocab.CLASSIFIES, node)
        soda = Soda(wh)
        result = soda.search("phantom things", execute=True)
        # the statement is generated but execution reports the error
        assert result.statements
        assert result.best.execution_error is not None

    def test_cyclic_refinement_terminates(self, wh):
        from repro.warehouse.graphbuilder import (
            conceptual_entity_uri,
            logical_entity_uri,
        )

        # refinement cycle: logical Parties -> conceptual Parties
        wh.graph.add(
            logical_entity_uri("Parties"),
            Vocab.REFINES,
            conceptual_entity_uri("Parties"),
        )
        soda = Soda(wh)
        result = soda.search("customers", execute=False)
        assert result.statements  # traversal's seen-set breaks the cycle


class TestUnpopulatedBridge:
    def test_empty_bridge_yields_empty_but_valid_result(self, wh):
        # the war story: bridge tables that are "not populated yet"
        table = wh.database.table("associate_employment")
        table.rows.clear()
        soda = Soda(wh)
        result = soda.search("customers names")
        assert result.best is not None
        if "associate_employment" in result.best.statement.tables:
            assert result.best.snippet is not None
            assert result.best.snippet.rows == []

    def test_ignoring_unpopulated_bridge_restores_results(self, wh):
        wh.database.table("associate_employment").rows.clear()
        wh.ignore_join("j_assoc_indiv")
        wh.ignore_join("j_assoc_org")
        soda = Soda(wh)
        result = soda.search("customers names")
        assert result.best is not None
        assert "associate_employment" not in result.best.statement.tables
