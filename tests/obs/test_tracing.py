"""Tests for the hierarchical tracer: nesting, determinism, no-op path."""

import json

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    activate,
    current_tracer,
)


def build_sample(tracer):
    with tracer.span("search", query="q"):
        with tracer.span("step:lookup"):
            pass
        with tracer.span("step:execute") as span:
            span.set(rows=3)
            with tracer.span("plan", cache="miss"):
                pass


class TestSpanNesting:
    def test_nested_with_blocks_build_a_tree(self):
        tracer = Tracer()
        build_sample(tracer)
        assert tracer.tree() == (
            ("search", (
                ("step:lookup", ()),
                ("step:execute", (("plan", ()),)),
            )),
        )

    def test_sibling_order_is_preserved(self):
        tracer = Tracer()
        with tracer.span("root"):
            for name in ("a", "b", "c"):
                with tracer.span(name):
                    pass
        (root,) = tracer.roots
        assert [child.name for child in root.children] == ["a", "b", "c"]

    def test_multiple_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert tracer.tree() == (("first", ()), ("second", ()))

    def test_tree_is_deterministic_across_runs(self):
        first, second = Tracer(), Tracer()
        build_sample(first)
        build_sample(second)
        assert first.tree() == second.tree()

    def test_elapsed_recorded_on_exit(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        (span,) = tracer.roots
        assert span.elapsed >= 0.0
        assert isinstance(span, Span)

    def test_exception_still_pops_the_stack(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer._stack == []
        assert tracer.tree() == (("boom", ()),)


class TestExports:
    def test_to_dict_without_timings_is_deterministic(self):
        tracer = Tracer()
        build_sample(tracer)
        expected = [
            {
                "name": "search",
                "attributes": {"query": "q"},
                "children": [
                    {"name": "step:lookup"},
                    {
                        "name": "step:execute",
                        "attributes": {"rows": 3},
                        "children": [
                            {"name": "plan", "attributes": {"cache": "miss"}}
                        ],
                    },
                ],
            }
        ]
        assert tracer.to_dict(timings=False) == expected

    def test_to_dict_with_timings_adds_elapsed_ms(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        (entry,) = tracer.to_dict()
        assert "elapsed_ms" in entry

    def test_to_json_round_trips(self):
        tracer = Tracer()
        build_sample(tracer)
        parsed = json.loads(tracer.to_json())
        assert parsed[0]["name"] == "search"
        assert parsed[0]["children"][0]["name"] == "step:lookup"

    def test_render_shows_connectors_attributes_and_durations(self):
        tracer = Tracer()
        build_sample(tracer)
        rendered = tracer.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("search [query='q']")
        assert "├─ step:lookup" in rendered
        assert "└─ step:execute [rows=3]" in rendered
        assert "   └─ plan [cache='miss']" in rendered
        assert all("ms" in line for line in lines)


class TestNullTracer:
    def test_disabled_and_returns_shared_span(self):
        assert NULL_TRACER.enabled is False
        first = NULL_TRACER.span("a", key=1)
        second = NULL_TRACER.span("b")
        assert first is second  # one preallocated no-op span

    def test_null_span_is_a_noop_context_manager(self):
        span = NULL_TRACER.span("anything")
        with span as entered:
            entered.set(rows=5)
        assert entered is span


class TestActivate:
    def test_default_active_tracer_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_activate_installs_and_restores(self):
        tracer = Tracer()
        with activate(tracer) as installed:
            assert installed is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_activate_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with activate(tracer):
                raise RuntimeError("x")
        assert current_tracer() is NULL_TRACER

    def test_activate_nests(self):
        outer, inner = Tracer(), Tracer()
        with activate(outer):
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
