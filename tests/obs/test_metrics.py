"""Tests for the metrics registry: metric types, snapshots, exports."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_snapshot_and_reset(self):
        counter = Counter("c")
        counter.inc(3)
        assert counter._snapshot() == 3
        counter._reset()
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 12.0


class TestHistogram:
    def test_observe_tracks_count_sum_min_max(self):
        histogram = Histogram("h")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 6.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == 2.0

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_snapshot_shape(self):
        histogram = Histogram("h")
        histogram.observe(4.0)
        assert histogram._snapshot() == {
            "count": 1, "sum": 4.0, "mean": 4.0, "min": 4.0, "max": 4.0,
        }


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert "a" in reg
        assert "b" not in reg

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered as counter"):
            reg.gauge("x")

    def test_reset_zeroes_in_place_so_handles_survive(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        histogram = reg.histogram("h")
        counter.inc(7)
        histogram.observe(1.0)
        reg.reset()
        assert counter.value == 0
        assert histogram.count == 0
        assert reg.counter("c") is counter  # same object, not replaced
        counter.inc()
        assert reg.counter("c").value == 1

    def test_to_dict_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.gauge("b.gauge").set(2)
        reg.counter("a.counter").inc()
        snapshot = reg.to_dict()
        assert list(snapshot) == ["a.counter", "b.gauge"]
        assert snapshot["a.counter"] == {"kind": "counter", "value": 1}
        assert snapshot["b.gauge"] == {"kind": "gauge", "value": 2}

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        assert json.loads(reg.to_json()) == {
            "a": {"kind": "counter", "value": 3}
        }

    def test_enabled_flag_defaults_true(self):
        assert MetricsRegistry().enabled is True
        assert MetricsRegistry(enabled=False).enabled is False


class TestPrometheusRendering:
    def test_names_are_prefixed_and_flattened(self):
        reg = MetricsRegistry()
        reg.counter("plan_cache.hits").inc(4)
        rendered = reg.render_prometheus()
        assert "# TYPE repro_plan_cache_hits counter" in rendered
        assert "repro_plan_cache_hits 4" in rendered

    def test_histogram_renders_as_summary(self):
        reg = MetricsRegistry()
        histogram = reg.histogram("step.seconds")
        histogram.observe(0.5)
        histogram.observe(1.5)
        rendered = reg.render_prometheus()
        assert "# TYPE repro_step_seconds summary" in rendered
        assert "repro_step_seconds_count 2" in rendered
        assert "repro_step_seconds_sum 2.0" in rendered

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestProcessRegistry:
    def test_registry_is_a_singleton(self):
        assert registry() is registry()

    def test_engine_layers_registered_on_import(self):
        import repro.sqlengine.planner.physical  # noqa: F401

        reg = registry()
        for name in (
            "engine.rows_scanned",
            "engine.rows_filtered",
            "engine.rows_joined",
            "engine.batches_produced",
        ):
            assert name in reg
