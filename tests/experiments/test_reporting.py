"""Tests for paper-style table rendering."""

from repro.experiments.reporting import (
    format_rows,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
)


class TestFormatRows:
    def test_alignment(self):
        rendered = format_rows(("A", "LongHeader"), [(1, "x"), (22, "yy")])
        lines = rendered.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert all(len(line) <= len(lines[0]) + 2 for line in lines)

    def test_cells_stringified(self):
        rendered = format_rows(("n",), [(1.5,), (None,)])
        assert "1.5" in rendered and "None" in rendered


class TestPaperTables:
    def test_table1_includes_paper_column(self, warehouse):
        rendered = format_table1(warehouse.definition.schema_statistics())
        assert "472" in rendered  # the paper's physical table count
        assert "conceptual_entities" in rendered

    def test_table2_lists_all_queries(self):
        rendered = format_table2()
        for qid in ("1.0", "9.0", "10.0"):
            assert qid in rendered

    def test_table3_renders_outcomes(self, experiment_outcomes):
        rendered = format_table3(experiment_outcomes)
        assert "P(best)" in rendered
        assert "paperP" in rendered
        assert rendered.count("\n") >= 14  # header + separator + 13 rows

    def test_table4_renders_runtimes(self, experiment_outcomes):
        rendered = format_table4(experiment_outcomes)
        assert "Cmplx" in rendered
        assert "SODA(s)" in rendered
        assert "40min" in rendered  # the paper's Q10.0 total
