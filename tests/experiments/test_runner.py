"""Tests for the experiment runner (Tables 3 and 4 shape assertions).

These are the headline reproduction checks: the *shape* of the paper's
results must hold on the finbank warehouse — who succeeds, who fails,
and in which way.
"""

import pytest

from repro.core.evaluation import PrecisionRecall
from repro.experiments.runner import ExperimentRunner, QueryOutcome
from repro.experiments.workload import query_by_id


def outcome_by_id(outcomes, qid):
    return next(o for o in outcomes if o.query.qid == qid)


class TestTable3Shape:
    PERFECT = ("1.0", "2.3", "3.1", "3.2", "4.0", "6.0", "8.0", "10.0")

    @pytest.mark.parametrize("qid", PERFECT)
    def test_perfect_queries(self, experiment_outcomes, qid):
        best = outcome_by_id(experiment_outcomes, qid).best
        assert best.precision == 1.0, qid
        assert best.recall == 1.0, qid

    def test_q21_low_recall_from_historization(self, experiment_outcomes):
        # paper: P=1.0, R=0.2 — the name history is not joinable
        best = outcome_by_id(experiment_outcomes, "2.1").best
        assert best.precision == 1.0
        assert best.recall == pytest.approx(0.2)

    def test_q22_same_as_q21(self, experiment_outcomes):
        best = outcome_by_id(experiment_outcomes, "2.2").best
        assert best.precision == 1.0
        assert best.recall == pytest.approx(0.2)

    def test_q50_degraded_by_sibling_bridge(self, experiment_outcomes):
        # paper: P=0.12, R=0.56 — partial failure, not total
        best = outcome_by_id(experiment_outcomes, "5.0").best
        assert 0.0 < best.precision < 1.0
        assert 0.0 < best.recall < 1.0

    def test_q70_half_precision_full_recall(self, experiment_outcomes):
        # paper: P=0.50, R=1.00 — SODA misses the executed-only restriction
        best = outcome_by_id(experiment_outcomes, "7.0").best
        assert best.recall == 1.0
        assert 0.3 <= best.precision <= 0.7

    def test_q90_total_failure(self, experiment_outcomes):
        # paper: P=0, R=0 — wrong join path for the count
        best = outcome_by_id(experiment_outcomes, "9.0").best
        assert best.is_zero

    def test_q21_result_split_matches_paper(self, experiment_outcomes):
        # paper: 1 result with P,R > 0 and 3 results with P,R = 0
        outcome = outcome_by_id(experiment_outcomes, "2.1")
        assert outcome.n_positive == 1
        assert outcome.n_zero == 3

    def test_counts_partition(self, experiment_outcomes):
        for outcome in experiment_outcomes:
            assert outcome.n_positive + outcome.n_zero == outcome.n_results


class TestTable4Shape:
    def test_complexities_match_paper_where_engineered(
        self, experiment_outcomes
    ):
        # Q1.0 and Q2.1 complexities are reproduced exactly
        assert outcome_by_id(experiment_outcomes, "1.0").complexity == 3
        assert outcome_by_id(experiment_outcomes, "2.1").complexity == 4
        assert outcome_by_id(experiment_outcomes, "2.2").complexity == 12

    def test_soda_time_is_small(self, experiment_outcomes):
        # the paper: SODA analysis is seconds, execution dominates; on our
        # scale both are sub-second but SODA must stay well bounded
        for outcome in experiment_outcomes:
            assert outcome.soda_seconds < 5.0

    def test_step_timings_present(self, experiment_outcomes):
        for outcome in experiment_outcomes:
            assert set(outcome.step_timings) == {
                "lookup", "rank", "tables", "filters", "sql"
            }

    def test_results_bounded_by_top_n(self, experiment_outcomes):
        for outcome in experiment_outcomes:
            assert outcome.n_results <= 10


class TestRunnerMechanics:
    def test_single_query_run(self, warehouse):
        runner = ExperimentRunner(warehouse=warehouse)
        outcome = runner.run_query(query_by_id("3.1"))
        assert isinstance(outcome, QueryOutcome)
        assert outcome.statements

    def test_empty_outcome_best_is_zero(self):
        outcome = QueryOutcome(
            query=query_by_id("1.0"),
            complexity=0,
            statements=[],
            soda_seconds=0.0,
            execute_seconds=0.0,
            step_timings={},
        )
        assert outcome.best.is_zero
        assert outcome.n_results == 0

    def test_statements_carry_metrics(self, experiment_outcomes):
        for outcome in experiment_outcomes:
            for statement in outcome.statements:
                assert isinstance(statement.metrics, PrecisionRecall)
                assert statement.sql.startswith("SELECT")
