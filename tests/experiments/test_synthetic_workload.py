"""Tests for the synthetic workload generator and scalability study."""

import pytest

from repro.core.soda import Soda, SodaConfig
from repro.experiments.synthetic_workload import (
    SyntheticQuery,
    build_synthetic_warehouse,
    generate_workload,
    run_scalability_study,
)
from repro.warehouse.synthetic import SyntheticConfig


@pytest.fixture(scope="module")
def synthetic_warehouse():
    return build_synthetic_warehouse(SyntheticConfig().scaled(0.05))


class TestPopulation:
    def test_every_table_populated(self, synthetic_warehouse):
        counts = synthetic_warehouse.row_counts()
        assert counts and all(count == 5 for count in counts.values())

    def test_inverted_index_has_tokens(self, synthetic_warehouse):
        assert synthetic_warehouse.inverted.entry_count() > 0

    def test_deterministic(self):
        config = SyntheticConfig().scaled(0.05)
        a = build_synthetic_warehouse(config)
        b = build_synthetic_warehouse(config)
        name = a.database.table_names()[0]
        assert a.database.execute(f"SELECT * FROM {name}").rows == (
            b.database.execute(f"SELECT * FROM {name}").rows
        )


class TestWorkload:
    def test_requested_count(self, synthetic_warehouse):
        workload = generate_workload(synthetic_warehouse.definition, count=9)
        assert len(workload) == 9

    def test_kinds_mixed(self, synthetic_warehouse):
        workload = generate_workload(synthetic_warehouse.definition, count=9)
        kinds = {query.kind for query in workload}
        assert kinds == {"entity", "attribute", "mixed"}

    def test_queries_draw_from_schema_vocabulary(self, synthetic_warehouse):
        labels = {
            entity.label or entity.name.replace("_", " ").lower()
            for entity in synthetic_warehouse.definition.logical_entities
        }
        workload = generate_workload(synthetic_warehouse.definition, count=6)
        for query in workload:
            if query.kind == "entity":
                assert query.text in labels

    def test_deterministic_given_seed(self, synthetic_warehouse):
        first = generate_workload(synthetic_warehouse.definition, seed=5)
        second = generate_workload(synthetic_warehouse.definition, seed=5)
        assert first == second

    def test_soda_answers_entity_queries(self, synthetic_warehouse):
        soda = Soda(synthetic_warehouse, SodaConfig())
        workload = generate_workload(synthetic_warehouse.definition, count=6)
        answered = sum(
            1
            for query in workload
            if soda.search(query.text, execute=False).statements
        )
        assert answered >= len(workload) // 2


class TestScalabilityStudy:
    def test_study_returns_points(self):
        points = run_scalability_study(
            factors=(0.03, 0.06), queries_per_scale=3
        )
        assert len(points) == 2
        assert points[0].tables < points[1].tables
        for point in points:
            assert point.mean_total_ms > 0
            assert point.answered >= 0
