"""Tests for the Table 2 workload definition."""

import pytest

from repro.experiments.workload import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    WORKLOAD,
    query_by_id,
)
from repro.sqlengine.parser import parse_select


class TestWorkloadShape:
    def test_thirteen_queries(self):
        assert len(WORKLOAD) == 13

    def test_ids_match_paper(self):
        assert [q.qid for q in WORKLOAD] == [
            "1.0", "2.1", "2.2", "2.3", "3.1", "3.2", "4.0",
            "5.0", "6.0", "7.0", "8.0", "9.0", "10.0",
        ]

    def test_all_type_tags_covered(self):
        tags = {tag for q in WORKLOAD for tag in q.types}
        assert tags == {"B", "S", "D", "I", "P", "A"}

    def test_gold_sql_parses(self):
        for query in WORKLOAD:
            for sql in query.gold:
                parse_select(sql)

    def test_gold_executes(self, warehouse):
        for query in WORKLOAD:
            for sql in query.gold:
                warehouse.database.execute(sql)

    def test_q5_gold_has_two_statements(self):
        assert len(query_by_id("5.0").gold) == 2

    def test_query_by_id(self):
        assert query_by_id("2.1").text == "Sara"
        with pytest.raises(KeyError):
            query_by_id("99")

    def test_uses_helper(self):
        assert query_by_id("9.0").uses("A")
        assert not query_by_id("3.1").uses("A")

    def test_paper_reference_tables_cover_all_queries(self):
        ids = {q.qid for q in WORKLOAD}
        assert set(PAPER_TABLE3) == ids
        assert set(PAPER_TABLE4) == ids


class TestGoldSemantics:
    def test_q21_gold_finds_five_saras(self, warehouse):
        rows = warehouse.database.execute(query_by_id("2.1").gold[0]).rows
        assert len(set(rows)) == 5

    def test_q23_gold_finds_one_sara(self, warehouse):
        rows = warehouse.database.execute(query_by_id("2.3").gold[0]).rows
        assert len(rows) == 1

    def test_q31_gold_single_org(self, warehouse):
        rows = warehouse.database.execute(query_by_id("3.1").gold[0]).rows
        assert rows == [(1001, "Credit Suisse")]

    def test_q70_gold_subset_of_yen_orders(self, warehouse):
        executed = warehouse.database.execute(query_by_id("7.0").gold[0]).rows
        all_yen = warehouse.database.execute(
            "SELECT trade_orders.id FROM trade_orders "
            "WHERE currency_cd = 'YEN'"
        ).rows
        assert 0 < len(executed) < len(all_yen)

    def test_q90_gold_counts_via_bridge(self, warehouse):
        bridge_count = warehouse.database.execute(
            query_by_id("9.0").gold[0]
        ).rows[0][0]
        stale_count = warehouse.database.execute(
            "SELECT count(*) FROM parties, individuals, addresses "
            "WHERE parties.id = individuals.id "
            "AND individuals.domicile_adr_id = addresses.id "
            "AND addresses.country = 'Switzerland'"
        ).rows[0][0]
        assert bridge_count > stale_count > 0
