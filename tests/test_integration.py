"""End-to-end integration tests at the public-API level.

These are the headline claims of the paper, asserted through the same
interface a downstream user would adopt (`repro.Soda`, `repro.
build_minibank`, `repro.evaluate_sql`).
"""

import pytest

from repro import (
    Soda,
    SodaConfig,
    build_minibank,
    evaluate_sql,
    parse_query,
)


class TestPublicApi:
    def test_package_exports(self):
        import repro

        for name in (
            "Soda", "SodaConfig", "build_minibank", "Database", "Warehouse",
            "TripleStore", "evaluate_sql", "parse_query", "__version__",
        ):
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestPaperHeadlines:
    """One assertion per headline claim of the paper."""

    @pytest.fixture(scope="class")
    def soda(self, warehouse):
        return Soda(warehouse)

    def test_google_like_search_returns_ranked_sql(self, soda):
        result = soda.search("customers Zurich financial instruments")
        assert result.statements
        scores = [s.score for s in result.statements]
        assert scores == sorted(scores, reverse=True)
        for statement in result.statements:
            assert statement.sql.startswith("SELECT")

    def test_generated_sql_is_executable(self, soda, warehouse):
        # "executable statements ... that can be executed on the DW"
        for text in ("Sara Guttinger", "gold agreement", "Credit Suisse"):
            result = soda.search(text, execute=False)
            for statement in result.statements:
                if statement.estimated_rows < 100_000:
                    warehouse.database.execute(statement.sql)

    def test_disambiguation_via_join_and_inheritance(self, soda):
        # "SODA can disambiguate the meaning of words by taking into
        # account join and inheritance relationships"
        result = soda.search("Credit Suisse", execute=False)
        table_sets = {s.statement.tables for s in result.statements}
        assert len(table_sets) >= 2  # organization vs agreement readings

    def test_metadata_defined_predicate(self, soda):
        result = soda.search("wealthy customers", execute=False)
        assert "individuals.salary >= 1000000" in result.best.sql

    def test_metadata_defined_aggregation(self, soda):
        result = soda.search("Top 10 trading volume customers", execute=False)
        assert "sum(fi_transactions.amount)" in result.best.sql

    def test_high_precision_high_recall_overall(self, warehouse, soda):
        # "the generated queries have high precision and recall compared
        # to the manually written gold standard queries"
        from repro.experiments.workload import WORKLOAD

        perfect = 0
        for query in WORKLOAD:
            result = soda.search(query.text, execute=False)
            best = None
            for statement in result.statements:
                metrics = evaluate_sql(
                    warehouse.database, statement.sql, query.gold,
                    estimated_rows=statement.estimated_rows,
                )
                if best is None or (
                    metrics.precision, metrics.recall
                ) > (best.precision, best.recall):
                    best = metrics
            if best is not None and best.precision == 1.0 and best.recall == 1.0:
                perfect += 1
        assert perfect >= 8  # the paper's "majority of the queries"

    def test_mitigation_via_metadata_updates(self):
        # "SODA allows mitigating inconsistencies ... by updating the
        # respective metadata graph"
        warehouse = build_minibank(scale=0.5)
        warehouse.annotate_join("j_indiv_name_hist")
        soda = Soda(warehouse)
        result = soda.search("Sara given name", execute=False)
        hist_connected = [
            s for s in result.statements
            if "individual_name_hist" in s.statement.tables
            and "individuals" in s.statement.tables
            and not s.disconnected
        ]
        assert hist_connected

    def test_no_sql_knowledge_required(self, soda):
        # a conversational query from the introduction works verbatim
        result = soda.search(
            "Show me all my wealthy customers who live in Zurich"
        )
        assert result.best is not None
        assert result.best.snippet is not None


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = Soda(build_minibank(seed=3, scale=0.25))
        b = Soda(build_minibank(seed=3, scale=0.25))
        query = "customers Zurich financial instruments"
        assert a.search(query, execute=False).sql_texts() == (
            b.search(query, execute=False).sql_texts()
        )

    def test_repeated_search_stable(self, soda):
        first = soda.search("Sara", execute=False).sql_texts()
        second = soda.search("Sara", execute=False).sql_texts()
        assert first == second
