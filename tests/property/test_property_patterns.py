"""Property-based tests for the graph pattern matcher.

The matcher is checked against a brute-force model: for random small
graphs and the Table/Column patterns, the set of matching nodes must
equal the set computed by naive triple filtering.
"""

from hypothesis import given, settings, strategies as st

from repro.graph.node import Text, Vocab, uri
from repro.graph.pattern import PatternLibrary, match_pattern, parse_pattern
from repro.graph.triples import TripleStore

settings.register_profile("patterns", max_examples=50, deadline=None)
settings.load_profile("patterns")

RESOLVER = {
    "type": Vocab.TYPE,
    "tablename": Vocab.TABLENAME,
    "columnname": Vocab.COLUMNNAME,
    "column": Vocab.COLUMN,
    "physical_table": Vocab.PHYSICAL_TABLE,
    "physical_column": Vocab.PHYSICAL_COLUMN,
}

TABLE_PATTERN = parse_pattern(
    "table", "( x tablename t:y ) & ( x type physical_table )", RESOLVER
)
COLUMN_PATTERN = parse_pattern(
    "column",
    "( x columnname t:y ) & ( x type physical_column ) & ( z column x )",
    RESOLVER,
)


def node(i):
    return uri("n", str(i))


# random graph: per node, independent flags for tablename/type/column edges
graph_strategy = st.lists(
    st.tuples(
        st.booleans(),  # has tablename text
        st.booleans(),  # typed as physical_table
        st.booleans(),  # typed as physical_column + columnname
        st.integers(min_value=-1, max_value=9),  # incoming column edge from
    ),
    min_size=1,
    max_size=10,
)


def build(store_spec):
    store = TripleStore()
    for i, (has_name, is_table, is_column, owner) in enumerate(store_spec):
        if has_name:
            store.add(node(i), Vocab.TABLENAME, Text(f"t{i}"))
        if is_table:
            store.add(node(i), Vocab.TYPE, Vocab.PHYSICAL_TABLE)
        if is_column:
            store.add(node(i), Vocab.TYPE, Vocab.PHYSICAL_COLUMN)
            store.add(node(i), Vocab.COLUMNNAME, Text(f"c{i}"))
        if owner >= 0:
            store.add(node(owner), Vocab.COLUMN, node(i))
    return store


class TestAgainstBruteForce:
    @given(spec=graph_strategy)
    def test_table_pattern_matches_expected_nodes(self, spec):
        store = build(spec)
        got = {
            node(i)
            for i in range(len(spec))
            if match_pattern(store, TABLE_PATTERN, node(i))
        }
        expected = {
            node(i)
            for i, (has_name, is_table, __, __) in enumerate(spec)
            if has_name and is_table
        }
        assert got == expected

    @given(spec=graph_strategy)
    def test_column_pattern_requires_incoming_edge(self, spec):
        store = build(spec)
        owners = {i: owner for i, (__, __, __, owner) in enumerate(spec)}
        got = {
            node(i)
            for i in range(len(spec))
            if match_pattern(store, COLUMN_PATTERN, node(i))
        }
        expected = {
            node(i)
            for i, (__, __, is_column, owner) in enumerate(spec)
            if is_column and owner >= 0
        }
        assert got == expected

    @given(spec=graph_strategy)
    def test_bindings_always_include_tested_var(self, spec):
        store = build(spec)
        for i in range(len(spec)):
            for binding in match_pattern(store, TABLE_PATTERN, node(i)):
                assert binding["x"] == node(i)
                assert isinstance(binding["y"], Text)

    @given(spec=graph_strategy)
    def test_matching_is_deterministic(self, spec):
        store = build(spec)
        for i in range(len(spec)):
            first = match_pattern(store, COLUMN_PATTERN, node(i))
            second = match_pattern(store, COLUMN_PATTERN, node(i))
            assert first == second
