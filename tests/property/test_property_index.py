"""Property-based tests for the inverted/classification indexes."""

from hypothesis import given, settings, strategies as st

from repro.index.classification import (
    ClassificationIndex,
    EntrySource,
    depluralize,
    normalize_term,
)
from repro.index.inverted import InvertedIndex, tokenize_text

settings.register_profile("index", max_examples=80, deadline=None)
settings.load_profile("index")

words = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
values = st.lists(words, min_size=1, max_size=4).map(" ".join)


class TestInvertedIndexModel:
    @given(stored=st.lists(values, max_size=25), probe=words)
    def test_lookup_finds_exactly_containing_values(self, stored, probe):
        index = InvertedIndex()
        for i, value in enumerate(stored):
            index.add("t", "c", value)
        got = {p.value for p in index.lookup(probe)}
        expected = {v for v in stored if probe in tokenize_text(v)}
        assert got == expected

    @given(stored=st.lists(values, max_size=25),
           phrase=st.lists(words, min_size=1, max_size=3).map(" ".join))
    def test_phrase_postings_subset_of_token_postings(self, stored, phrase):
        index = InvertedIndex()
        for value in stored:
            index.add("t", "c", value)
        phrase_values = {p.value for p in index.lookup_phrase(phrase)}
        for token in tokenize_text(phrase):
            token_values = {p.value for p in index.lookup(token)}
            assert phrase_values <= token_values

    @given(stored=st.lists(values, max_size=25))
    def test_phrase_contiguity(self, stored):
        index = InvertedIndex()
        for value in stored:
            index.add("t", "c", value)
        for value in stored:
            # every stored value matches itself as a phrase
            assert value in {p.value for p in index.lookup_phrase(value)}

    @given(stored=st.lists(values, max_size=25))
    def test_entry_count(self, stored):
        index = InvertedIndex()
        for value in stored:
            index.add("t", "c", value)
        assert index.entry_count() == len(stored)


class TestNormalisation:
    @given(term=st.text(max_size=20))
    def test_normalize_idempotent(self, term):
        once = normalize_term(term)
        assert normalize_term(once) == once

    @given(term=st.text(alphabet="abcdefgh s", max_size=20))
    def test_depluralize_idempotent(self, term):
        once = depluralize(term)
        assert depluralize(once) == once

    @given(word=st.text(alphabet="abcdefgh", min_size=3, max_size=6))
    def test_plural_and_singular_unify(self, word):
        # long enough, not already ending in s: the naive rule unifies
        if word.endswith("s"):
            return
        assert depluralize(word + "s") == depluralize(word)


class TestClassificationModel:
    @given(terms=st.lists(st.tuples(values, st.integers(0, 5)), max_size=20),
           probe=values)
    def test_lookup_consistent_with_membership(self, terms, probe):
        index = ClassificationIndex()
        for term, i in terms:
            index.add_term(term, f"soda://x/{i}", EntrySource.LOGICAL_SCHEMA)
        assert bool(index.lookup(probe)) == (probe in index)

    @given(terms=st.lists(values, min_size=1, max_size=20))
    def test_every_added_term_findable(self, terms):
        index = ClassificationIndex()
        for i, term in enumerate(terms):
            index.add_term(term, f"soda://x/{i}", EntrySource.DBPEDIA)
        for term in terms:
            assert index.lookup(term)

    @given(terms=st.lists(values, min_size=1, max_size=20))
    def test_max_term_words_bound(self, terms):
        index = ClassificationIndex()
        for i, term in enumerate(terms):
            index.add_term(term, f"soda://x/{i}", EntrySource.DBPEDIA)
        longest = max(len(normalize_term(t).split(" ")) for t in terms)
        assert index.max_term_words >= longest
