"""Property tests for the DML mutation path.

Two invariants under *any* interleaving of INSERT/UPDATE/DELETE:

* the tuple-list storage and the columnar storage of every table stay
  element-for-element identical (they share one mutation path, so a
  divergence means that path wrote one layout and not the other);
* the write-through-maintained inverted index equals a from-scratch
  rebuild over the final catalog (posting lists, value counts, phrase
  results).

Operations are generated as abstract steps and applied through the SQL
front end, so the whole stack (parser → dml executor → catalog →
observers) is exercised, in both execution modes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.inverted import InvertedIndex
from repro.index.maintenance import attach_maintainer
from repro.sqlengine.database import Database

settings.register_profile("dml", max_examples=40, deadline=None)
settings.load_profile("dml")

#: a tiny vocabulary so updates/deletes frequently hit indexed values
#: (shared tokens across values exercise posting-list refcounting)
WORDS = ["alpha", "beta", "gamma", "delta", "zurich", "basel", "gold"]

texts = st.one_of(
    st.none(),
    st.builds(
        lambda a, b: f"{WORDS[a]} {WORDS[b]}",
        st.integers(0, len(WORDS) - 1),
        st.integers(0, len(WORDS) - 1),
    ),
)
ints = st.integers(min_value=0, max_value=9)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), ints, texts),
        st.tuples(st.just("update_label"), ints, texts),
        st.tuples(st.just("update_grp"), ints, ints),
        st.tuples(st.just("delete"), ints),
        st.tuples(st.just("delete_label"), texts),
    ),
    min_size=0,
    max_size=30,
)


def sql_text(value):
    return "NULL" if value is None else f"'{value}'"


def apply_operations(db: Database, ops) -> None:
    next_id = 1000
    for op in ops:
        kind = op[0]
        if kind == "insert":
            db.execute(
                f"INSERT INTO t VALUES ({next_id}, {op[1]}, "
                f"{sql_text(op[2])})"
            )
            next_id += 1
        elif kind == "update_label":
            db.execute(
                f"UPDATE t SET label = {sql_text(op[2])} WHERE grp = {op[1]}"
            )
        elif kind == "update_grp":
            db.execute(f"UPDATE t SET grp = {op[2]} WHERE grp = {op[1]}")
        elif kind == "delete":
            db.execute(f"DELETE FROM t WHERE grp = {op[1]}")
        else:  # delete_label
            if op[1] is None:
                db.execute("DELETE FROM t WHERE label IS NULL")
            else:
                db.execute(f"DELETE FROM t WHERE label = {sql_text(op[1])}")


def make_db(mode: str) -> Database:
    db = Database(execution_mode=mode)
    db.execute("CREATE TABLE t (id INT, grp INT, label TEXT)")
    db.insert_rows(
        "t",
        [
            (i, i % 10, f"{WORDS[i % len(WORDS)]} {WORDS[(i * 3) % len(WORDS)]}")
            for i in range(25)
        ],
    )
    db.execute("UPDATE t SET label = NULL WHERE id = 7")
    return db


def index_state(index: InvertedIndex) -> dict:
    return {
        "summary": index.size_summary(),
        "lookups": {word: index.lookup(word) for word in WORDS},
        "phrases": {
            f"{a} {b}": index.lookup_phrase(f"{a} {b}")
            for a in WORDS[:3]
            for b in WORDS[:3]
        },
    }


class TestStorageSync:
    @given(ops=operations, mode=st.sampled_from(["row", "batch"]))
    def test_rows_and_columns_stay_identical(self, ops, mode):
        db = make_db(mode)
        apply_operations(db, ops)
        table = db.table("t")
        columns = [table.column_data(i) for i in range(len(table.columns))]
        assert all(len(c) == len(table.rows) for c in columns)
        rebuilt = [
            tuple(column[i] for column in columns)
            for i in range(len(table.rows))
        ]
        assert rebuilt == table.rows

    @given(ops=operations)
    def test_row_and_batch_modes_converge(self, ops):
        row_db, batch_db = make_db("row"), make_db("batch")
        apply_operations(row_db, ops)
        apply_operations(batch_db, ops)
        assert row_db.table("t").rows == batch_db.table("t").rows


class TestMaintainedIndexParity:
    @given(ops=operations, mode=st.sampled_from(["row", "batch"]))
    def test_incremental_equals_rebuild(self, ops, mode):
        db = make_db(mode)
        maintained = InvertedIndex.build(db.catalog)
        attach_maintainer(db.catalog, maintained)
        apply_operations(db, ops)
        rebuilt = InvertedIndex.build(db.catalog)
        assert index_state(maintained) == index_state(rebuilt)
