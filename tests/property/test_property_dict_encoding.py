"""Property tests for dictionary-encoded TEXT column maintenance.

Invariants under *any* interleaving of INSERT/UPDATE/DELETE, applied
through the SQL front end in both execution modes:

* decoding every column's code list reproduces the plain value storage
  element for element (codes, values and the tuple list share one
  mutation path — a divergence means a write missed one layout);
* the dictionary's refcounts equal the actual value frequencies, its
  ``code_of`` map is exactly the inverse of the live slots of
  ``values``, and dead codes are garbage-collected onto the free list
  (value slot cleared, refcount zero) — no leaked entries after any
  UPDATE/DELETE storm;
* a column whose live cardinality outgrows the threshold drops its
  dictionary and the engine keeps producing row-mode-identical results
  from plain batches.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine.database import Database

settings.register_profile("dict_encoding", max_examples=40, deadline=None)
settings.load_profile("dict_encoding")

#: tiny vocabulary so updates/deletes frequently hit shared codes
WORDS = ["alpha", "beta", "gamma", "delta", "zurich", "basel", "gold"]

texts = st.one_of(st.none(), st.sampled_from(WORDS))
ints = st.integers(min_value=0, max_value=9)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), ints, texts),
        st.tuples(st.just("update_label"), ints, texts),
        st.tuples(st.just("update_grp"), ints, ints),
        st.tuples(st.just("delete"), ints),
        st.tuples(st.just("delete_label"), texts),
    ),
    min_size=0,
    max_size=30,
)


def sql_text(value):
    return "NULL" if value is None else f"'{value}'"


def apply_operations(db: Database, ops) -> None:
    next_id = 1000
    for op in ops:
        kind = op[0]
        if kind == "insert":
            db.execute(
                f"INSERT INTO t VALUES ({next_id}, {op[1]}, "
                f"{sql_text(op[2])})"
            )
            next_id += 1
        elif kind == "update_label":
            db.execute(
                f"UPDATE t SET label = {sql_text(op[2])} WHERE grp = {op[1]}"
            )
        elif kind == "update_grp":
            db.execute(f"UPDATE t SET grp = {op[2]} WHERE grp = {op[1]}")
        elif kind == "delete":
            db.execute(f"DELETE FROM t WHERE grp = {op[1]}")
        else:  # delete_label
            if op[1] is None:
                db.execute("DELETE FROM t WHERE label IS NULL")
            else:
                db.execute(f"DELETE FROM t WHERE label = {sql_text(op[1])}")


def make_db(mode: str, threshold: "int | None" = None) -> Database:
    db = Database(execution_mode=mode, dict_encoding_threshold=threshold)
    db.execute("CREATE TABLE t (id INT, grp INT, label TEXT)")
    db.insert_rows(
        "t",
        [(i, i % 10, WORDS[(i * 3) % len(WORDS)]) for i in range(25)],
    )
    db.execute("UPDATE t SET label = NULL WHERE id = 7")
    return db


def assert_dictionary_consistent(table) -> None:
    """Codes decode to the value store; refcounts/maps are exact."""
    for index in range(len(table.columns)):
        dictionary = table.column_dictionary(index)
        if dictionary is None:
            assert table.column_codes(index) is None
            continue
        codes = table.column_codes(index)
        values = table.column_data(index)
        assert len(codes) == len(values) == len(table.rows)
        decoded = [
            None if code is None else dictionary.values[code]
            for code in codes
        ]
        assert decoded == values
        # refcounts match the actual value frequencies
        frequencies = Counter(value for value in values if value is not None)
        for value, code in dictionary.code_of.items():
            assert dictionary.values[code] == value
            assert dictionary.refcounts[code] == frequencies[value]
        assert set(dictionary.code_of) == set(frequencies)
        # dead codes are collected: slot cleared, refcount 0, free-listed
        live = set(dictionary.code_of.values())
        for code, value in enumerate(dictionary.values):
            if code in live:
                assert value is not None
            else:
                assert value is None
                assert dictionary.refcounts[code] == 0
                assert code in dictionary.free_codes


class TestDictionaryMaintenance:
    @given(ops=operations, mode=st.sampled_from(["row", "batch"]))
    def test_codes_and_refcounts_stay_consistent(self, ops, mode):
        db = make_db(mode)
        apply_operations(db, ops)
        assert_dictionary_consistent(db.table("t"))

    @given(ops=operations)
    def test_encoded_and_unencoded_results_identical(self, ops):
        encoded = make_db("batch")
        unencoded = make_db("batch", threshold=0)
        apply_operations(encoded, ops)
        apply_operations(unencoded, ops)
        assert encoded.table("t").column_dictionary(2) is not None
        assert unencoded.table("t").column_dictionary(2) is None
        for sql in (
            "SELECT id, grp, label FROM t ORDER BY id",
            "SELECT label, count(*) FROM t GROUP BY label "
            "ORDER BY count(*) DESC, label",
            "SELECT DISTINCT label FROM t ORDER BY label",
            "SELECT id FROM t WHERE label = 'alpha' ORDER BY id",
            "SELECT id FROM t WHERE label IN ('beta', 'gold') ORDER BY id",
            "SELECT id FROM t WHERE label LIKE '%a%' ORDER BY id LIMIT 5",
        ):
            assert encoded.execute(sql).rows == unencoded.execute(sql).rows

    @given(ops=operations)
    def test_threshold_overflow_disables_cleanly(self, ops):
        # threshold 3 < vocabulary size: inserts eventually disable the
        # dictionary; results must stay identical to the default engine
        tight = make_db("batch", threshold=3)
        loose = make_db("batch")
        apply_operations(tight, ops)
        apply_operations(loose, ops)
        assert_dictionary_consistent(tight.table("t"))
        sql = "SELECT id, grp, label FROM t ORDER BY id"
        assert tight.execute(sql).rows == loose.execute(sql).rows
