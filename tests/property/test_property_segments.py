"""Property tests for the frozen-segment + delta storage layout.

For *any* freeze threshold and *any* interleaving of
INSERT/UPDATE/DELETE applied through the SQL front end, a segmented
table must be indistinguishable from a flat one:

* the flat tuple list and the segment view (live segment rows followed
  by the delta) stay element-for-element identical, and every column
  slice a batch scan could take agrees with the flat columnar storage;
* every SELECT — row mode on the flat engine vs batch mode over
  pinned segment snapshots — returns byte-identical results;
* the layout accounting holds: ``frozen_live + delta_rows`` equals the
  live row count and no segment is ever more than half dead.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine.config import EngineConfig
from repro.sqlengine.database import Database

settings.register_profile("segments", max_examples=40, deadline=None)
settings.load_profile("segments")


def op_strategy():
    insert = st.tuples(
        st.just("insert"),
        st.integers(min_value=1, max_value=5),
    )
    update = st.tuples(
        st.just("update"),
        st.integers(min_value=0, max_value=9),  # grp bucket to touch
    )
    delete = st.tuples(
        st.just("delete"),
        st.integers(min_value=0, max_value=9),
    )
    return st.one_of(insert, update, delete)


QUERIES = [
    "SELECT * FROM t",
    "SELECT grp, COUNT(*), SUM(val) FROM t GROUP BY grp",
    "SELECT id FROM t WHERE val > 50 ORDER BY id",
    "SELECT a.id, b.id FROM t a, t b WHERE a.id = b.id AND a.grp < 3",
]


def _apply(db: Database, ops, counter) -> None:
    for kind, arg in ops:
        if kind == "insert":
            values = ", ".join(
                f"({counter[0] + i}, {(counter[0] + i) % 10}, "
                f"{(counter[0] + i) * 7 % 101})"
                for i in range(arg)
            )
            counter[0] += arg
            db.execute(f"INSERT INTO t VALUES {values}")
        elif kind == "update":
            db.execute(f"UPDATE t SET val = val + 1 WHERE grp = {arg}")
        else:
            db.execute(f"DELETE FROM t WHERE grp = {arg} AND val > 40")


class TestSegmentedFlatEquivalence:
    @given(
        threshold=st.integers(min_value=1, max_value=16),
        ops=st.lists(op_strategy(), min_size=1, max_size=12),
    )
    def test_segmented_scan_is_byte_identical_to_flat(self, threshold, ops):
        flat = Database(config=EngineConfig(execution_mode="row"))
        segmented = Database(
            config=EngineConfig(segment_rows=threshold)
        )
        for db in (flat, segmented):
            db.execute(
                "CREATE TABLE t (id INT PRIMARY KEY, grp INT, val INT)"
            )
            db.execute(
                "INSERT INTO t VALUES "
                + ", ".join(f"({i}, {i % 10}, {i * 7 % 101})"
                            for i in range(20))
            )
        counter_flat, counter_seg = [100], [100]
        _apply(flat, ops, counter_flat)
        _apply(segmented, ops, counter_seg)

        flat_table = flat.table("t")
        seg_table = segmented.table("t")
        # storage equivalence: rows, snapshot iteration, column slices
        assert seg_table.rows == flat_table.rows
        snapshot = seg_table.pin()
        assert list(snapshot.iter_rows()) == flat_table.rows
        total = snapshot.row_count
        for index in range(len(seg_table.columns)):
            flat_column = list(flat_table.column_data(index))
            assert snapshot.column_slice(index, 0, total) == flat_column
            # arbitrary partial slices (batch boundaries) agree too
            cut = max(1, total // 3)
            assert (
                snapshot.column_slice(index, cut, min(total, cut * 2))
                == flat_column[cut:cut * 2]
            )

        # engine equivalence: row mode on flat == batch over segments
        for sql in QUERIES:
            expected = flat.execute(sql)
            actual = segmented.execute(sql)
            assert actual.columns == expected.columns, sql
            assert actual.rows == expected.rows, sql

        # accounting: live rows split exactly into frozen + delta, and
        # compaction keeps every frozen segment at least half alive
        stats = seg_table.segment_stats()
        assert stats["frozen_live"] + stats["delta_rows"] == total
        for segment in seg_table._segments.segments:
            assert len(segment.tombstones) * 2 < max(1, len(segment.rows))
