"""Property-based tests for the relational engine.

Each property checks the engine against an independent Python-level
model: filters against list comprehensions, joins against nested loops,
aggregates against builtins, LIKE against a naive interpreter.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine.database import Database
from repro.sqlengine.expressions import like_to_regex

settings.register_profile("suite", max_examples=60, deadline=None)
settings.load_profile("suite")

names = st.text(
    alphabet="abcdefghij", min_size=1, max_size=6
)
ints = st.integers(min_value=-1000, max_value=1000)
rows_strategy = st.lists(
    st.tuples(ints, names, st.one_of(st.none(), ints)),
    min_size=0,
    max_size=40,
)


def make_db(rows):
    db = Database()
    db.create_table("t", [("id", "INT"), ("name", "TEXT"), ("v", "INT")])
    db.insert_rows("t", [(i, n, v) for i, (__, n, v) in enumerate(rows)])
    return db


class TestFilters:
    @given(rows=rows_strategy, threshold=ints)
    def test_comparison_filter_matches_python(self, rows, threshold):
        db = make_db(rows)
        got = db.execute(f"SELECT id FROM t WHERE v > {threshold}").column("id")
        expected = [
            i for i, (__, __, v) in enumerate(rows)
            if v is not None and v > threshold
        ]
        assert got == expected

    @given(rows=rows_strategy)
    def test_is_null_partition(self, rows):
        db = make_db(rows)
        nulls = db.execute("SELECT count(*) FROM t WHERE v IS NULL").rows[0][0]
        not_nulls = db.execute(
            "SELECT count(*) FROM t WHERE v IS NOT NULL"
        ).rows[0][0]
        assert nulls + not_nulls == len(rows)

    @given(rows=rows_strategy, low=ints, high=ints)
    def test_between_equals_two_comparisons(self, rows, low, high):
        db = make_db(rows)
        a = db.execute(
            f"SELECT id FROM t WHERE v BETWEEN {low} AND {high}"
        ).column("id")
        b = db.execute(
            f"SELECT id FROM t WHERE v >= {low} AND v <= {high}"
        ).column("id")
        assert a == b


class TestAggregates:
    @given(rows=rows_strategy)
    def test_count_star_is_row_count(self, rows):
        db = make_db(rows)
        assert db.execute("SELECT count(*) FROM t").rows[0][0] == len(rows)

    @given(rows=rows_strategy)
    def test_sum_matches_python(self, rows):
        db = make_db(rows)
        got = db.execute("SELECT sum(v) FROM t").rows[0][0]
        values = [v for __, __, v in rows if v is not None]
        assert got == (sum(values) if values else None)

    @given(rows=rows_strategy)
    def test_min_max_bound_all_values(self, rows):
        db = make_db(rows)
        low, high = db.execute("SELECT min(v), max(v) FROM t").rows[0]
        values = [v for __, __, v in rows if v is not None]
        if values:
            assert low == min(values) and high == max(values)
        else:
            assert low is None and high is None

    @given(rows=rows_strategy)
    def test_group_counts_sum_to_total(self, rows):
        db = make_db(rows)
        grouped = db.execute(
            "SELECT name, count(*) FROM t GROUP BY name"
        ).rows
        assert sum(count for __, count in grouped) == len(rows)
        names_seen = {n for __, n, __ in rows}
        assert {name for name, __ in grouped} == names_seen

    @given(rows=rows_strategy)
    def test_avg_consistent_with_sum_count(self, rows):
        db = make_db(rows)
        total, count, average = db.execute(
            "SELECT sum(v), count(v), avg(v) FROM t"
        ).rows[0]
        if count:
            assert math.isclose(average, total / count)
        else:
            assert average is None


class TestOrderLimit:
    @given(rows=rows_strategy)
    def test_order_by_sorts(self, rows):
        db = make_db(rows)
        got = db.execute(
            "SELECT v FROM t WHERE v IS NOT NULL ORDER BY v"
        ).column("v")
        assert got == sorted(got)

    @given(rows=rows_strategy, limit=st.integers(min_value=0, max_value=50))
    def test_limit_bounds_output(self, rows, limit):
        db = make_db(rows)
        got = db.execute(f"SELECT id FROM t LIMIT {limit}").rows
        assert len(got) == min(limit, len(rows))

    @given(rows=rows_strategy)
    def test_distinct_removes_duplicates_only(self, rows):
        db = make_db(rows)
        got = db.execute("SELECT DISTINCT name FROM t").column("name")
        assert len(got) == len(set(got))
        assert set(got) == {n for __, n, __ in rows}


class TestJoins:
    two_tables = st.tuples(
        st.lists(st.tuples(st.integers(0, 8), names), max_size=15),
        st.lists(st.tuples(st.integers(0, 8), ints), max_size=15),
    )

    @given(data=two_tables)
    def test_hash_join_matches_nested_loop_model(self, data):
        left, right = data
        db = Database()
        db.create_table("l", [("k", "INT"), ("a", "TEXT")])
        db.create_table("r", [("k", "INT"), ("b", "INT")])
        db.insert_rows("l", left)
        db.insert_rows("r", right)
        got = sorted(
            db.execute(
                "SELECT l.a, r.b FROM l, r WHERE l.k = r.k"
            ).rows
        )
        expected = sorted(
            (a, b)
            for lk, a in left
            for rk, b in right
            if lk == rk
        )
        assert got == expected

    @given(data=two_tables)
    def test_join_count_times_filter(self, data):
        left, right = data
        db = Database()
        db.create_table("l", [("k", "INT"), ("a", "TEXT")])
        db.create_table("r", [("k", "INT"), ("b", "INT")])
        db.insert_rows("l", left)
        db.insert_rows("r", right)
        cross = db.execute("SELECT count(*) FROM l, r").rows[0][0]
        assert cross == len(left) * len(right)


class TestLike:
    @given(
        value=st.text(alphabet="abc%_ ", max_size=12),
        pattern=st.text(alphabet="abc%_", max_size=6),
    )
    def test_like_matches_naive_interpreter(self, value, pattern):
        def naive(value, pattern):
            # recursive LIKE matcher (case-insensitive)
            v, p = value.lower(), pattern.lower()

            def rec(i, j):
                if j == len(p):
                    return i == len(v)
                if p[j] == "%":
                    return any(rec(k, j + 1) for k in range(i, len(v) + 1))
                if i < len(v) and (p[j] == "_" or p[j] == v[i]):
                    return rec(i + 1, j + 1)
                return False

            return rec(0, 0)

        got = like_to_regex(pattern).match(value) is not None
        assert got == naive(value, pattern)
