"""Property tests for transactions + durability.

For *any* sequence of DML statements interleaved with
BEGIN/COMMIT/ROLLBACK, run durably and killed by a fault injector at
an arbitrary WAL byte offset, the recovered database must be
byte-identical (fingerprint, rows, columnar stores) to an undo-free
oracle that executes only the statements acknowledged before the
crash — with a trailing rollback if the crash caught a transaction
open.  The oracle has no undo log, no WAL, and no recovery code, so
agreement means the whole durability stack (undo guards, commit
ordering, torn-tail truncation, replay) composes correctly.
"""

import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.sqlengine.database import Database
from repro.sqlengine.txn import FaultInjector, FileLogStorage, InjectedCrash

settings.register_profile("txn", max_examples=30, deadline=None)
settings.load_profile("txn")

SEED_SQL = [
    "CREATE TABLE t (id INT PRIMARY KEY, n INT, label TEXT)",
    "INSERT INTO t VALUES (1, 10, 'alpha'), (2, 20, 'beta'), "
    "(3, 30, NULL)",
]

WORDS = ["alpha", "beta", "gamma", "delta", "zurich"]

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(0, 9),
            st.sampled_from(WORDS),
        ),
        st.tuples(st.just("update"), st.integers(0, 9), st.integers(0, 99)),
        st.tuples(
            st.just("relabel"),
            st.integers(0, 9),
            st.one_of(st.none(), st.sampled_from(WORDS)),
        ),
        st.tuples(st.just("delete"), st.integers(0, 9)),
        st.tuples(st.just("begin")),
        st.tuples(st.just("commit")),
        st.tuples(st.just("rollback")),
    ),
    min_size=0,
    max_size=25,
)


def to_statements(operations) -> list:
    """Abstract ops -> valid SQL (protocol-invalid txn ops are dropped)."""
    statements = list(SEED_SQL)
    open_txn = False
    next_id = 100
    for op in operations:
        kind = op[0]
        if kind == "begin":
            if not open_txn:
                statements.append("BEGIN")
                open_txn = True
        elif kind in ("commit", "rollback"):
            if open_txn:
                statements.append(kind.upper())
                open_txn = False
        elif kind == "insert":
            statements.append(
                f"INSERT INTO t VALUES ({next_id}, {op[1]}, '{op[2]}')"
            )
            next_id += 1
        elif kind == "update":
            statements.append(f"UPDATE t SET n = {op[2]} WHERE n = {op[1]}")
        elif kind == "relabel":
            label = "NULL" if op[2] is None else f"'{op[2]}'"
            statements.append(
                f"UPDATE t SET label = {label} WHERE id = {op[1]}"
            )
        else:  # delete
            statements.append(f"DELETE FROM t WHERE n = {op[1]}")
    return statements


def catalog_state(db: Database) -> dict:
    state = {"fingerprint": db.catalog.fingerprint()}
    for name in db.table_names():
        table = db.table(name)
        state[name] = {
            "rows": list(table.rows),
            "columns": [
                list(table.column_data(i)) for i in range(len(table.columns))
            ],
        }
    return state


def oracle_state(statements) -> dict:
    db = Database(dict_encoding_threshold=4)
    for sql in statements:
        db.execute(sql)
    if db.txn.active:
        db.execute("ROLLBACK")
    return catalog_state(db)


@given(operations=ops, byte_budget=st.integers(0, 4000))
def test_recovery_matches_undo_free_oracle(operations, byte_budget):
    statements = to_statements(operations)
    data_dir = tempfile.mkdtemp(prefix="txnprop")
    try:
        db = Database(
            data_dir=data_dir,
            dict_encoding_threshold=4,
            wal_storage_factory=lambda path: FaultInjector(
                FileLogStorage(path), byte_budget=byte_budget
            ),
        )
        acknowledged = []
        try:
            for sql in statements:
                db.execute(sql)
                acknowledged.append(sql)
        except InjectedCrash:
            pass  # the process "died"; db is abandoned un-closed

        recovered = Database(data_dir=data_dir, dict_encoding_threshold=4)
        try:
            assert catalog_state(recovered) == oracle_state(acknowledged)
        finally:
            recovered.close()
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


@given(operations=ops)
def test_rollback_restores_oracle_state(operations):
    """Pure in-memory: a rolled-back suffix leaves no trace."""
    statements = to_statements(operations)
    oracle = Database(dict_encoding_threshold=4)
    db = Database(dict_encoding_threshold=4)
    for sql in SEED_SQL:
        oracle.execute(sql)
        db.execute(sql)
    # replay the generated suffix on both; on the oracle, skip
    # everything between BEGIN and its matching COMMIT unless committed
    suffix = statements[len(SEED_SQL):]
    pending: "list | None" = None
    for sql in suffix:
        db.execute(sql)
        if sql == "BEGIN":
            pending = []
        elif sql == "COMMIT":
            for replay in pending or []:
                oracle.execute(replay)
            pending = None
        elif sql == "ROLLBACK":
            pending = None
        elif pending is not None:
            pending.append(sql)
        else:
            oracle.execute(sql)
    if db.txn.active:
        db.execute("ROLLBACK")
    assert catalog_state(db) == catalog_state(oracle)
