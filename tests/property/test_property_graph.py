"""Property-based tests for the triple store and traversal."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.node import Text, uri
from repro.graph.traversal import iter_reachable
from repro.graph.triples import Triple, TripleStore

settings.register_profile("graph", max_examples=60, deadline=None)
settings.load_profile("graph")

node_ids = st.integers(min_value=0, max_value=12)
predicate_ids = st.integers(min_value=0, max_value=3)


def node(i):
    return uri("n", str(i))


def predicate(i):
    return uri("p", str(i))


triples_strategy = st.lists(
    st.tuples(node_ids, predicate_ids, node_ids), max_size=50
).map(
    lambda items: [
        Triple(node(s), predicate(p), node(o)) for s, p, o in items
    ]
)


class TestStoreModel:
    @given(triples=triples_strategy)
    def test_store_is_a_set(self, triples):
        store = TripleStore(triples)
        assert len(store) == len(set(triples))

    @given(triples=triples_strategy, s=node_ids, p=predicate_ids, o=node_ids)
    def test_match_equals_naive_filter(self, triples, s, p, o):
        store = TripleStore(triples)
        unique = set(triples)
        for subject, pred, obj in [
            (node(s), None, None),
            (None, predicate(p), None),
            (None, None, node(o)),
            (node(s), predicate(p), None),
            (None, predicate(p), node(o)),
            (node(s), None, node(o)),
            (node(s), predicate(p), node(o)),
        ]:
            got = set(store.match(subject, pred, obj))
            expected = {
                t for t in unique
                if (subject is None or t.subject == subject)
                and (pred is None or t.predicate == pred)
                and (obj is None or t.obj == obj)
            }
            assert got == expected

    @given(triples=triples_strategy)
    def test_remove_then_absent(self, triples):
        store = TripleStore(triples)
        for triple in set(triples):
            store.remove(triple.subject, triple.predicate, triple.obj)
            assert triple not in store
            assert not list(
                store.match(triple.subject, triple.predicate, triple.obj)
            )

    @given(triples=triples_strategy)
    def test_subjects_objects_inverse(self, triples):
        store = TripleStore(triples)
        for triple in set(triples):
            assert triple.obj in store.objects(triple.subject, triple.predicate)
            assert triple.subject in store.subjects(triple.predicate, triple.obj)


class TestTraversalModel:
    @given(triples=triples_strategy, start=node_ids)
    def test_reachable_matches_networkx(self, triples, start):
        import networkx as nx

        store = TripleStore(triples)
        graph = nx.DiGraph()
        graph.add_node(node(start))
        for triple in triples:
            graph.add_edge(triple.subject, triple.obj)
        got = {n for n, __ in iter_reachable(store, node(start))}
        expected = {node(start)} | nx.descendants(graph, node(start))
        assert got == expected

    @given(triples=triples_strategy, start=node_ids,
           depth=st.integers(0, 4))
    def test_depth_monotone(self, triples, start, depth):
        store = TripleStore(triples)
        shallow = {n for n, __ in iter_reachable(store, node(start), depth)}
        deeper = {n for n, __ in iter_reachable(store, node(start), depth + 1)}
        assert shallow <= deeper

    @given(triples=triples_strategy, start=node_ids)
    def test_depths_are_shortest_paths(self, triples, start):
        import networkx as nx

        store = TripleStore(triples)
        graph = nx.DiGraph()
        graph.add_node(node(start))
        for triple in triples:
            graph.add_edge(triple.subject, triple.obj)
        lengths = nx.single_source_shortest_path_length(graph, node(start))
        for n, depth in iter_reachable(store, node(start)):
            assert lengths[n] == depth


class TestTextLabels:
    @given(labels=st.lists(st.text(max_size=8), max_size=10))
    def test_text_labels_never_traversed(self, labels):
        store = TripleStore()
        start = node(0)
        for i, label in enumerate(labels):
            store.add(start, predicate(0), Text(label))
        reached = list(iter_reachable(store, start))
        assert reached == [(start, 0)]
