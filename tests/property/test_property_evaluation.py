"""Property-based tests for the precision/recall metric."""

from hypothesis import given, settings, strategies as st

from repro.core.evaluation import compare_results
from repro.sqlengine.executor import ResultSet

settings.register_profile("evaluation", max_examples=80, deadline=None)
settings.load_profile("evaluation")

rows = st.lists(
    st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=25
)


def rs(columns, data):
    return ResultSet(columns=list(columns), rows=[tuple(r) for r in data])


class TestBounds:
    @given(soda=rows, gold=rows)
    def test_metrics_in_unit_interval(self, soda, gold):
        metrics = compare_results(rs(["a", "b"], soda), [rs(["a", "b"], gold)])
        assert 0.0 <= metrics.precision <= 1.0
        assert 0.0 <= metrics.recall <= 1.0

    @given(data=rows)
    def test_identity_is_perfect(self, data):
        metrics = compare_results(rs(["a", "b"], data), [rs(["a", "b"], data)])
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0

    @given(soda=rows, gold=rows)
    def test_symmetry_swaps_precision_recall(self, soda, gold):
        # (vacuous empty-side cases excluded: they are defined asymmetric)
        if not soda or not gold:
            return
        forward = compare_results(rs(["a", "b"], soda), [rs(["a", "b"], gold)])
        backward = compare_results(rs(["a", "b"], gold), [rs(["a", "b"], soda)])
        assert forward.precision == backward.recall
        assert forward.recall == backward.precision

    @given(gold=rows)
    def test_subset_has_full_precision(self, gold):
        subset = gold[: len(gold) // 2]
        metrics = compare_results(rs(["a", "b"], subset), [rs(["a", "b"], gold)])
        if subset:
            assert metrics.precision == 1.0

    @given(soda=rows, gold=rows)
    def test_counts_reported(self, soda, gold):
        metrics = compare_results(rs(["a", "b"], soda), [rs(["a", "b"], gold)])
        assert metrics.soda_rows == len(set(soda))
        assert metrics.gold_rows == len(set(gold))

    @given(soda=rows, gold=rows)
    def test_projection_cannot_hurt_precision(self, soda, gold):
        # on a coarser (projected) gold, every previously-correct SODA
        # tuple stays correct, so precision never drops
        full = compare_results(rs(["a", "b"], soda), [rs(["a", "b"], gold)])
        projected = compare_results(
            rs(["a", "b"], soda), [rs(["a"], [(r[0],) for r in gold])]
        )
        if gold and soda:
            assert projected.precision >= full.precision - 1e-9
