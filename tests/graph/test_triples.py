"""Tests for the triple store."""

import pytest

from repro.errors import GraphError
from repro.graph.node import Text, Vocab, uri
from repro.graph.triples import Triple, TripleStore

T1 = uri("physical", "table", "parties")
T2 = uri("physical", "table", "individuals")
COL = uri("physical", "column", "parties", "id")


@pytest.fixture
def store():
    s = TripleStore()
    s.add(T1, Vocab.TYPE, Vocab.PHYSICAL_TABLE)
    s.add(T2, Vocab.TYPE, Vocab.PHYSICAL_TABLE)
    s.add(T1, Vocab.TABLENAME, Text("parties"))
    s.add(T1, Vocab.COLUMN, COL)
    s.add(COL, Vocab.BELONGS_TO, T1)
    return s


class TestTripleValidation:
    def test_subject_must_be_uri(self):
        with pytest.raises(GraphError):
            Triple("parties", Vocab.TYPE, Vocab.PHYSICAL_TABLE)

    def test_predicate_must_be_uri(self):
        with pytest.raises(GraphError):
            Triple(T1, "type", Vocab.PHYSICAL_TABLE)

    def test_object_must_be_uri_or_text(self):
        with pytest.raises(GraphError):
            Triple(T1, Vocab.TABLENAME, 42)

    def test_text_object_allowed(self):
        triple = Triple(T1, Vocab.TABLENAME, Text("parties"))
        assert triple.obj == Text("parties")


class TestStoreBasics:
    def test_len(self, store):
        assert len(store) == 5

    def test_add_is_idempotent(self, store):
        store.add(T1, Vocab.TYPE, Vocab.PHYSICAL_TABLE)
        assert len(store) == 5

    def test_contains(self, store):
        assert Triple(T1, Vocab.TYPE, Vocab.PHYSICAL_TABLE) in store

    def test_iter(self, store):
        assert len(list(store)) == 5

    def test_remove(self, store):
        store.remove(T1, Vocab.COLUMN, COL)
        assert len(store) == 4
        assert not list(store.match(T1, Vocab.COLUMN))

    def test_remove_missing_raises(self, store):
        with pytest.raises(GraphError):
            store.remove(T2, Vocab.COLUMN, COL)


class TestMatch:
    def test_match_by_subject(self, store):
        assert len(list(store.match(subject=T1))) == 3

    def test_match_by_predicate(self, store):
        assert len(list(store.match(predicate=Vocab.TYPE))) == 2

    def test_match_by_object(self, store):
        found = list(store.match(obj=Vocab.PHYSICAL_TABLE))
        assert {t.subject for t in found} == {T1, T2}

    def test_match_subject_predicate(self, store):
        found = list(store.match(T1, Vocab.TABLENAME))
        assert found == [Triple(T1, Vocab.TABLENAME, Text("parties"))]

    def test_match_predicate_object(self, store):
        found = list(store.match(None, Vocab.TYPE, Vocab.PHYSICAL_TABLE))
        assert len(found) == 2

    def test_match_subject_object(self, store):
        found = list(store.match(T1, None, COL))
        assert found == [Triple(T1, Vocab.COLUMN, COL)]

    def test_match_fully_bound(self, store):
        assert len(list(store.match(T1, Vocab.TYPE, Vocab.PHYSICAL_TABLE))) == 1
        assert not list(store.match(T2, Vocab.TYPE, Vocab.JOIN_NODE))

    def test_match_all(self, store):
        assert len(list(store.match())) == 5


class TestAccessors:
    def test_objects(self, store):
        assert store.objects(T1, Vocab.TYPE) == [Vocab.PHYSICAL_TABLE]

    def test_object_single(self, store):
        assert store.object(T1, Vocab.TABLENAME) == Text("parties")

    def test_object_none(self, store):
        assert store.object(T2, Vocab.TABLENAME) is None

    def test_object_multiple_raises(self, store):
        store.add(T1, Vocab.TABLENAME, Text("other"))
        with pytest.raises(GraphError):
            store.object(T1, Vocab.TABLENAME)

    def test_subjects(self, store):
        assert store.subjects(Vocab.TYPE, Vocab.PHYSICAL_TABLE) == sorted([T1, T2])

    def test_node_neighbours_skips_text(self, store):
        assert store.node_neighbours(T1) == sorted([Vocab.PHYSICAL_TABLE, COL])

    def test_nodes(self, store):
        nodes = store.nodes()
        assert T1 in nodes and T2 in nodes and COL in nodes

    def test_has_type(self, store):
        assert store.has_type(T1, Vocab.PHYSICAL_TABLE)
        assert not store.has_type(COL, Vocab.PHYSICAL_TABLE)
