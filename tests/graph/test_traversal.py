"""Tests for traversal and direct-path computation (Fig. 9)."""

import networkx as nx
import pytest

from repro.graph.node import Text, Vocab, uri
from repro.graph.traversal import (
    build_undirected_graph,
    direct_paths,
    iter_reachable,
    reachable_nodes,
    steiner_edge_set,
)
from repro.graph.triples import TripleStore

A, B, C, D = (uri("test", x) for x in "abcd")
EDGE = uri("meta", "edge")


@pytest.fixture
def chain_store():
    s = TripleStore()
    s.add(A, EDGE, B)
    s.add(B, EDGE, C)
    s.add(C, EDGE, D)
    s.add(A, Vocab.LABEL, Text("a"))  # text labels are never traversed
    return s


class TestIterReachable:
    def test_yields_start_first(self, chain_store):
        nodes = list(iter_reachable(chain_store, A))
        assert nodes[0] == (A, 0)

    def test_reaches_whole_chain(self, chain_store):
        assert reachable_nodes(chain_store, A) == sorted([A, B, C, D])

    def test_max_depth_limits(self, chain_store):
        assert reachable_nodes(chain_store, A, max_depth=1) == sorted([A, B])

    def test_follow_vetoes_edges(self, chain_store):
        follow = lambda s, p, o: o != C
        assert reachable_nodes(chain_store, A, follow=follow) == sorted([A, B])

    def test_only_outgoing_edges(self, chain_store):
        assert reachable_nodes(chain_store, C) == sorted([C, D])

    def test_cycle_terminates(self):
        s = TripleStore()
        s.add(A, EDGE, B)
        s.add(B, EDGE, A)
        assert reachable_nodes(s, A) == sorted([A, B])

    def test_depth_values(self, chain_store):
        depths = dict(iter_reachable(chain_store, A))
        assert depths == {A: 0, B: 1, C: 2, D: 3}


class TestUndirectedGraph:
    def test_build_collapses_parallel_edges(self):
        graph = build_undirected_graph([("x", "y", 1), ("y", "x", 2)])
        assert graph.number_of_edges() == 1
        assert graph.edges["x", "y"]["payloads"] == [1, 2]


class TestDirectPaths:
    @pytest.fixture
    def graph(self):
        graph = nx.Graph()
        graph.add_edges_from(
            [("t1", "t2"), ("t2", "t3"), ("t3", "t4"), ("t1", "t5"), ("t5", "t4")]
        )
        return graph

    def test_paths_between_terminals(self, graph):
        paths = direct_paths(graph, ["t1", "t4"])
        assert len(paths) == 1
        assert paths[0][0] == "t1" and paths[0][-1] == "t4"

    def test_missing_terminal_skipped(self, graph):
        assert direct_paths(graph, ["t1", "zzz"]) == []

    def test_disconnected_pair_skipped(self, graph):
        graph.add_node("island")
        assert direct_paths(graph, ["t1", "island"]) == []

    def test_steiner_edge_set_union(self, graph):
        edges = steiner_edge_set(graph, ["t1", "t3", "t4"])
        # all selected edges lie on some pairwise shortest path
        for u, v in edges:
            assert graph.has_edge(u, v)
        assert edges  # non-empty

    def test_single_terminal_no_paths(self, graph):
        assert direct_paths(graph, ["t1"]) == []
