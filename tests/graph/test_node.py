"""Tests for URI helpers and the Text label type."""

import pytest

from repro.graph.node import (
    Text,
    Vocab,
    is_uri,
    local_name,
    namespace_of,
    uri,
)


class TestUri:
    def test_uri_builds_expected_form(self):
        assert uri("physical", "table", "parties") == (
            "soda://physical/table/parties"
        )

    def test_uri_skips_empty_parts(self):
        assert uri("meta", "", "type") == "soda://meta/type"

    def test_uri_replaces_spaces(self):
        assert uri("conceptual", "attr", "family name").endswith("family_name")

    def test_is_uri_accepts_soda_scheme(self):
        assert is_uri("soda://meta/type")

    def test_is_uri_rejects_plain_strings(self):
        assert not is_uri("parties")

    def test_is_uri_rejects_non_strings(self):
        assert not is_uri(42)
        assert not is_uri(Text("parties"))

    def test_local_name(self):
        assert local_name("soda://physical/table/parties") == "parties"

    def test_namespace_of(self):
        assert namespace_of("soda://physical/table/parties") == "physical"

    def test_namespace_of_rejects_non_uri(self):
        with pytest.raises(ValueError):
            namespace_of("parties")


class TestText:
    def test_equality(self):
        assert Text("a") == Text("a")
        assert Text("a") != Text("b")

    def test_hashable(self):
        assert len({Text("a"), Text("a"), Text("b")}) == 2

    def test_ordering(self):
        assert Text("a") < Text("b")

    def test_str(self):
        assert str(Text("parties")) == "t:parties"


class TestVocab:
    def test_all_vocab_entries_are_uris(self):
        for name in dir(Vocab):
            if name.startswith("_"):
                continue
            assert is_uri(getattr(Vocab, name)), name

    def test_vocab_entries_distinct(self):
        values = [
            getattr(Vocab, name) for name in dir(Vocab) if not name.startswith("_")
        ]
        assert len(values) == len(set(values))
