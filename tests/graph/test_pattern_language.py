"""Tests for the pattern language: parser, matcher, references (Figs. 7/8)."""

import pytest

from repro.errors import PatternError
from repro.graph.node import Text, Vocab, uri
from repro.graph.pattern import (
    Pattern,
    PatternLibrary,
    PatternRef,
    TextVar,
    TriplePattern,
    Var,
    match_pattern,
    parse_pattern,
)
from repro.graph.triples import TripleStore

RESOLVER = {
    "type": Vocab.TYPE,
    "tablename": Vocab.TABLENAME,
    "columnname": Vocab.COLUMNNAME,
    "column": Vocab.COLUMN,
    "foreign_key": Vocab.FOREIGN_KEY,
    "physical_table": Vocab.PHYSICAL_TABLE,
    "physical_column": Vocab.PHYSICAL_COLUMN,
}

TABLE = uri("physical", "table", "parties")
COL_A = uri("physical", "column", "parties", "id")
COL_B = uri("physical", "column", "individuals", "id")
TABLE_B = uri("physical", "table", "individuals")


@pytest.fixture
def store():
    s = TripleStore()
    s.add(TABLE, Vocab.TABLENAME, Text("parties"))
    s.add(TABLE, Vocab.TYPE, Vocab.PHYSICAL_TABLE)
    s.add(COL_A, Vocab.COLUMNNAME, Text("id"))
    s.add(COL_A, Vocab.TYPE, Vocab.PHYSICAL_COLUMN)
    s.add(TABLE, Vocab.COLUMN, COL_A)
    s.add(TABLE_B, Vocab.TABLENAME, Text("individuals"))
    s.add(TABLE_B, Vocab.TYPE, Vocab.PHYSICAL_TABLE)
    s.add(COL_B, Vocab.COLUMNNAME, Text("id"))
    s.add(COL_B, Vocab.TYPE, Vocab.PHYSICAL_COLUMN)
    s.add(TABLE_B, Vocab.COLUMN, COL_B)
    s.add(COL_B, Vocab.FOREIGN_KEY, COL_A)
    return s


TABLE_PATTERN_SRC = "( x tablename t:y ) & ( x type physical_table )"
COLUMN_PATTERN_SRC = (
    "( x columnname t:y ) & ( x type physical_column ) & ( z column x )"
)
FK_PATTERN_SRC = (
    "( x foreign_key y ) & ( x matches-column ) & ( y matches-column )"
)


class TestParser:
    def test_parses_table_pattern(self):
        pattern = parse_pattern("table", TABLE_PATTERN_SRC, RESOLVER)
        assert len(pattern.clauses) == 2
        first = pattern.clauses[0]
        assert isinstance(first, TriplePattern)
        assert first.subject == Var("x")
        assert first.predicate == Vocab.TABLENAME
        assert first.obj == TextVar("y")

    def test_static_object_resolved(self):
        pattern = parse_pattern("table", TABLE_PATTERN_SRC, RESOLVER)
        second = pattern.clauses[1]
        assert second.obj == Vocab.PHYSICAL_TABLE

    def test_parses_reference_clause(self):
        pattern = parse_pattern("fk", FK_PATTERN_SRC, RESOLVER)
        refs = [c for c in pattern.clauses if isinstance(c, PatternRef)]
        assert len(refs) == 2
        assert refs[0].pattern_name == "column"

    def test_quoted_text_literal(self):
        pattern = parse_pattern(
            "named", '( x tablename t:"parties" )', RESOLVER
        )
        assert pattern.clauses[0].obj == Text("parties")

    def test_unknown_predicate_raises(self):
        with pytest.raises(PatternError):
            parse_pattern("bad", "( x frobnicate y )", RESOLVER)

    def test_unbalanced_parens_raise(self):
        with pytest.raises(PatternError):
            parse_pattern("bad", "( x type physical_table", RESOLVER)

    def test_empty_pattern_raises(self):
        with pytest.raises(PatternError):
            parse_pattern("bad", "   ", RESOLVER)

    def test_wrong_arity_raises(self):
        with pytest.raises(PatternError):
            parse_pattern("bad", "( x )", RESOLVER)

    def test_variables_listed(self):
        # node variables only; t:y is a text variable and not included
        pattern = parse_pattern("column", COLUMN_PATTERN_SRC, RESOLVER)
        assert pattern.variables() == {"x", "z"}


class TestMatcher:
    def test_table_pattern_matches_table_node(self, store):
        pattern = parse_pattern("table", TABLE_PATTERN_SRC, RESOLVER)
        matches = match_pattern(store, pattern, TABLE)
        assert len(matches) == 1
        assert matches[0]["y"] == Text("parties")

    def test_table_pattern_rejects_column_node(self, store):
        pattern = parse_pattern("table", TABLE_PATTERN_SRC, RESOLVER)
        assert match_pattern(store, pattern, COL_A) == []

    def test_column_pattern_binds_owning_table(self, store):
        pattern = parse_pattern("column", COLUMN_PATTERN_SRC, RESOLVER)
        matches = match_pattern(store, pattern, COL_A)
        assert len(matches) == 1
        assert matches[0]["z"] == TABLE

    def test_reference_pattern(self, store):
        library = PatternLibrary(
            [
                parse_pattern("column", COLUMN_PATTERN_SRC, RESOLVER),
                parse_pattern("fk", FK_PATTERN_SRC, RESOLVER),
            ]
        )
        matches = match_pattern(store, library.get("fk"), COL_B, library)
        assert len(matches) == 1
        assert matches[0]["y"] == COL_A

    def test_reference_fails_when_target_not_column(self, store):
        store.add(TABLE_B, Vocab.FOREIGN_KEY, COL_A)  # table, not a column
        library = PatternLibrary(
            [
                parse_pattern("column", COLUMN_PATTERN_SRC, RESOLVER),
                parse_pattern("fk", FK_PATTERN_SRC, RESOLVER),
            ]
        )
        assert match_pattern(store, library.get("fk"), TABLE_B, library) == []

    def test_variable_keeps_binding_within_match(self, store):
        # ( x columnname t:y ) & ( x type physical_column ): both clauses
        # must bind the same x
        pattern = parse_pattern("column", COLUMN_PATTERN_SRC, RESOLVER)
        for node in (COL_A, COL_B):
            for match in match_pattern(store, pattern, node):
                assert match["x"] == node

    def test_unknown_reference_raises(self, store):
        pattern = parse_pattern("fk", FK_PATTERN_SRC, RESOLVER)
        with pytest.raises(PatternError):
            match_pattern(store, pattern, COL_B, PatternLibrary())

    def test_text_var_does_not_bind_uri(self, store):
        # tablename edge pointing at a URI must not match t:y
        other = uri("physical", "table", "weird")
        store.add(other, Vocab.TABLENAME, COL_A)
        store.add(other, Vocab.TYPE, Vocab.PHYSICAL_TABLE)
        pattern = parse_pattern("table", TABLE_PATTERN_SRC, RESOLVER)
        assert match_pattern(store, pattern, other) == []


class TestLibrary:
    def test_duplicate_name_raises(self):
        library = PatternLibrary()
        library.add(parse_pattern("p", TABLE_PATTERN_SRC, RESOLVER))
        with pytest.raises(PatternError):
            library.add(parse_pattern("p", TABLE_PATTERN_SRC, RESOLVER))

    def test_get_unknown_raises(self):
        with pytest.raises(PatternError):
            PatternLibrary().get("nope")

    def test_contains_and_names(self):
        library = PatternLibrary([parse_pattern("p", TABLE_PATTERN_SRC, RESOLVER)])
        assert "p" in library
        assert library.names() == ["p"]
