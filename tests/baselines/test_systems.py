"""Behavioural tests for the five baseline systems."""

import pytest

from repro.baselines.banks import Banks
from repro.baselines.dbexplorer import DBExplorer
from repro.baselines.discover import Discover
from repro.baselines.keymantic import Keymantic
from repro.baselines.sqak import Sqak
from repro.baselines.capabilities import synonym_dictionary


@pytest.fixture(scope="module")
def dbexplorer(warehouse):
    return DBExplorer(warehouse.database, warehouse.inverted)


@pytest.fixture(scope="module")
def discover(warehouse):
    return Discover(warehouse.database, warehouse.inverted)


@pytest.fixture(scope="module")
def banks(small_warehouse):
    return Banks(small_warehouse.database, small_warehouse.inverted)


@pytest.fixture(scope="module")
def sqak(warehouse):
    return Sqak(warehouse.database, warehouse.inverted)


@pytest.fixture(scope="module")
def keymantic(warehouse):
    return Keymantic(
        warehouse.database,
        warehouse.inverted,
        synonyms=synonym_dictionary(warehouse),
    )


class TestDBExplorer:
    def test_base_data_query_answered(self, dbexplorer, warehouse):
        answer = dbexplorer.answer("Credit Suisse")
        assert answer.answered
        # the organizations interpretation exists and returns the org
        single = [s for s in answer.sqls if "organizations" in s]
        assert single
        rows = warehouse.database.execute(single[0]).rows
        assert rows

    def test_schema_keyword_unsupported(self, dbexplorer):
        # "given name" only exists in metadata, not in base data
        answer = dbexplorer.answer("birth date")
        assert not answer.supported
        assert "symbol table" in answer.note

    def test_operators_rejected(self, dbexplorer):
        assert not dbexplorer.answer("salary >= 100000").supported

    def test_aggregates_rejected(self, dbexplorer):
        assert not dbexplorer.answer("sum(investments)").supported

    def test_cycle_flagged(self, dbexplorer):
        # any answer whose join tree includes transactions+parties touches
        # the parallel-FK cycle; combinations over 'sara' reach it rarely,
        # so force it with a keyword living in transactions-adjacent data
        answer = dbexplorer.answer("sara zurich")
        assert answer.answered or answer.note


class TestDiscover:
    def test_base_data_query_answered(self, discover):
        answer = discover.answer("Zurich")
        assert answer.answered
        assert any("addresses" in sql for sql in answer.sqls)

    def test_network_size_bounded(self, discover):
        for sql in discover.answer("sara zurich").sqls:
            from_clause = sql.split("FROM")[1].split("WHERE")[0]
            assert len(from_clause.split(",")) <= discover.max_network_size

    def test_unknown_keyword_unsupported(self, discover):
        assert not discover.answer("flurbl").supported

    def test_operators_rejected(self, discover):
        assert not discover.answer("period > date(2011-09-01)").supported


class TestBanks:
    def test_single_keyword_tuple_granularity(self, banks):
        answer = banks.answer("Sara")
        assert answer.answered

    def test_schema_term_matches_table_name(self, banks):
        # BANKS supports schema terms: "parties" matches the table itself
        answer = banks.answer("parties")
        assert answer.answered

    def test_two_keywords_connected(self, banks, small_warehouse):
        answer = banks.answer("Sara Zurich")
        if answer.answered:  # data-dependent: Sara must link to a Zurich row
            for sql in answer.sqls:
                small_warehouse.database.execute(sql)

    def test_operators_rejected(self, banks):
        assert not banks.answer("sum(investments)").supported

    def test_unknown_keyword_unsupported(self, banks):
        assert not banks.answer("qqqq").supported


class TestSqak:
    def test_simple_keyword_query_rejected(self, sqak):
        # the paper: simple SELECT queries do not match SQAK's pattern
        answer = sqak.answer("Credit Suisse")
        assert not answer.supported
        assert "pattern" in answer.note

    def test_aggregate_with_group_by(self, sqak, warehouse):
        answer = sqak.answer("sum(investments) group by (currency)")
        assert answer.answered
        result = warehouse.database.execute(answer.sqls[0])
        assert result.rows

    def test_count_entity(self, sqak, warehouse):
        answer = sqak.answer("count (transactions)")
        assert answer.answered
        assert warehouse.database.execute(answer.sqls[0]).rows[0][0] > 0

    def test_ontology_term_not_understood(self, sqak):
        answer = sqak.answer("select count() private customers Switzerland")
        assert not answer.answered

    def test_unknown_aggregation_argument(self, sqak):
        assert not sqak.answer("sum(flurbl)").supported


class TestKeymantic:
    def test_schema_query_answered(self, keymantic):
        answer = keymantic.answer("individuals addresses")
        assert answer.answered

    def test_synonym_support(self, keymantic):
        # "customers" maps to Parties through the external dictionary
        answer = keymantic.answer("customers")
        assert answer.answered
        assert any("parties" in sql for sql in answer.sqls)

    def test_operators_rejected(self, keymantic):
        assert not keymantic.answer("salary >= 1").supported

    def test_wide_schema_confidence_collapse(self, warehouse):
        narrow = Keymantic(warehouse.database, warehouse.inverted)
        narrow.wide_schema_columns = 10  # pretend the schema is huge
        answer = narrow.answer("individuals")
        assert not answer.supported
        assert "confidence" in answer.note

    def test_value_keyword_without_index_guesses(self, keymantic):
        # "Sara" can only be guessed into some text column; the answer may
        # exist but is not reliably correct (the paper's (NO))
        answer = keymantic.answer("sara individuals")
        assert answer.supported in (True, False)
