"""Tests for the shared baseline infrastructure."""

import pytest

from repro.baselines.base import BaselineAnswer, KeywordSearchSystem, build_sql


@pytest.fixture(scope="module")
def system(warehouse):
    return KeywordSearchSystem(warehouse.database, warehouse.inverted)


class TestFkGraph:
    def test_all_tables_are_nodes(self, system, warehouse):
        graph = system.fk_graph()
        assert set(graph.nodes) == set(warehouse.database.table_names())

    def test_fk_edges_present(self, system):
        graph = system.fk_graph()
        assert graph.has_edge("individuals", "parties")
        assert graph.has_edge("associate_employment", "organizations")

    def test_parallel_edges_kept(self, system):
        graph = system.fk_graph()
        # transactions has two FKs to parties (from/to party)
        assert graph.number_of_edges("transactions", "parties") == 2


class TestCycleDetection:
    def test_parallel_fk_counts_as_cycle(self, system):
        assert system.schema_has_cycle(["transactions", "parties"])

    def test_tree_is_acyclic(self, system):
        assert not system.schema_has_cycle(["individuals", "parties"])

    def test_triangle_counts_as_cycle(self, system):
        # individuals-parties, individuals-addresses, party_address closes
        # a cycle with parties and addresses
        assert system.schema_has_cycle(
            ["individuals", "parties", "addresses", "party_address"]
        )


class TestJoinTree:
    def test_single_table_needs_no_joins(self, system):
        assert system.join_tree(["parties"]) == []

    def test_adjacent_pair(self, system):
        joins = system.join_tree(["individuals", "parties"])
        assert joins == [("individuals", "id", "parties", "id")]

    def test_path_with_intermediate(self, system):
        joins = system.join_tree(["individual_name_hist", "parties"])
        tables = {t for join in joins for t in (join[0], join[2])}
        assert "individuals" in tables

    def test_unreachable_returns_none(self, system, warehouse):
        warehouse.database.create_table("island_x", [("id", "INT")])
        try:
            assert system.join_tree(["island_x", "parties"]) is None
        finally:
            warehouse.database.catalog.drop_table("island_x")


class TestHelpers:
    def test_keyword_hits_per_column(self, system):
        hits = system.keyword_hits("sara")
        assert ("individuals", "given_nm") in hits
        assert len(hits) == 4

    def test_segment_greedy(self, system):
        assert system.segment("credit suisse zurich") == [
            "credit suisse", "zurich"
        ]

    def test_segment_unknown_words_kept(self, system):
        assert "flurbl" in system.segment("flurbl zurich")

    def test_build_sql_plain(self):
        sql = build_sql(
            ["a", "b"],
            [("a", "x", "b", "y")],
            [("a", "name", "gold")],
        )
        assert sql == (
            "SELECT * FROM a, b WHERE a.x = b.y AND a.name LIKE '%gold%'"
        )

    def test_build_sql_aggregate(self):
        sql = build_sql(
            ["t"], [], [], aggregate="sum(t.amount)", group_by="t.ccy"
        )
        assert "GROUP BY t.ccy" in sql
        assert sql.startswith("SELECT sum(t.amount), t.ccy")

    def test_answer_answered_property(self):
        answer = BaselineAnswer(system="x", query_text="q")
        assert not answer.answered
        answer.sqls.append("SELECT 1")
        assert answer.answered
        answer.supported = False
        assert not answer.answered
