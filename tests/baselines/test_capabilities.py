"""Tests for the Table 5 capability matrix machinery."""

import pytest

from repro.baselines.capabilities import (
    PAPER_TABLE5,
    QUERY_TYPE_ROWS,
    QueryEvaluation,
    SystemEvaluation,
    capability_matrix,
    default_systems,
    evaluate_system,
    format_table5,
    soda_evaluation,
    synonym_dictionary,
)
from repro.core.evaluation import PrecisionRecall
from repro.experiments.workload import WORKLOAD


class TestMarks:
    def make_evaluation(self, per_query):
        evaluation = SystemEvaluation(system="fake")
        for query in WORKLOAD:
            answered, metrics = per_query.get(query.qid, (False, None))
            evaluation.per_query[query.qid] = QueryEvaluation(
                qid=query.qid,
                answered=answered,
                best=metrics,
                caveat=None,
                note="",
            )
        return evaluation

    def test_all_correct_is_x(self):
        good = PrecisionRecall(1.0, 1.0, 1, 1)
        evaluation = self.make_evaluation(
            {q.qid: (True, good) for q in WORKLOAD}
        )
        for __, tag in QUERY_TYPE_ROWS:
            assert evaluation.mark(tag) == "X"

    def test_none_answered_is_no(self):
        evaluation = self.make_evaluation({})
        for __, tag in QUERY_TYPE_ROWS:
            assert evaluation.mark(tag) == "NO"

    def test_partial_is_parenthesised(self):
        good = PrecisionRecall(1.0, 1.0, 1, 1)
        evaluation = self.make_evaluation({"2.1": (True, good)})
        assert evaluation.mark("B") == "(X)"

    def test_answered_but_wrong_is_paren_no(self):
        bad = PrecisionRecall(0.0, 0.0, 0, 1)
        evaluation = self.make_evaluation(
            {q.qid: (True, bad) for q in WORKLOAD}
        )
        assert evaluation.mark("B") == "(NO)"


class TestIntegration:
    @pytest.fixture(scope="class")
    def matrix_and_systems(self, small_warehouse):
        evaluations = [
            evaluate_system(system, small_warehouse)
            for system in default_systems(small_warehouse)
        ]
        matrix = capability_matrix(evaluations)
        return matrix, [e.system for e in evaluations]

    def test_matrix_covers_all_cells(self, matrix_and_systems):
        matrix, systems = matrix_and_systems
        for __, tag in QUERY_TYPE_ROWS:
            for system in systems:
                assert (tag, system) in matrix

    def test_sqak_never_handles_plain_queries(self, matrix_and_systems):
        matrix, __ = matrix_and_systems
        assert matrix[("B", "SQAK")] == "NO"

    def test_no_baseline_handles_predicates(self, matrix_and_systems):
        matrix, systems = matrix_and_systems
        for system in systems:
            assert matrix[("P", system)] == "NO"

    def test_format_table5(self, matrix_and_systems):
        matrix, systems = matrix_and_systems
        rendered = format_table5(matrix, systems + ["SODA"])
        assert "Query type" in rendered
        assert "Aggregates" in rendered

    def test_soda_evaluation_wrapper(self, experiment_outcomes):
        evaluation = soda_evaluation(experiment_outcomes)
        assert evaluation.system == "SODA"
        assert evaluation.per_query["1.0"].correct

    def test_soda_beats_baselines_overall(
        self, matrix_and_systems, experiment_outcomes
    ):
        # the paper's headline: SODA is the only system handling every
        # query type at least partially
        matrix, systems = matrix_and_systems
        soda_matrix = capability_matrix([soda_evaluation(experiment_outcomes)])

        def supported(mark):
            return mark in ("X", "(X)")

        soda_count = sum(
            1 for __, tag in QUERY_TYPE_ROWS
            if supported(soda_matrix[(tag, "SODA")])
        )
        assert soda_count == len(QUERY_TYPE_ROWS)
        for system in systems:
            count = sum(
                1 for __, tag in QUERY_TYPE_ROWS
                if supported(matrix[(tag, system)])
            )
            assert count < soda_count


class TestSynonyms:
    def test_dictionary_derived_from_warehouse(self, warehouse):
        synonyms = synonym_dictionary(warehouse)
        assert "customers" in synonyms
        assert "client" in synonyms

    def test_paper_marks_complete(self):
        systems = {system for __, system in PAPER_TABLE5}
        assert systems == {
            "DBExplorer", "DISCOVER", "BANKS", "SQAK", "Keymantic", "SODA"
        }
        assert len(PAPER_TABLE5) == 36
