"""Tests for the alternative specificity ranking strategy."""

import pytest

from repro.core.input_patterns import parse_query
from repro.core.lookup import Lookup
from repro.core.ranking import (
    STRATEGIES,
    rank,
    score_interpretation,
    score_interpretation_specificity,
)
from repro.core.soda import Soda, SodaConfig
from repro.errors import ReproError
from repro.warehouse.graphbuilder import build_classification_index


@pytest.fixture(scope="module")
def lookup(warehouse):
    classification = build_classification_index(warehouse.graph)
    return Lookup(classification, warehouse.inverted)


class TestSpecificityScores:
    def test_unambiguous_term_keeps_score(self, lookup):
        result = lookup.run(parse_query("Zurich"))
        interpretation = result.interpretations[0]
        assert score_interpretation_specificity(
            interpretation, result
        ) == pytest.approx(score_interpretation(interpretation))

    def test_ambiguous_term_discounted(self, lookup):
        result = lookup.run(parse_query("Sara"))  # four alternatives
        interpretation = result.interpretations[0]
        specific = score_interpretation_specificity(interpretation, result)
        location = score_interpretation(interpretation)
        assert specific < location

    def test_scores_bounded(self, lookup):
        result = lookup.run(parse_query("Sara given name"))
        for interpretation in result.interpretations:
            score = score_interpretation_specificity(interpretation, result)
            assert 0.0 < score <= 1.0


class TestStrategySelection:
    def test_strategies_listed(self):
        assert set(STRATEGIES) == {"location", "specificity"}

    def test_unknown_strategy_raises(self, lookup):
        result = lookup.run(parse_query("Zurich"))
        with pytest.raises(ReproError):
            rank(result, strategy="pagerank")

    def test_both_strategies_produce_ranked_lists(self, lookup):
        result = lookup.run(parse_query("Sara given name"))
        for strategy in STRATEGIES:
            ranked = rank(result, top_n=5, strategy=strategy)
            scores = [r.score for r in ranked]
            assert scores == sorted(scores, reverse=True)

    def test_soda_config_plumbs_strategy(self, warehouse):
        location = Soda(warehouse, SodaConfig(ranking="location"))
        specificity = Soda(warehouse, SodaConfig(ranking="specificity"))
        a = location.search("Credit Suisse", execute=False)
        b = specificity.search("Credit Suisse", execute=False)
        # the same statements are produced; only scores/order may differ
        assert set(a.sql_texts()) == set(b.sql_texts())
        assert max(s.score for s in b.statements) <= max(
            s.score for s in a.statements
        )

    def test_invalid_config_surfaces(self, warehouse):
        bad = Soda(warehouse, SodaConfig(ranking="bogus"))
        with pytest.raises(ReproError):
            bad.search("Zurich", execute=False)
