"""The asyncio HTTP front end: /search, /sql, /metrics, /healthz.

A real server on an ephemeral port, real ``urllib`` clients, a
warehouse with the concurrent (segmented) storage layout — the same
stack ``repro serve`` runs.  One server per module; the write tests
use their own private warehouse.
"""

import json
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.core.soda import Soda, SodaConfig
from repro.server import SodaServer
from repro.sqlengine.config import DEFAULT_SEGMENT_ROWS, EngineConfig
from repro.warehouse.minibank import build_minibank


@pytest.fixture(scope="module")
def server():
    warehouse = build_minibank(
        seed=42,
        scale=0.25,
        engine_config=EngineConfig(segment_rows=DEFAULT_SEGMENT_ROWS),
    )
    soda = Soda(warehouse, SodaConfig())
    server = SodaServer(soda, port=0, workers=4)
    server.start_background()
    yield server
    server.stop()


def _get(server, path):
    url = f"http://127.0.0.1:{server.port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(server, path, body: bytes):
    url = f"http://127.0.0.1:{server.port}{path}"
    request = urllib.request.Request(url, data=body)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestSearchEndpoint:
    def test_get_search_returns_the_wire_shape(self, server):
        status, payload = _get(server, "/search?q=Zurich&limit=2")
        assert status == 200
        assert payload["query"]["text"] == "Zurich"
        assert len(payload["statements"]) <= 2
        best = payload["statements"][0]
        assert best["sql"].startswith("SELECT")
        assert best["snippet"]["rows"]
        assert "soda_total" in payload["timings"]

    def test_post_search_json_body(self, server):
        body = json.dumps(
            {"query": "Sara Guttinger", "limit": 1, "execute": False}
        ).encode()
        status, payload = _post(server, "/search", body)
        assert status == 200
        assert len(payload["statements"]) <= 1
        assert payload["statements"][0]["snippet"] is None

    def test_search_matches_cli_json_contract(self, server):
        """The server answers with SearchResult.to_dict verbatim."""
        status, payload = _get(server, "/search?q=Zurich&limit=2")
        expected = (
            server.soda.search("Zurich", execute=True).to_dict(limit=2)
        )
        del payload["timings"], expected["timings"]  # wall-clock differs
        assert payload == expected

    def test_trace_flag_attaches_the_span_tree(self, server):
        status, payload = _get(server, "/search?q=Zurich&trace=1&limit=1")
        assert status == 200
        assert payload["trace"][0]["name"] == "search"

    def test_repeated_searches_hit_the_shared_cache(self, server):
        before = server.soda.result_cache.stats()["hits"]
        _get(server, "/search?q=gold%20agreement&limit=3")
        _get(server, "/search?q=gold%20agreement&limit=3")
        assert server.soda.result_cache.stats()["hits"] > before

    def test_missing_query_is_400(self, server):
        status, payload = _get(server, "/search")
        assert status == 400
        assert "q" in payload["error"]

    def test_bad_limit_is_400(self, server):
        status, __ = _get(server, "/search?q=Zurich&limit=banana")
        assert status == 400


class TestSqlEndpoint:
    def test_select(self, server):
        status, payload = _post(
            server, "/sql", b"SELECT COUNT(*) FROM currencies"
        )
        assert status == 200
        assert payload["columns"] == ["count(*)"]
        assert payload["rows"][0][0] > 0

    def test_write_then_read_back(self, server):
        status, payload = _post(
            server, "/sql",
            b"INSERT INTO currencies VALUES ('QQQ', 'Server Coin')",
        )
        assert status == 200
        assert payload["rowcount"] == 1
        __, readback = _post(
            server, "/sql",
            b"SELECT currency_nm FROM currencies WHERE currency_cd = 'QQQ'",
        )
        assert readback["rows"] == [["Server Coin"]]

    def test_sql_error_is_400_with_message(self, server):
        status, payload = _post(server, "/sql", b"SELEC nonsense")
        assert status == 400
        assert "error" in payload

    def test_empty_body_is_400(self, server):
        status, __ = _post(server, "/sql", b"")
        assert status == 400


class TestOperationalEndpoints:
    def test_healthz_reports_the_engine_config(self, server):
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["engine_config"]["segment_rows"] == (
            DEFAULT_SEGMENT_ROWS
        )
        assert payload["tables"] > 0

    def test_metrics_includes_serving_counters(self, server):
        _get(server, "/search?q=Zurich")
        status, payload = _get(server, "/metrics")
        assert status == 200
        assert payload["serving.http.requests"]["value"] > 0
        assert "serving.result_cache.hits" in payload
        assert "plan_cache.entries" in payload

    def test_metrics_prometheus_format(self, server):
        status, payload = _get(server, "/metrics?format=prometheus")
        assert status == 200
        assert "serving_http_requests" in payload["prometheus"]

    def test_unknown_route_is_404(self, server):
        status, payload = _get(server, "/nope")
        assert status == 404
        assert "no route" in payload["error"]

    def test_wrong_method_is_404(self, server):
        status, __ = _get(server, "/sql")  # GET on a POST-only route
        assert status == 404


class TestConcurrentClients:
    def test_parallel_searches_and_writes_all_succeed(self, server):
        statuses: list = []
        lock = threading.Lock()

        def search_client(text: str) -> None:
            status, __ = _get(
                server, f"/search?q={urllib.parse.quote(text)}&limit=2"
            )
            with lock:
                statuses.append(status)

        def write_client(step: int) -> None:
            status, __ = _post(
                server, "/sql",
                f"INSERT INTO currencies VALUES "
                f"('W{step:02d}', 'Load Coin {step}')".encode(),
            )
            with lock:
                statuses.append(status)

        threads = [
            threading.Thread(target=search_client, args=(text,))
            for text in ["Zurich", "Sara", "gold agreement", "Zurich"] * 3
        ] + [
            threading.Thread(target=write_client, args=(n,)) for n in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert statuses and set(statuses) == {200}
