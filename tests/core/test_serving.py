"""SearchSession: stateless serving over one warm Soda engine."""

import pytest

from repro.core.serving import SearchSession
from repro.core.soda import Soda, SodaConfig


class TestSearchSession:
    def test_search_delegates_to_engine(self, soda):
        session = SearchSession(soda, execute=False)
        result = session.search("Zurich")
        assert result.statements
        assert all(s.snippet is None for s in result.statements)

    def test_limit_trims_statements(self, soda):
        session = SearchSession(soda, execute=False, limit=2)
        result = session.search("Sara")
        assert len(result.statements) <= 2

    def test_limit_preserves_order_and_metadata(self, soda):
        full = soda.search("Sara", execute=False)
        trimmed = SearchSession(soda, execute=False, limit=1).search("Sara")
        assert trimmed.statements == full.statements[:1]
        assert trimmed.query.describe() == full.query.describe()
        assert trimmed.complexity == full.complexity

    def test_sessions_share_the_engine_state(self, soda):
        a = SearchSession(soda, execute=False)
        b = SearchSession(soda, execute=False, limit=1)
        assert a.soda is b.soda
        assert a.search("Zurich").statements[:1] == b.search("Zurich").statements

    def test_session_is_frozen(self, soda):
        session = SearchSession(soda)
        with pytest.raises(Exception):
            session.execute = False

    def test_search_many_applies_limit(self, soda):
        session = SearchSession(soda, execute=False, limit=1)
        results = session.search_many(["Sara", "Sara", "Zurich"])
        assert len(results) == 3
        assert all(len(r.statements) <= 1 for r in results)
        # dedup survives trimming: duplicate inputs share one object
        assert results[0] is results[1]

    def test_best_sql(self, soda):
        session = SearchSession(soda)
        sql = session.best_sql("Zurich")
        assert sql is not None and sql.startswith("SELECT")
        assert session.best_sql("zzzkwxq") is None

    def test_explain_passthrough(self, soda):
        session = SearchSession(soda)
        sql = session.best_sql("Zurich")
        assert "scan" in session.explain(sql)

    def test_no_feedback_mutation(self, warehouse):
        engine = Soda(warehouse, SodaConfig())
        SearchSession(engine, execute=False).search("Zurich")
        assert len(engine.feedback) == 0


@pytest.fixture(scope="module")
def writable_warehouse():
    """A private warehouse this module may mutate (inserts, feedback)."""
    from repro.warehouse.minibank import build_minibank

    return build_minibank(seed=42, scale=0.25)


class TestSessionResultCache:
    def test_repeat_query_served_from_cache(self, soda):
        # the default cache is shared engine-wide, so other tests may
        # have touched it: assert on deltas with a text only we use
        session = SearchSession(soda, execute=False)
        before = session.cache_stats()
        first = session.search("gold agreement repeat probe")
        second = session.search("gold agreement repeat probe")
        assert second is first
        stats = session.cache_stats()
        assert stats["hits"] == before["hits"] + 1
        assert stats["misses"] == before["misses"] + 1

    def test_cache_is_shared_across_sessions(self, soda):
        # the PR-9 redesign: sessions with the same presentation knobs
        # serve each other's cached results (one cache per Soda)
        a = SearchSession(soda, execute=False)
        b = SearchSession(soda, execute=False)
        assert a.search("Zurich") is b.search("Zurich")
        # a session with a *private* cache computes its own objects
        c = SearchSession(soda, execute=False, result_cache_size=4)
        assert c.search("Zurich") is not a.search("Zurich")
        assert c.search("Zurich") is c.search("Zurich")

    def test_presentation_knobs_partition_the_shared_cache(self, soda):
        full = SearchSession(soda, execute=False)
        trimmed = SearchSession(soda, execute=False, limit=1)
        assert full.search("Sara") is not trimmed.search("Sara")
        assert len(trimmed.search("Sara").statements) <= 1

    def test_zero_capacity_disables_memo(self, soda):
        session = SearchSession(soda, execute=False, result_cache_size=0)
        assert session.search("Zurich") is not session.search("Zurich")
        assert session.cache_stats() == {
            "hits": 0, "misses": 0, "size": 0, "capacity": 0,
        }

    def test_search_many_shares_cached_results(self, soda):
        session = SearchSession(soda, execute=False, limit=1)
        results = session.search_many(["Sara", "Sara", "Zurich"])
        assert results[0] is results[1]
        assert all(len(r.statements) <= 1 for r in results)
        # a later batch reuses the same memo entries
        again = session.search_many(["Sara"])
        assert again[0] is results[0]

    def test_insert_invalidates_cached_results(self, writable_warehouse):
        engine = Soda(writable_warehouse, SodaConfig())
        session = SearchSession(engine, execute=False)
        first = session.search("Zurich")
        table = writable_warehouse.database.table_names()[0]
        columns = writable_warehouse.database.table(table).columns
        writable_warehouse.database.insert_rows(
            table, [tuple(None for __ in columns)]
        )
        second = session.search("Zurich")
        assert second is not first
        assert session.cache_stats()["misses"] == 2

    def test_feedback_invalidates_cached_results(self, writable_warehouse):
        engine = Soda(writable_warehouse, SodaConfig())
        session = SearchSession(engine, execute=False)
        first = session.search("Zurich")
        best = first.best
        assert best is not None
        engine.feedback.like(best.sql)
        assert session.search("Zurich") is not first

    def test_feedback_clear_and_readd_invalidates(self, writable_warehouse):
        # clear() + a new judgement restores the old length; the token
        # must still change (FeedbackStore.version counts mutations)
        engine = Soda(writable_warehouse, SodaConfig())
        session = SearchSession(engine, execute=False)
        best = session.search("Zurich").best
        engine.feedback.like(best.sql)
        liked = session.search("Zurich")
        engine.feedback.clear()
        engine.feedback.dislike(best.sql)
        assert len(engine.feedback) == 1
        assert session.search("Zurich") is not liked

    def test_lru_eviction_respects_capacity(self, soda):
        session = SearchSession(soda, execute=False, result_cache_size=1)
        session.search("Zurich")
        session.search("Sara")  # evicts Zurich
        assert session.cache_stats()["size"] == 1
        session.search("Zurich")
        assert session.cache_stats()["misses"] == 3
