"""SearchSession: stateless serving over one warm Soda engine."""

import pytest

from repro.core.serving import SearchSession
from repro.core.soda import Soda, SodaConfig


class TestSearchSession:
    def test_search_delegates_to_engine(self, soda):
        session = SearchSession(soda, execute=False)
        result = session.search("Zurich")
        assert result.statements
        assert all(s.snippet is None for s in result.statements)

    def test_limit_trims_statements(self, soda):
        session = SearchSession(soda, execute=False, limit=2)
        result = session.search("Sara")
        assert len(result.statements) <= 2

    def test_limit_preserves_order_and_metadata(self, soda):
        full = soda.search("Sara", execute=False)
        trimmed = SearchSession(soda, execute=False, limit=1).search("Sara")
        assert trimmed.statements == full.statements[:1]
        assert trimmed.query.describe() == full.query.describe()
        assert trimmed.complexity == full.complexity

    def test_sessions_share_the_engine_state(self, soda):
        a = SearchSession(soda, execute=False)
        b = SearchSession(soda, execute=False, limit=1)
        assert a.soda is b.soda
        assert a.search("Zurich").statements[:1] == b.search("Zurich").statements

    def test_session_is_frozen(self, soda):
        session = SearchSession(soda)
        with pytest.raises(Exception):
            session.execute = False

    def test_search_many_applies_limit(self, soda):
        session = SearchSession(soda, execute=False, limit=1)
        results = session.search_many(["Sara", "Sara", "Zurich"])
        assert len(results) == 3
        assert all(len(r.statements) <= 1 for r in results)
        # dedup survives trimming: duplicate inputs share one object
        assert results[0] is results[1]

    def test_best_sql(self, soda):
        session = SearchSession(soda)
        sql = session.best_sql("Zurich")
        assert sql is not None and sql.startswith("SELECT")
        assert session.best_sql("zzzkwxq") is None

    def test_explain_passthrough(self, soda):
        session = SearchSession(soda)
        sql = session.best_sql("Zurich")
        assert "scan" in session.explain(sql)

    def test_no_feedback_mutation(self, warehouse):
        engine = Soda(warehouse, SodaConfig())
        SearchSession(engine, execute=False).search("Zurich")
        assert len(engine.feedback) == 0
