"""Search freshness after UPDATE/DELETE on the base data.

The whole point of DML-aware index maintenance: a long-lived engine
(warm `Soda`, memoized steps, serving sessions, plan cache) must serve
*current* answers immediately after a correction or retraction, with no
rebuild and no stale memo.
"""

import pytest

from repro.core.serving import SearchSession
from repro.core.soda import Soda, SodaConfig
from repro.index.inverted import InvertedIndex
from repro.warehouse.minibank import build_minibank


@pytest.fixture
def fresh_warehouse():
    return build_minibank(seed=42, scale=0.25)


class TestSearchAfterDml:
    def test_update_of_indexed_value_moves_search_results(
        self, fresh_warehouse
    ):
        """Renaming a city re-targets keyword search with no rebuild."""
        soda = Soda(fresh_warehouse, SodaConfig())
        before = soda.search("Zurich", execute=False)
        assert before.statements  # the city is indexed and findable

        changed = fresh_warehouse.database.execute(
            "UPDATE addresses SET city = 'Altstetten' WHERE city = 'Zurich'"
        ).rowcount
        assert changed > 0

        # the old value is gone from lookups, the new one resolves
        after_old = soda.search("Zurich", execute=False)
        assert not any(
            "addresses.city" in s.sql and "zurich" in s.sql.lower()
            for s in after_old.statements
        )
        after_new = soda.search("Altstetten", execute=False)
        assert any(
            "altstetten" in s.sql.lower() for s in after_new.statements
        )
        # and the maintained index still equals a from-scratch rebuild
        rebuilt = InvertedIndex.build(fresh_warehouse.database.catalog)
        assert fresh_warehouse.inverted.size_summary() == (
            rebuilt.size_summary()
        )

    def test_update_of_join_key_changes_executed_results(
        self, fresh_warehouse
    ):
        """Re-pointing a join key column re-joins on the next search."""
        database = fresh_warehouse.database
        probe = (
            "SELECT count(*) FROM agreements_td a, parties p "
            "WHERE a.party_id = p.id"
        )
        joined_before = database.execute(probe).rows[0][0]
        assert joined_before > 0
        # retarget every agreement at a party id that does not exist
        database.execute("UPDATE agreements_td SET party_id = 999999")
        assert database.execute(probe).rows[0][0] == 0

        # a search that executes over the re-keyed join sees the change
        soda = Soda(fresh_warehouse, SodaConfig())
        result = soda.search("gold agreement", execute=True)
        for statement in result.statements:
            if statement.snippet is None:
                continue
            if "parties" in statement.sql and "agreements_td" in statement.sql:
                assert statement.snippet.rows == []

    def test_delete_of_indexed_rows_empties_search(self, fresh_warehouse):
        soda = Soda(fresh_warehouse, SodaConfig())
        assert soda.search("Zurich", execute=False).statements
        removed = fresh_warehouse.database.execute(
            "DELETE FROM addresses WHERE city = 'Zurich'"
        ).rowcount
        assert removed > 0
        after = soda.search("Zurich", execute=False)
        assert not any(
            "addresses" in s.sql and "zurich" in s.sql.lower()
            for s in after.statements
        )

    def test_serving_session_memo_invalidated_by_dml(self, fresh_warehouse):
        session = SearchSession(
            Soda(fresh_warehouse, SodaConfig()), execute=False
        )
        first = session.search("Zurich")
        assert session.search("Zurich") is first  # memo hit
        assert session.cache_stats()["hits"] == 1

        fresh_warehouse.database.execute(
            "UPDATE addresses SET city = 'Oerlikon' WHERE city = 'Zurich'"
        )
        second = session.search("Zurich")
        assert second is not first  # token changed: memo was emptied
        assert session.cache_stats()["hits"] == 1
