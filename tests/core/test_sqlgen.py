"""Tests for Step 5 — SQL generation."""

import pytest

from repro.core.input_patterns import parse_query
from repro.sqlengine.parser import parse_select


@pytest.fixture(scope="module")
def search(soda):
    def run(text):
        return soda.search(text, execute=False)

    return run


class TestNonAggregate:
    def test_select_star_for_keyword_queries(self, search):
        result = search("private customers family name")
        assert result.best.sql.startswith("SELECT *")

    def test_generated_sql_parses(self, search):
        for text in (
            "Sara Guttinger",
            "customers Zurich financial instruments",
            "gold agreement",
        ):
            for statement in search(text).statements:
                parse_select(statement.sql)  # must not raise

    def test_join_conditions_in_where(self, search):
        result = search("private customers family name")
        assert "individuals.id = parties.id" in result.best.sql

    def test_filters_in_where(self, search):
        result = search("Sara Guttinger")
        positive = [
            s for s in result.statements
            if "individuals.given_nm LIKE '%sara%'" in s.sql
        ]
        assert positive
        assert any(
            "individuals.family_nm LIKE '%guttinger%'" in s.sql
            for s in positive
        )

    def test_paper_query1_shape(self, search):
        # paper Query 1: SELECT * FROM parties, individuals WHERE join AND
        # firstName = 'Sara' AND lastName = 'Guttinger'
        result = search("Sara Guttinger")
        best_like_paper = [
            s for s in result.statements
            if set(s.statement.tables) == {"parties", "individuals"}
        ]
        assert best_like_paper
        sql = best_like_paper[0].sql
        assert "individuals.id = parties.id" in sql
        assert "LIKE '%sara%'" in sql and "LIKE '%guttinger%'" in sql

    def test_statements_deduplicated(self, search):
        result = search("private customers family name")
        sqls = result.sql_texts()
        assert len(sqls) == len(set(sqls))


class TestAggregate:
    def test_paper_query3_shape(self, search):
        # sum (amount) group by (transaction date)
        result = search("sum (amount) group by (transaction date)")
        assert result.best is not None
        sql = result.best.sql
        assert sql.startswith("SELECT sum(")
        assert "GROUP BY" in sql

    def test_count_star_for_q9(self, search):
        result = search("select count() private customers Switzerland")
        assert "count(*)" in result.best.sql

    def test_sum_investments_group_currency(self, search):
        result = search("sum(investments) group by (currency)")
        sql = result.best.sql
        assert "sum(investments_td.amount)" in sql
        assert "GROUP BY" in sql

    def test_aggregate_ordered_descending(self, search):
        # the paper's Query 4 orders by the aggregate, descending
        result = search("sum(investments) group by (currency)")
        assert "ORDER BY sum(investments_td.amount) DESC" in result.best.sql


class TestTopN:
    def test_top_10_trading_volume(self, search):
        # paper Section 4.4.2: metadata-defined aggregation + top N
        result = search("Top 10 trading volume customers")
        assert result.best is not None
        sql = result.best.sql
        assert "sum(fi_transactions.amount)" in sql
        assert "LIMIT 10" in sql
        assert "DESC" in sql

    def test_top_n_groups_by_entity_key(self, search):
        result = search("Top 10 trading volume customers")
        assert "GROUP BY parties.id" in result.best.sql


class TestDisconnected:
    def test_disconnected_statement_flagged(self, search):
        result = search("Sara given name")
        flagged = [s for s in result.statements if s.disconnected]
        assert flagged
        # disconnected statements have no join between the island and rest
        assert any("individual_name_hist" in s.sql for s in flagged)
