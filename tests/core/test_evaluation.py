"""Tests for precision/recall evaluation against gold standards."""

import pytest

from repro.core.evaluation import (
    PrecisionRecall,
    compare_results,
    evaluate_sql,
    match_columns,
    normalize_value,
)
from repro.errors import EvaluationError
from repro.sqlengine.database import Database
from repro.sqlengine.executor import ResultSet


def rs(columns, rows):
    return ResultSet(columns=list(columns), rows=[tuple(r) for r in rows])


class TestColumnMatching:
    def test_exact_label_match(self):
        pairs = match_columns(["a", "b"], ["b"])
        assert pairs == [(1, 0)]

    def test_case_insensitive(self):
        assert match_columns(["A"], ["a"]) == [(0, 0)]

    def test_suffix_match_qualified_vs_bare(self):
        pairs = match_columns(["individuals.family_nm"], ["family_nm"])
        assert pairs == [(0, 0)]

    def test_suffix_match_requires_uniqueness(self):
        # two columns with suffix 'id' on the SODA side: no suffix match
        pairs = match_columns(["parties.id", "individuals.id"], ["id"])
        assert pairs == []

    def test_exact_beats_suffix(self):
        pairs = match_columns(
            ["parties.id", "individuals.id"], ["individuals.id"]
        )
        assert pairs == [(1, 0)]

    def test_no_overlap(self):
        assert match_columns(["a"], ["b"]) == []


class TestCompareResults:
    def test_identical_results(self):
        a = rs(["x"], [(1,), (2,)])
        metrics = compare_results(a, [rs(["x"], [(1,), (2,)])])
        assert metrics.precision == 1.0 and metrics.recall == 1.0

    def test_subset_high_precision_low_recall(self):
        soda = rs(["x"], [(1,)])
        gold = rs(["x"], [(1,), (2,), (3,), (4,), (5,)])
        metrics = compare_results(soda, [gold])
        assert metrics.precision == 1.0
        assert metrics.recall == pytest.approx(0.2)

    def test_superset_low_precision_full_recall(self):
        soda = rs(["x"], [(1,), (2,), (3,), (4,)])
        gold = rs(["x"], [(1,), (2,)])
        metrics = compare_results(soda, [gold])
        assert metrics.precision == 0.5
        assert metrics.recall == 1.0

    def test_no_common_columns_is_zero(self):
        metrics = compare_results(rs(["a"], [(1,)]), [rs(["b"], [(1,)])])
        assert metrics.is_zero

    def test_projection_onto_common_columns(self):
        soda = rs(["parties.id", "individuals.family_nm"], [(1, "Meier")])
        gold = rs(["family_nm"], [("Meier",), ("Huber",)])
        metrics = compare_results(soda, [gold])
        assert metrics.precision == 1.0
        assert metrics.recall == 0.5

    def test_duplicates_collapse(self):
        soda = rs(["x"], [(1,), (1,), (1,)])
        gold = rs(["x"], [(1,)])
        metrics = compare_results(soda, [gold])
        assert metrics.precision == 1.0 and metrics.recall == 1.0

    def test_multi_statement_gold_union_recall(self):
        soda = rs(["family_nm", "org_nm"], [("Meier", "CS")])
        gold1 = rs(["family_nm"], [("Meier",), ("Huber",)])
        gold2 = rs(["org_nm"], [("CS",), ("UBS",)])
        metrics = compare_results(soda, [gold1, gold2])
        # one of two covered in each statement
        assert metrics.recall == pytest.approx(0.5)
        assert metrics.precision == 1.0

    def test_multi_statement_gold_precision_requires_all(self):
        soda = rs(["family_nm", "org_nm"], [("Meier", "OLD-NAME")])
        gold1 = rs(["family_nm"], [("Meier",)])
        gold2 = rs(["org_nm"], [("CS",)])
        metrics = compare_results(soda, [gold1, gold2])
        assert metrics.precision == 0.0

    def test_empty_soda_vs_nonempty_gold(self):
        metrics = compare_results(rs(["x"], []), [rs(["x"], [(1,)])])
        assert metrics.is_zero

    def test_empty_both_is_perfect(self):
        metrics = compare_results(rs(["x"], []), [rs(["x"], [])])
        assert metrics.precision == 1.0 and metrics.recall == 1.0

    def test_no_gold_raises(self):
        with pytest.raises(EvaluationError):
            compare_results(rs(["x"], []), [])

    def test_numeric_normalisation(self):
        soda = rs(["n"], [(2,)])
        gold = rs(["n"], [(2.0,)])
        metrics = compare_results(soda, [gold])
        assert metrics.precision == 1.0

    def test_date_normalisation(self):
        import datetime

        assert normalize_value(datetime.date(2010, 1, 1)) == "2010-01-01"


class TestEvaluateSql:
    @pytest.fixture
    def db(self):
        database = Database()
        database.execute("CREATE TABLE t (id INT, name TEXT)")
        database.execute(
            "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')"
        )
        return database

    def test_end_to_end(self, db):
        metrics = evaluate_sql(
            db,
            "SELECT id FROM t WHERE id < 3",
            ["SELECT id FROM t"],
        )
        assert metrics.precision == 1.0
        assert metrics.recall == pytest.approx(2 / 3)

    def test_estimated_rows_short_circuit(self, db):
        metrics = evaluate_sql(
            db,
            "SELECT id FROM t",
            ["SELECT id FROM t"],
            estimated_rows=10_000_000,
            max_rows=100,
        )
        assert metrics.is_zero
        assert metrics.gold_rows == 3

    def test_properties(self):
        assert PrecisionRecall(1.0, 0.2, 1, 5).is_positive
        assert PrecisionRecall(0.0, 0.0, 0, 5).is_zero
        assert not PrecisionRecall(1.0, 0.0, 1, 5).is_positive
