"""End-to-end observability: traced searches, metrics, slow-query log."""

import json
import logging

import pytest

from repro.core.soda import Soda, SodaConfig
from repro.obs.metrics import registry
from repro.obs.tracing import NULL_TRACER, current_tracer


@pytest.fixture
def soda_small(small_warehouse):
    return Soda(small_warehouse, SodaConfig())


def span_names(tree):
    """Flatten a ``Tracer.tree()`` into depth-first span names."""
    names = []
    for name, children in tree:
        names.append(name)
        names.extend(span_names(children))
    return names


class TestTracedSearch:
    def test_untraced_search_has_no_trace(self, soda_small):
        result = soda_small.search("Zurich", execute=False)
        assert result.trace is None

    def test_traced_search_exposes_the_span_tree(self, soda_small):
        result = soda_small.search("Zurich", trace=True)
        tree = result.trace.tree()
        assert len(tree) == 1
        root_name, children = tree[0]
        assert root_name == "search"
        step_names = [name for name, __ in children]
        assert step_names[:5] == [
            "step:lookup", "step:rank", "step:tables", "step:filters",
            "step:sqlgen",
        ]
        assert "step:execute" in step_names

    def test_execute_step_nests_plan_and_execute_spans(self, soda_small):
        result = soda_small.search("Zurich", trace=True)
        (root,) = result.trace.roots
        execute_step = next(
            span for span in root.children if span.name == "step:execute"
        )
        child_names = {span.name for span in execute_step.children}
        assert "plan" in child_names
        assert "execute" in child_names

    def test_trace_tree_is_deterministic(self, soda_small):
        first = soda_small.search("Zurich", trace=True)
        second = soda_small.search("Zurich", trace=True)
        assert first.trace.tree() == second.trace.tree()

    def test_results_identical_with_tracing_on_and_off(self, soda_small):
        plain = soda_small.search("customers Zurich")
        traced = soda_small.search("customers Zurich", trace=True)
        assert [s.sql for s in plain.statements] == [
            s.sql for s in traced.statements
        ]
        for a, b in zip(plain.statements, traced.statements):
            assert a.score == b.score
            if a.snippet is None:
                assert b.snippet is None
            else:
                assert a.snippet.rows == b.snippet.rows

    def test_active_tracer_restored_after_search(self, soda_small):
        soda_small.search("Zurich", trace=True, execute=False)
        assert current_tracer() is NULL_TRACER

    def test_render_and_json_exports_work_end_to_end(self, soda_small):
        result = soda_small.search("Zurich", trace=True)
        rendered = result.trace.render()
        assert rendered.splitlines()[0].startswith("search")
        parsed = json.loads(result.trace.to_json())
        assert parsed[0]["name"] == "search"


class TestMetricsEndpoints:
    def test_database_metrics_snapshot(self, small_warehouse):
        small_warehouse.database.execute("SELECT count(*) FROM parties")
        snapshot = small_warehouse.database.metrics()
        assert snapshot["engine.rows_scanned"]["kind"] == "counter"
        assert snapshot["engine.rows_scanned"]["value"] > 0
        assert snapshot["plan_cache.capacity"]["value"] > 0

    def test_soda_metrics_counts_searches(self, soda_small):
        before = registry().counter("pipeline.searches").value
        soda_small.search("Zurich", execute=False)
        snapshot = soda_small.metrics()
        assert snapshot["pipeline.searches"]["value"] == before + 1

    def test_disabled_registry_freezes_counters(self, soda_small):
        reg = registry()
        counter = reg.counter("pipeline.searches")
        reg.enabled = False
        try:
            before = counter.value
            result = soda_small.search("customers Zurich")
            assert counter.value == before
        finally:
            reg.enabled = True
        assert result.statements  # the search itself still works

    def test_search_results_identical_with_metrics_disabled(self, soda_small):
        reg = registry()
        enabled_result = soda_small.search("customers Zurich")
        reg.enabled = False
        try:
            disabled_result = soda_small.search("customers Zurich")
        finally:
            reg.enabled = True
        assert [s.sql for s in enabled_result.statements] == [
            s.sql for s in disabled_result.statements
        ]


class TestSlowQueryLog:
    def test_logs_structured_json_over_threshold(
        self, small_warehouse, caplog
    ):
        soda = Soda(small_warehouse, SodaConfig(slow_query_ms=0.0))
        with caplog.at_level(logging.WARNING, logger="repro.soda.slow_query"):
            soda.search("customers Zurich")
        records = [
            r for r in caplog.records if r.name == "repro.soda.slow_query"
        ]
        assert len(records) == 1
        payload = json.loads(records[0].getMessage())
        assert payload["query"] == "customers Zurich"
        assert payload["total_ms"] >= 0.0
        assert payload["threshold_ms"] == 0.0
        assert set(payload["steps_ms"]) == {
            "lookup", "rank", "tables", "filters", "sql", "execute"
        }
        assert payload["statements"] >= 1
        assert isinstance(payload["plan_cache_hit"], bool)

    def test_fast_queries_stay_silent(self, small_warehouse, caplog):
        soda = Soda(small_warehouse, SodaConfig(slow_query_ms=60_000.0))
        with caplog.at_level(logging.WARNING, logger="repro.soda.slow_query"):
            soda.search("Zurich", execute=False)
        assert not [
            r for r in caplog.records if r.name == "repro.soda.slow_query"
        ]

    def test_disabled_by_default(self, soda_small, caplog):
        assert SodaConfig().slow_query_ms is None
        with caplog.at_level(logging.WARNING, logger="repro.soda.slow_query"):
            soda_small.search("Zurich", execute=False)
        assert not [
            r for r in caplog.records if r.name == "repro.soda.slow_query"
        ]

    def test_slow_query_counter_increments(self, small_warehouse):
        counter = registry().counter("soda.slow_queries")
        before = counter.value
        soda = Soda(small_warehouse, SodaConfig(slow_query_ms=0.0))
        soda.search("Zurich", execute=False)
        assert counter.value == before + 1
