"""Tests for the default Credit Suisse pattern set (Figs. 7/8)."""

import pytest

from repro.core.patterns import (
    DEFAULT_RESOLVER,
    PATTERN_SOURCES,
    build_default_library,
)
from repro.errors import PatternError
from repro.graph.pattern import match_pattern
from repro.warehouse.graphbuilder import (
    column_uri,
    join_uri,
    ontology_term_uri,
    table_uri,
)


@pytest.fixture(scope="module")
def library():
    return build_default_library()


class TestLibrary:
    def test_all_paper_patterns_present(self, library):
        for name in (
            "table", "column", "foreign_key", "join_relationship",
            "inheritance_child", "business_filter", "business_aggregation",
        ):
            assert name in library

    def test_sources_parse_cleanly(self):
        # the library builder would raise on malformed sources
        assert set(PATTERN_SOURCES) == set(build_default_library().names())

    def test_override_replaces_pattern(self):
        library = build_default_library(
            {"table": '( x tablename t:"only_this" ) & '
                      "( x type physical_table )"}
        )
        pattern = library.get("table")
        assert any(
            getattr(clause, "obj", None) is not None for clause in pattern.clauses
        )

    def test_bad_override_raises(self):
        with pytest.raises(PatternError):
            build_default_library({"table": "( broken"})


class TestPatternsOnMinibank:
    def test_table_pattern_matches_every_table(self, library, warehouse):
        pattern = library.get("table")
        for name in warehouse.database.table_names():
            matches = match_pattern(
                warehouse.graph, pattern, table_uri(name), library
            )
            assert matches, name

    def test_column_pattern(self, library, warehouse):
        pattern = library.get("column")
        matches = match_pattern(
            warehouse.graph, pattern, column_uri("individuals", "family_nm"),
            library,
        )
        assert matches
        assert matches[0]["z"] == table_uri("individuals")

    def test_join_relationship_pattern(self, library, warehouse):
        pattern = library.get("join_relationship")
        matches = match_pattern(
            warehouse.graph, pattern, join_uri("j_indiv_domicile"), library
        )
        assert matches
        binding = matches[0]
        assert binding["l"] == column_uri("individuals", "domicile_adr_id")
        assert binding["r"] == column_uri("addresses", "id")

    def test_inheritance_child_pattern_at_child(self, library, warehouse):
        pattern = library.get("inheritance_child")
        matches = match_pattern(
            warehouse.graph, pattern, table_uri("individuals"), library
        )
        assert matches
        assert matches[0]["p"] == table_uri("parties")

    def test_inheritance_child_pattern_rejects_parent(self, library, warehouse):
        pattern = library.get("inheritance_child")
        assert not match_pattern(
            warehouse.graph, pattern, table_uri("parties"), library
        )

    def test_business_filter_pattern(self, library, warehouse):
        pattern = library.get("business_filter")
        node = ontology_term_uri("customer_ontology", "wealthy customers")
        matches = match_pattern(warehouse.graph, pattern, node, library)
        assert matches
        assert matches[0]["op"].value == ">="

    def test_business_aggregation_pattern(self, library, warehouse):
        pattern = library.get("business_aggregation")
        node = ontology_term_uri("product_ontology", "trading volume")
        matches = match_pattern(warehouse.graph, pattern, node, library)
        assert matches
        assert matches[0]["f"].value == "sum"

    def test_resolver_covers_pattern_vocabulary(self):
        # every bare word used in the sources must resolve
        import re

        words = set()
        for source in PATTERN_SOURCES.values():
            for clause in re.findall(r"\(([^)]*)\)", source):
                for word in clause.split():
                    if word.startswith("t:") or word.startswith("matches-"):
                        continue
                    words.add(word)
        unresolved = {
            w for w in words
            if w not in DEFAULT_RESOLVER and len(w) > 2
        }
        # anything longer than 2 chars that is not a variable must be known
        assert unresolved == set(), unresolved
