"""Tests for the Soda facade: pipeline wiring, snippets, timings, config."""

import pytest

from repro.core.soda import Soda, SodaConfig


class TestSearch:
    def test_returns_scored_statements(self, soda):
        result = soda.search("Sara Guttinger")
        assert result.statements
        scores = [s.score for s in result.statements]
        assert scores == sorted(scores, reverse=True)

    def test_best_property(self, soda):
        result = soda.search("Zurich")
        assert result.best is result.statements[0]

    def test_empty_lookup_yields_no_statements(self, soda):
        result = soda.search("zzzkwxq")
        assert result.statements == []
        assert result.best is None

    def test_complexity_exposed(self, soda):
        result = soda.search("Sara")
        assert result.complexity == 4

    def test_timings_populated(self, soda):
        result = soda.search("customers Zurich financial instruments")
        timings = result.timings
        assert timings.lookup >= 0
        assert timings.soda_total > 0
        assert timings.total >= timings.soda_total

    def test_interpretation_description_attached(self, soda):
        result = soda.search("Zurich")
        assert "addresses.city" in result.best.interpretation_description


class TestSnippets:
    def test_snippet_capped_at_twenty_rows(self, soda):
        # "partially executes the Top 10 in order to generate result
        # snippets (up to twenty tuples)"
        result = soda.search("customers")
        for statement in result.statements:
            if statement.snippet is not None:
                assert len(statement.snippet.rows) <= 20

    def test_execute_false_skips_snippets(self, soda):
        result = soda.search("Zurich", execute=False)
        assert all(s.snippet is None for s in result.statements)
        assert result.timings.execute == 0.0

    def test_oversized_statement_skipped(self, warehouse):
        config = SodaConfig(max_execution_rows=10)
        soda = Soda(warehouse, config)
        result = soda.search("Sara given name")
        skipped = [s for s in result.statements if s.execution_error]
        assert skipped
        assert "exceeds" in skipped[0].execution_error

    def test_snippet_rows_config(self, warehouse):
        soda = Soda(warehouse, SodaConfig(snippet_rows=3))
        result = soda.search("customers")
        lengths = [
            len(s.snippet.rows) for s in result.statements if s.snippet is not None
        ]
        assert lengths and max(lengths) <= 3


class TestConfig:
    def test_top_n_limits_statements(self, warehouse):
        narrow = Soda(warehouse, SodaConfig(top_n=1))
        result = narrow.search("Sara")
        assert len(result.statements) <= 1

    def test_dbpedia_ablation_changes_lookup(self, warehouse):
        with_dbpedia = Soda(warehouse, SodaConfig(use_dbpedia=True))
        without = Soda(warehouse, SodaConfig(use_dbpedia=False))
        assert with_dbpedia.search("client", execute=False).complexity >= 1
        assert without.search("client", execute=False).statements == []

    def test_pattern_override_extension_point(self, warehouse):
        # replacing the basic patterns with ones that match nothing makes
        # the tables step come up empty -> no statements
        overrides = {
            "table": '( x tablename t:"no_such_table" ) & '
                     "( x type physical_table )",
            "column": '( x columnname t:"no_such_column" ) & '
                      "( x type physical_column ) & ( z column x )",
        }
        crippled = Soda(warehouse, SodaConfig(pattern_overrides=overrides))
        result = crippled.search("private customers", execute=False)
        assert result.statements == []

    def test_parse_helper(self, soda):
        query = soda.parse("sum(investments) group by (currency)")
        assert query.has_aggregation
