"""Tests for Step 4 — filter collection and column resolution."""

import pytest

from repro.core.input_patterns import parse_query
from repro.core.lookup import Lookup
from repro.core.patterns import build_default_library
from repro.core.ranking import rank
from repro.core.filters import FiltersStep, _parse_metadata_value
from repro.core.tables import TablesStep
from repro.warehouse.graphbuilder import build_classification_index


@pytest.fixture(scope="module")
def pipeline(warehouse):
    classification = build_classification_index(warehouse.graph)
    lookup = Lookup(classification, warehouse.inverted)
    tables = TablesStep(warehouse.graph, build_default_library())
    filters = FiltersStep(warehouse.graph, warehouse.database.catalog)
    return lookup, tables, filters


def run_best(pipeline, text):
    lookup, tables, filters = pipeline
    result = lookup.run(parse_query(text))
    best = rank(result, top_n=1)[0]
    tables_result = tables.run(best.interpretation)
    return filters.run(best.interpretation, result.slots, tables_result)


class TestBaseDataFilters:
    def test_like_filter_for_keyword(self, pipeline):
        result = run_best(pipeline, "Zurich")
        assert len(result.filters) == 1
        condition = result.filters[0]
        assert condition.origin == "base_data"
        assert condition.expr.to_sql() == "(addresses.city LIKE '%zurich%')"

    def test_phrase_filter(self, pipeline):
        lookup, tables, filters = pipeline
        result = lookup.run(parse_query("Credit Suisse"))
        ranked = rank(result, top_n=10)
        sqls = set()
        for r in ranked:
            tr = tables.run(r.interpretation)
            fr = filters.run(r.interpretation, result.slots, tr)
            sqls.update(c.expr.to_sql() for c in fr.filters)
        assert "(organizations.org_nm LIKE '%credit suisse%')" in sqls

    def test_filters_deduplicated(self, pipeline):
        result = run_best(pipeline, "Zurich Zurich")
        assert len(result.filters) == 1


class TestInputOperatorFilters:
    def test_comparison_resolves_attribute_to_column(self, pipeline):
        result = run_best(pipeline, "trade order period > date(2011-09-01)")
        rendered = [c.expr.to_sql() for c in result.filters]
        assert "(orders_td.order_period_dt > '2011-09-01')" in rendered

    def test_salary_comparison(self, pipeline):
        result = run_best(pipeline, "salary >= 100000")
        rendered = [c.expr.to_sql() for c in result.filters]
        assert "(individuals.salary >= 100000)" in rendered

    def test_between_builds_range(self, pipeline):
        result = run_best(
            pipeline,
            "transaction date between date(2010-01-01) date(2010-12-31)",
        )
        rendered = [c.expr.to_sql() for c in result.filters]
        assert any("BETWEEN" in sql for sql in rendered)

    def test_like_operator(self, pipeline):
        result = run_best(pipeline, "family name like gutt")
        rendered = [c.expr.to_sql() for c in result.filters]
        assert "(individuals.family_nm LIKE '%gutt%')" in rendered

    def test_dbpedia_synonym_resolves(self, pipeline):
        # "birthday" is a DBpedia synonym of individuals.birth_dt
        result = run_best(pipeline, "birthday = date(1981-04-23)")
        rendered = [c.expr.to_sql() for c in result.filters]
        assert "(individuals.birth_dt = '1981-04-23')" in rendered

    def test_unresolvable_operand_reported(self, pipeline):
        result = run_best(pipeline, "customers > 5")
        # 'customers' resolves to entities, never to a column... the
        # resolution walks down to *some* column, so either a filter or an
        # unresolved marker must exist
        assert result.filters or result.unresolved


class TestMetadataFilters:
    def test_wealthy_customers_business_filter(self, pipeline):
        # the paper's flagship metadata predicate
        result = run_best(pipeline, "wealthy customers")
        rendered = [c.expr.to_sql() for c in result.filters]
        assert "(individuals.salary >= 1000000)" in rendered
        origins = {c.origin for c in result.filters}
        assert "metadata" in origins


class TestAggregations:
    def test_explicit_sum_resolves_via_ontology(self, pipeline):
        result = run_best(pipeline, "sum(investments) group by (currency)")
        assert len(result.aggregations) == 1
        agg = result.aggregations[0]
        assert (agg.func, agg.table, agg.column) == (
            "sum", "investments_td", "amount"
        )

    def test_group_by_resolved(self, pipeline):
        result = run_best(pipeline, "sum(investments) group by (currency)")
        assert len(result.group_by) == 1
        assert result.group_by[0].column in ("currency_cd",)

    def test_count_star(self, pipeline):
        result = run_best(pipeline, "select count() private customers")
        agg = result.aggregations[0]
        assert agg.func == "count" and agg.table is None


class TestValueParsing:
    def test_metadata_value_int(self):
        assert _parse_metadata_value("1000000") == 1000000

    def test_metadata_value_float(self):
        assert _parse_metadata_value("1.5") == 1.5

    def test_metadata_value_date(self):
        import datetime

        assert _parse_metadata_value("2011-09-01") == datetime.date(2011, 9, 1)

    def test_metadata_value_text(self):
        assert _parse_metadata_value("EXECUTED") == "EXECUTED"
