"""Tests for Step 1 — Lookup (Fig. 5 query classification)."""

import pytest

from repro.core.input_patterns import parse_query
from repro.core.lookup import Lookup
from repro.index.classification import EntrySource
from repro.warehouse.graphbuilder import build_classification_index


@pytest.fixture(scope="module")
def lookup(warehouse):
    classification = build_classification_index(warehouse.graph)
    return Lookup(classification, warehouse.inverted)


class TestSegmentation:
    def test_longest_match_wins(self, lookup):
        segments, unknown = lookup.segment_words(
            ["private", "customers", "switzerland"]
        )
        assert segments == ["private customers", "switzerland"]
        assert unknown == []

    def test_unknown_words_ignored(self, lookup):
        # the paper: "'and' might be unknown and we therefore ignore it"
        segments, unknown = lookup.segment_words(["salary", "flurbl"])
        assert segments == ["salary"]
        assert unknown == ["flurbl"]

    def test_base_data_phrase_merges(self, lookup):
        segments, __ = lookup.segment_words(["credit", "suisse"])
        assert segments == ["credit suisse"]

    def test_gold_agreement_stays_split(self, lookup):
        # "gold agreement" is not contiguous in any stored value, so the
        # two words classify separately (B + S, as in Table 2 / Q4.0)
        segments, __ = lookup.segment_words(["gold", "agreement"])
        assert segments == ["gold", "agreement"]


class TestAlternatives:
    def test_fig5_customers_once_in_ontology(self, lookup):
        entries = lookup.alternatives("customers")
        assert len(entries) == 1
        assert entries[0].source is EntrySource.DOMAIN_ONTOLOGY

    def test_fig5_zurich_once_in_base_data(self, lookup):
        entries = lookup.alternatives("zurich")
        assert len(entries) == 1
        assert entries[0].source is EntrySource.BASE_DATA
        assert (entries[0].table, entries[0].column) == ("addresses", "city")

    def test_fig5_financial_instruments_twice(self, lookup):
        entries = lookup.alternatives("financial instruments")
        assert [e.source for e in entries] == [
            EntrySource.CONCEPTUAL_SCHEMA, EntrySource.LOGICAL_SCHEMA
        ]

    def test_sara_in_four_columns(self, lookup):
        # individuals, individual_name_hist, organizations, org hist
        entries = lookup.base_data_alternatives("sara")
        assert len(entries) == 4

    def test_metadata_alternatives_exclude_base_data(self, lookup):
        for entry in lookup.metadata_alternatives("salary"):
            assert entry.source is not EntrySource.BASE_DATA


class TestRun:
    def test_fig5_complexity_is_two(self, lookup):
        # 1 (customers) x 1 (zurich) x 2 (financial instruments) = 2
        result = lookup.run(parse_query("customers Zurich financial instruments"))
        assert result.complexity == 2
        assert len(result.interpretations) == 2

    def test_classification_summary(self, lookup):
        result = lookup.run(parse_query("customers Zurich financial instruments"))
        summary = result.classification_summary()
        assert summary["customers"] == ["domain_ontology"]
        assert summary["zurich"] == ["base_data"]
        assert summary["financial instruments"] == [
            "conceptual_schema", "logical_schema"
        ]

    def test_comparison_operand_binds_last_segment(self, lookup):
        result = lookup.run(parse_query("trade order period > date(2011-09-01)"))
        kinds = [(slot.kind, slot.term) for slot in result.slots]
        assert ("keyword", "trade order") in kinds
        assert ("comparison", "period") in kinds

    def test_aggregation_slot_without_argument(self, lookup):
        result = lookup.run(parse_query("select count() private customers"))
        agg_slots = [s for s in result.slots if s.kind == "aggregation"]
        assert len(agg_slots) == 1
        assert agg_slots[0].term is None
        assert agg_slots[0].option_count() == 1

    def test_groupby_slot(self, lookup):
        result = lookup.run(parse_query("sum(investments) group by (currency)"))
        group_slots = [s for s in result.slots if s.kind == "groupby"]
        assert len(group_slots) == 1
        assert group_slots[0].alternatives

    def test_complexity_is_product(self, lookup):
        result = lookup.run(parse_query("Sara"))
        assert result.complexity == 4  # four columns hold a Sara

    def test_interpretation_product_capped(self, warehouse):
        classification = build_classification_index(warehouse.graph)
        capped = Lookup(classification, warehouse.inverted, max_interpretations=2)
        result = capped.run(parse_query("Sara"))
        assert len(result.interpretations) == 2
        assert result.truncated

    def test_ignored_terms_recorded(self, lookup):
        result = lookup.run(parse_query("flurbl customers"))
        assert "flurbl" in result.ignored_terms

    def test_entry_point_describe(self, lookup):
        result = lookup.run(parse_query("Zurich"))
        entry = result.slots[0].alternatives[0]
        assert "addresses.city" in entry.describe()
        description = result.interpretations[0].describe(result.slots)
        assert "zurich" in description
