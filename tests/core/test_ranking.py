"""Tests for Step 2 — rank and top N."""

import pytest

from repro.core.input_patterns import parse_query
from repro.core.lookup import Assignment, Interpretation, Lookup
from repro.core.ranking import (
    SOURCE_SCORES,
    UNRESOLVED_SCORE,
    rank,
    score_interpretation,
)
from repro.core.lookup import EntryPoint
from repro.index.classification import EntrySource
from repro.warehouse.graphbuilder import build_classification_index


def entry(source, node="soda://x/y"):
    return EntryPoint(term="t", source=source, node=node)


def interpretation(*entries):
    return Interpretation(
        assignments=tuple(
            Assignment(i, e) for i, e in enumerate(entries)
        )
    )


class TestScores:
    def test_ontology_beats_dbpedia(self):
        # the paper: "a keyword found in DBpedia gets a lower score than a
        # keyword found in the domain ontology"
        assert SOURCE_SCORES[EntrySource.DOMAIN_ONTOLOGY] > (
            SOURCE_SCORES[EntrySource.DBPEDIA]
        )

    def test_conceptual_beats_physical(self):
        assert SOURCE_SCORES[EntrySource.CONCEPTUAL_SCHEMA] > (
            SOURCE_SCORES[EntrySource.PHYSICAL_SCHEMA]
        )

    def test_score_is_mean(self):
        score = score_interpretation(
            interpretation(
                entry(EntrySource.DOMAIN_ONTOLOGY), entry(EntrySource.DBPEDIA)
            )
        )
        expected = (
            SOURCE_SCORES[EntrySource.DOMAIN_ONTOLOGY]
            + SOURCE_SCORES[EntrySource.DBPEDIA]
        ) / 2
        assert score == pytest.approx(expected)

    def test_unresolved_slot_scores_low(self):
        score = score_interpretation(
            Interpretation(assignments=(Assignment(0, None),))
        )
        assert score == UNRESOLVED_SCORE

    def test_empty_interpretation(self):
        assert score_interpretation(Interpretation(assignments=())) == 0.0


class TestRank:
    @pytest.fixture(scope="class")
    def lookup_result(self, warehouse):
        classification = build_classification_index(warehouse.graph)
        lookup = Lookup(classification, warehouse.inverted)
        return lookup.run(parse_query("Sara given name"))

    def test_descending_scores(self, lookup_result):
        ranked = rank(lookup_result, top_n=10)
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_top_n_cut(self, lookup_result):
        assert len(rank(lookup_result, top_n=3)) == 3

    def test_deterministic_tie_break(self, lookup_result):
        first = rank(lookup_result, top_n=10)
        second = rank(lookup_result, top_n=10)
        assert [r.interpretation for r in first] == [
            r.interpretation for r in second
        ]

    def test_conceptual_interpretation_ranks_first(self, lookup_result):
        # "given name" in the conceptual schema outranks the logical hits
        best = rank(lookup_result, top_n=1)[0]
        sources = [
            a.entry.source
            for a in best.interpretation.assignments
            if a.entry is not None
        ]
        assert EntrySource.CONCEPTUAL_SCHEMA in sources
