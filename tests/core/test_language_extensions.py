"""Tests for language extensions: stopwords, spelled top-N, valid-at.

These implement the paper's conversational intro queries ("Show me all
my wealthy customers who live in Zurich", "Who are my top ten customers
in terms of revenue?") and its future-work item on bi-temporal
historization ("valid at date(...)").
"""

import datetime

import pytest

from repro.core.input_patterns import STOPWORDS, parse_query
from repro.core.soda import Soda, SodaConfig


class TestStopwords:
    def test_stopwords_removed_from_keywords(self):
        query = parse_query("show me all my wealthy customers")
        assert query.keywords == (("wealthy", "customers"),)

    def test_stopwords_do_not_split_phrases(self):
        query = parse_query("the private customers")
        assert query.keywords == (("private", "customers"),)

    def test_stopword_list_sane(self):
        # stopwords must never shadow schema vocabulary
        for term in ("customers", "salary", "currency", "period", "names"):
            assert term not in STOPWORDS


class TestSpelledTopN:
    def test_top_ten(self):
        assert parse_query("top ten customers").top_n == 10

    def test_top_five(self):
        assert parse_query("Top five trading volume").top_n == 5

    def test_numeric_still_works(self):
        assert parse_query("top 7 customers").top_n == 7


class TestIntroQueries:
    """The two queries from the paper's Section 1.2."""

    def test_wealthy_customers_in_zurich(self, warehouse):
        soda = Soda(warehouse, SodaConfig())
        result = soda.search(
            "Show me all my wealthy customers who live in Zurich"
        )
        assert result.best is not None
        sql = result.best.sql
        assert "individuals.salary >= 1000000" in sql
        assert "addresses.city LIKE '%zurich%'" in sql

    def test_top_ten_customers_by_revenue(self, warehouse):
        # "revenue" reaches the trading-volume business term via DBpedia
        soda = Soda(warehouse, SodaConfig())
        result = soda.search(
            "Who are my top ten customers in terms of revenue"
        )
        assert result.best is not None
        sql = result.best.sql
        assert "sum(fi_transactions.amount)" in sql
        assert "LIMIT 10" in sql


class TestValidAt:
    def test_parse_valid_at(self):
        query = parse_query("Sara given name valid at date(2003-01-01)")
        assert query.valid_at == datetime.date(2003, 1, 1)
        assert "valid at 2003-01-01" in query.describe()

    def test_valid_at_not_a_keyword(self):
        query = parse_query("names valid at date(2003-01-01)")
        assert query.keywords == (("names",),)

    def test_valid_at_filters_historized_tables(self, warehouse):
        soda = Soda(warehouse, SodaConfig())
        result = soda.search(
            "Sara given name valid at date(2003-01-01)", execute=False
        )
        hist_statements = [
            s for s in result.statements
            if "individual_name_hist" in s.statement.tables
        ]
        assert hist_statements
        sql = hist_statements[0].sql
        assert "individual_name_hist.valid_from_dt <= '2003-01-01'" in sql
        assert "individual_name_hist.valid_to_dt IS NULL" in sql
        assert "individual_name_hist.valid_to_dt >= '2003-01-01'" in sql

    def test_valid_at_ignored_for_snapshot_tables(self, warehouse):
        soda = Soda(warehouse, SodaConfig())
        result = soda.search("Zurich valid at date(2003-01-01)", execute=False)
        assert result.best is not None
        assert "valid_from_dt" not in result.best.sql

    def test_valid_at_returns_historical_names(self, warehouse):
        # with the historization join annotated, a valid-at query finds
        # the Saras of 2003 (four historical + the current one)
        import copy

        wh = copy.deepcopy(warehouse)
        wh.annotate_join("j_indiv_name_hist")
        soda = Soda(wh, SodaConfig())
        result = soda.search("Sara given name valid at date(2003-01-01)")
        counts = []
        for statement in result.statements:
            if (
                statement.snippet is not None
                and "individual_name_hist" in statement.statement.tables
                and "individuals" in statement.statement.tables
            ):
                counts.append(len(statement.snippet.rows))
        assert counts and max(counts) == 5
