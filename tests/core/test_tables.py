"""Tests for Step 3 — tables, joins, bridges, inheritance (Figs. 6, 9, 10)."""

import pytest

from repro.core.input_patterns import parse_query
from repro.core.lookup import Lookup
from repro.core.patterns import build_default_library
from repro.core.ranking import rank
from repro.core.tables import TablesStep
from repro.warehouse.graphbuilder import build_classification_index


@pytest.fixture(scope="module")
def steps(warehouse):
    classification = build_classification_index(warehouse.graph)
    lookup = Lookup(classification, warehouse.inverted)
    tables = TablesStep(warehouse.graph, build_default_library())
    return lookup, tables


def run_best(steps, text):
    lookup, tables = steps
    result = lookup.run(parse_query(text))
    best = rank(result, top_n=1)[0]
    return tables.run(best.interpretation)


class TestFig6TablesStep:
    def test_seven_tables_for_fig5_query(self, steps):
        # Fig. 6: parties, individuals, organizations, addresses,
        # financial_instruments, fi_contains_sec, securities
        result = run_best(steps, "customers Zurich financial instruments")
        assert set(result.tables) == {
            "parties", "individuals", "organizations", "addresses",
            "financial_instruments", "fi_contains_sec", "securities",
        }

    def test_customers_expands_inheritance_tree(self, steps):
        result = run_best(steps, "customers")
        assert {"parties", "individuals", "organizations"} <= set(result.tables)

    def test_zurich_maps_to_addresses(self, steps):
        result = run_best(steps, "Zurich")
        assert result.tables == ["addresses"]

    def test_column_hit_recorded(self, steps):
        lookup, tables = steps
        result = lookup.run(parse_query("family name"))
        best = rank(result, top_n=1)[0]
        expansion = tables.run(best.interpretation).expansions[0]
        assert ("individuals", "family_nm") in expansion.columns


class TestInheritanceClosure:
    def test_base_data_child_pulls_parent(self, steps):
        # 'Sara' in individuals.given_nm must pull in parties (the paper:
        # "we collect the table name of the inheritance parent")
        lookup, tables = steps
        result = lookup.run(parse_query("Sara"))
        for ranked in rank(result, top_n=10):
            tables_result = tables.run(ranked.interpretation)
            if "individuals" in tables_result.tables:
                assert "parties" in tables_result.tables
                assert tables_result.inheritance_parents.get("individuals") == (
                    "parties"
                )

    def test_trade_orders_pull_orders_parent(self, steps):
        result = run_best(steps, "trade order")
        assert {"trade_orders", "orders_td"} <= set(result.tables)


class TestJoinSelection:
    def test_inheritance_join_selected(self, steps):
        result = run_best(steps, "private customers family name")
        conditions = {j.condition_sql() for j in result.joins}
        assert "individuals.id = parties.id" in conditions

    def test_direct_path_join_for_zurich(self, steps):
        # Q9.0 failure mode: the *shorter* stale domicile edge is chosen
        result = run_best(steps, "private customers Switzerland")
        conditions = {j.condition_sql() for j in result.joins}
        assert "individuals.domicile_adr_id = addresses.id" in conditions
        assert "party_address" not in result.tables

    def test_bridge_table_on_path(self, steps):
        # fi_contains_sec joins financial_instruments with securities
        result = run_best(steps, "customers Zurich financial instruments")
        conditions = {j.condition_sql() for j in result.joins}
        assert "fi_contains_sec.fi_id = financial_instruments.id" in conditions
        assert "fi_contains_sec.sec_id = securities.id" in conditions

    def test_connected_result_reports_single_component(self, steps):
        result = run_best(steps, "private customers family name")
        assert result.is_connected

    def test_unannotated_join_leaves_component_disconnected(self, steps):
        # individual_name_hist has no annotated join -> stays an island
        lookup, tables = steps
        result = lookup.run(parse_query("Sara given name"))
        disconnected = []
        for ranked in rank(result, top_n=12):
            tables_result = tables.run(ranked.interpretation)
            if (
                "individual_name_hist" in tables_result.tables
                and len(tables_result.tables) > 1
            ):
                disconnected.append(not tables_result.is_connected)
        assert disconnected and all(disconnected)


class TestFig10SiblingBridge:
    def test_sibling_pruning_keeps_first_child_parent_join(self, steps):
        # customers names: individuals keeps parties.id join, organizations
        # connects through the associate_employment bridge instead
        result = run_best(steps, "customers names")
        conditions = {j.condition_sql() for j in result.joins}
        assert "individuals.id = parties.id" in conditions
        assert "organizations.id = parties.id" not in conditions
        assert "associate_employment" in result.tables

    def test_business_filter_collected(self, steps):
        result = run_best(steps, "wealthy customers")
        filters = [
            business
            for expansion in result.expansions
            for business in expansion.business_filters
        ]
        assert filters
        assert filters[0].column == "salary"
        assert filters[0].op == ">="

    def test_business_aggregation_collected(self, steps):
        result = run_best(steps, "trading volume")
        aggs = [
            agg
            for expansion in result.expansions
            for agg in expansion.business_aggregations
        ]
        assert aggs
        assert aggs[0].func == "sum"
        assert (aggs[0].table, aggs[0].column) == ("fi_transactions", "amount")
