"""Tests for relevance feedback (paper Section 6.3)."""

import pytest

from repro.core.feedback import FeedbackStore
from repro.core.soda import Soda, SodaConfig


class TestFeedbackStore:
    def test_empty_store_is_neutral(self):
        store = FeedbackStore()
        assert store.bonus("SELECT * FROM parties") == 0.0
        assert len(store) == 0

    def test_like_raises_similar_statements(self):
        store = FeedbackStore()
        store.like("SELECT * FROM agreements_td")
        assert store.bonus("SELECT * FROM agreements_td") > 0
        assert store.bonus("SELECT * FROM agreements_td, parties") > 0

    def test_dislike_lowers_similar_statements(self):
        store = FeedbackStore()
        store.dislike("SELECT * FROM organizations")
        assert store.bonus("SELECT * FROM organizations, parties") < 0

    def test_unrelated_statement_unaffected(self):
        store = FeedbackStore()
        store.like("SELECT * FROM agreements_td")
        assert store.bonus("SELECT * FROM currencies") == 0.0

    def test_exact_match_strongest(self):
        store = FeedbackStore()
        store.like("SELECT * FROM agreements_td")
        exact = store.bonus("SELECT * FROM agreements_td")
        partial = store.bonus("SELECT * FROM agreements_td, parties, addresses")
        assert exact > partial > 0

    def test_feedback_accumulates(self):
        store = FeedbackStore()
        store.like("SELECT * FROM parties")
        store.like("SELECT * FROM parties")
        single = FeedbackStore()
        single.like("SELECT * FROM parties")
        assert store.bonus("SELECT * FROM parties") > (
            single.bonus("SELECT * FROM parties")
        )

    def test_clear(self):
        store = FeedbackStore()
        store.like("SELECT * FROM parties")
        store.clear()
        assert store.bonus("SELECT * FROM parties") == 0.0

    def test_join_tables_count_for_similarity(self):
        store = FeedbackStore()
        store.like("SELECT * FROM a JOIN b ON a.id = b.id")
        assert store.bonus("SELECT * FROM b") > 0


class TestSodaIntegration:
    def test_dislike_demotes_top_statement(self, warehouse):
        soda = Soda(warehouse, SodaConfig())
        before = soda.search("Credit Suisse", execute=False)
        assert len(before.statements) >= 2
        top_sql = before.best.sql

        soda.feedback.dislike(top_sql)
        after = soda.search("Credit Suisse", execute=False)
        assert after.best.sql != top_sql
        assert top_sql in after.sql_texts()  # still offered, ranked lower

    def test_like_promotes_alternative(self, warehouse):
        soda = Soda(warehouse, SodaConfig())
        before = soda.search("Credit Suisse", execute=False)
        alternative = before.statements[-1].sql
        soda.feedback.like(alternative)
        soda.feedback.like(alternative)
        after = soda.search("Credit Suisse", execute=False)
        assert after.sql_texts().index(alternative) <= (
            before.sql_texts().index(alternative)
        )

    def test_feedback_does_not_change_statement_set(self, warehouse):
        soda = Soda(warehouse, SodaConfig())
        before = set(soda.search("Sara", execute=False).sql_texts())
        soda.feedback.dislike(sorted(before)[0])
        after = set(soda.search("Sara", execute=False).sql_texts())
        assert before == after
