"""The staged search pipeline: steps, hooks, memoization, batching."""

import pytest

from repro.core.pipeline import SearchContext, SearchPipeline
from repro.core.soda import Soda, SodaConfig


def result_fingerprint(result):
    return [
        (s.sql, round(s.score, 12), s.estimated_rows, s.execution_error)
        for s in result.statements
    ]


class TestStructure:
    def test_step_names_in_paper_order(self, soda):
        assert soda.pipeline.step_names() == [
            "lookup", "rank", "tables", "filters", "sqlgen",
            "finalize", "execute",
        ]

    def test_context_records_all_timings(self, soda):
        result = soda.search("customers Zurich")
        timings = result.timings
        for step in ["lookup", "rank", "tables", "filters", "sql"]:
            assert getattr(timings, step) >= 0.0
        assert timings.soda_total > 0.0

    def test_pipeline_reusable_across_searches(self, soda):
        first = soda.search("Zurich", execute=False)
        second = soda.search("Zurich", execute=False)
        assert result_fingerprint(first) == result_fingerprint(second)


class TestHooks:
    def test_hook_observes_every_step(self, warehouse):
        soda = Soda(warehouse, SodaConfig())
        seen = []
        soda.pipeline.add_hook(lambda ctx, step: seen.append(step.name))
        soda.search("Zurich", execute=False)
        assert seen == [
            "lookup", "rank", "tables", "filters", "sqlgen",
            "finalize", "execute",
        ][:len(seen)]
        assert "lookup" in seen and "sqlgen" in seen

    def test_hook_can_stop_early(self, warehouse):
        soda = Soda(warehouse, SodaConfig())

        def stop_after_rank(context, step):
            return step.name == "rank"

        soda.pipeline.add_hook(stop_after_rank)
        result = soda.search("Zurich")
        assert result.statements == []
        assert result.timings.tables == 0.0
        soda.pipeline.remove_hook(stop_after_rank)
        assert soda.search("Zurich").statements

    def test_execute_false_skips_execute_step(self, soda):
        result = soda.search("Zurich", execute=False)
        assert result.timings.execute == 0.0
        assert all(s.snippet is None for s in result.statements)


class TestEarlyTermination:
    def test_max_statements_caps_generation(self, warehouse):
        unlimited = Soda(warehouse, SodaConfig()).search("Sara", execute=False)
        assert len(unlimited.statements) > 1
        capped_soda = Soda(warehouse, SodaConfig(max_statements=1))
        capped = capped_soda.search("Sara", execute=False)
        assert len(capped.statements) == 1
        # the survivor is the top-ranked statement's SQL
        assert capped.statements[0].sql in unlimited.sql_texts()

    def test_default_is_unlimited(self, warehouse):
        assert SodaConfig().max_statements is None


class TestMemoization:
    @pytest.fixture
    def scratch_soda(self):
        from repro.warehouse.minibank import build_minibank

        return Soda(build_minibank(seed=42, scale=0.1), SodaConfig())

    def test_lookup_term_cache_hits_are_equal(self, soda):
        first = soda._lookup.alternatives("customers")
        second = soda._lookup.alternatives("customers")
        assert first == second

    def test_lookup_cache_invalidated_by_index_write(self, scratch_soda):
        soda = scratch_soda
        before = soda._lookup.alternatives("zurich")
        soda.warehouse.inverted.add("currencies", "currency_nm", "Zurich Franc")
        after = soda._lookup.alternatives("zurich")
        assert len(after) == len(before) + 1

    def test_tables_join_plans_accumulate(self, warehouse):
        soda = Soda(warehouse, SodaConfig())
        soda.search("customers Zurich", execute=False)
        stats = soda._tables.cache_stats()
        assert stats["expansions"] > 0
        assert stats["join_plans"] > 0

    def test_graph_mutation_drops_tables_memos(self, scratch_soda):
        soda = scratch_soda
        soda.search("customers Zurich", execute=False)
        assert soda._tables.cache_stats()["join_plans"] > 0
        from repro.graph.node import Text

        soda.warehouse.graph.add(
            "soda://test/memo", "soda://test/pred", Text("x")
        )
        soda.search("customers Zurich", execute=False)
        # memos were rebuilt under the new graph version
        assert soda._tables._graph_version == soda.warehouse.graph.version


class TestSearchMany:
    def test_batch_matches_sequential(self, warehouse):
        texts = ["Zurich", "Sara Guttinger", "customers Zurich", "Zurich"]
        sequential = Soda(warehouse, SodaConfig())
        expected = [
            result_fingerprint(sequential.search(t, execute=False))
            for t in texts
        ]
        batched = Soda(warehouse, SodaConfig())
        results = batched.search_many(texts, execute=False)
        assert [result_fingerprint(r) for r in results] == expected

    def test_duplicates_share_one_result_object(self, warehouse):
        soda = Soda(warehouse, SodaConfig())
        results = soda.search_many(["Zurich", "Zurich"], execute=False)
        assert results[0] is results[1]

    def test_batch_dedup_can_be_disabled(self, warehouse):
        soda = Soda(warehouse, SodaConfig(batch_dedup=False))
        results = soda.search_many(["Zurich", "Zurich"], execute=False)
        assert results[0] is not results[1]
        assert result_fingerprint(results[0]) == result_fingerprint(results[1])

    def test_empty_batch(self, soda):
        assert soda.search_many([]) == []


class TestFeedbackWiring:
    def test_reassigned_feedback_store_is_used(self, warehouse):
        """The pipeline reads soda.feedback live, not a captured copy."""
        from repro.core.feedback import FeedbackStore

        soda = Soda(warehouse, SodaConfig())
        baseline = soda.search("Sara", execute=False)
        target = baseline.statements[-1].sql
        soda.feedback = FeedbackStore()
        soda.feedback.like(target)
        boosted = soda.search("Sara", execute=False)
        base_score = next(
            s.score for s in baseline.statements if s.sql == target
        )
        new_score = next(
            s.score for s in boosted.statements if s.sql == target
        )
        assert new_score > base_score
