"""Deterministic join tie-breaking in the tables step.

`deterministic_shortest_path` must pick the lexicographically smallest
table-name sequence among equal-cost paths, no matter how (or in which
order) the join graph was assembled — so SODA's selected joins are
stable without pinning ``PYTHONHASHSEED``.
"""

import networkx as nx

from repro.core.tables import deterministic_shortest_path


def _weight(weights):
    def fn(u, v, data):
        return weights.get((min(u, v), max(u, v)), 1.0)

    return fn


class TestDeterministicShortestPath:
    def test_tie_broken_by_sorted_node_name(self):
        graph = nx.Graph()
        graph.add_edges_from([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        path = deterministic_shortest_path(graph, "a", "d", _weight({}))
        assert path == ["a", "b", "d"]

    def test_insertion_order_does_not_matter(self):
        edges = [("a", "c"), ("c", "d"), ("a", "b"), ("b", "d")]
        forward = nx.Graph()
        forward.add_edges_from(edges)
        backward = nx.Graph()
        backward.add_edges_from(reversed(edges))
        weight = _weight({})
        assert deterministic_shortest_path(
            forward, "a", "d", weight
        ) == deterministic_shortest_path(backward, "a", "d", weight)

    def test_cheaper_path_beats_lexicographic_order(self):
        graph = nx.Graph()
        graph.add_edges_from([("a", "b"), ("b", "d"), ("a", "z"), ("z", "d")])
        weights = {("a", "z"): 0.1, ("d", "z"): 0.1}
        path = deterministic_shortest_path(graph, "a", "d", _weight(weights))
        assert path == ["a", "z", "d"]

    def test_longer_but_cheaper_route(self):
        graph = nx.Graph()
        graph.add_edges_from(
            [("a", "d"), ("a", "b"), ("b", "c"), ("c", "d")]
        )
        weights = {
            ("a", "d"): 1.0,
            ("a", "b"): 0.2,
            ("b", "c"): 0.2,
            ("c", "d"): 0.2,
        }
        path = deterministic_shortest_path(graph, "a", "d", _weight(weights))
        assert path == ["a", "b", "c", "d"]

    def test_unreachable_returns_none(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        graph.add_node("z")
        assert deterministic_shortest_path(graph, "a", "z", _weight({})) is None

    def test_source_equals_target(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        assert deterministic_shortest_path(
            graph, "a", "a", _weight({})
        ) == ["a"]


class TestTablesStepStability:
    def test_selected_joins_stable_across_engines(self, warehouse):
        """Two independent SODA instances select identical join plans."""
        from repro.core.soda import Soda, SodaConfig

        first = Soda(warehouse, SodaConfig())
        second = Soda(warehouse, SodaConfig())
        for query in ("Sara Guttinger", "customers Zurich", "Credit Suisse"):
            a = first.search(query, execute=False)
            b = second.search(query, execute=False)
            assert [s.sql for s in a.statements] == [
                s.sql for s in b.statements
            ]
