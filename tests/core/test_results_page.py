"""Tests for the Google-style result page rendering."""

import pytest

from repro.core.results import render_page


@pytest.fixture(scope="module")
def search_result(soda):
    return soda.search("Credit Suisse")


class TestRenderPage:
    def test_entries_numbered_and_scored(self, search_result):
        page = render_page(search_result, page=1, page_size=3)
        assert page.entries[0].position == 1
        assert page.entries[0].score >= page.entries[-1].score

    def test_titles_name_entry_tables(self, search_result):
        page = render_page(search_result)
        titles = [entry.title for entry in page.entries]
        assert any("organizations" in title for title in titles)
        assert any("agreements_td" in title for title in titles)

    def test_snippets_included(self, search_result):
        page = render_page(search_result)
        with_snippets = [e for e in page.entries if e.snippet_lines]
        assert with_snippets
        header = with_snippets[0].snippet_lines[0]
        assert "," in header or header  # column header line

    def test_pagination(self, search_result):
        total = len(search_result.statements)
        page_size = max(1, total - 1)
        first = render_page(search_result, page=1, page_size=page_size)
        second = render_page(search_result, page=2, page_size=page_size)
        assert first.page_count == second.page_count
        positions = [e.position for e in first.entries] + [
            e.position for e in second.entries
        ]
        assert positions == sorted(set(positions))

    def test_page_clamped(self, search_result):
        page = render_page(search_result, page=999)
        assert page.page == page.page_count

    def test_render_text(self, search_result):
        rendered = render_page(search_result).render()
        assert "results for: Credit Suisse" in rendered
        assert "SELECT" in rendered

    def test_disconnected_note(self, soda):
        result = soda.search("Sara given name", execute=False)
        page = render_page(result, page_size=len(result.statements))
        notes = [e.note for e in page.entries if e.note]
        assert any("joined" in note for note in notes)

    def test_empty_result_page(self, soda):
        result = soda.search("zzzzqq", execute=False)
        page = render_page(result)
        assert page.entries == ()
        assert "no results" in page.render()
