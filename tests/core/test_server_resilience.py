"""Serving resilience: deadlines, shedding, breaker, limits, drain.

Every test runs a real server on an ephemeral port, with a
:class:`~repro.resilience.faults.ServingFaultInjector` standing in for
a slow or failing engine — each degraded behaviour is *provoked*, not
awaited.  The raw-socket helpers exist because the interesting clients
(slowloris, oversize, malformed) are exactly the ones ``urllib``
refuses to be.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.soda import Soda, SodaConfig
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import ServingFaultInjector
from repro.resilience.maintenance import MaintenanceRunner
from repro.server import SodaServer
from repro.sqlengine.config import DEFAULT_SEGMENT_ROWS, EngineConfig
from repro.warehouse.minibank import build_minibank


@pytest.fixture(scope="module")
def soda():
    warehouse = build_minibank(
        seed=42,
        scale=0.25,
        engine_config=EngineConfig(segment_rows=DEFAULT_SEGMENT_ROWS),
    )
    return Soda(warehouse, SodaConfig())


@pytest.fixture
def make_server(soda):
    """Start a server with the given resilience knobs; always stopped."""
    servers = []

    def factory(**kwargs):
        server = SodaServer(soda, port=0, **kwargs)
        servers.append(server)
        return server.start_background()

    yield factory
    for server in servers:
        server.stop()


def _get(server, path):
    url = f"http://127.0.0.1:{server.port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def _raw(server, data: bytes, hold_open: bool = False) -> bytes:
    """Send raw bytes; collect the response until the server closes."""
    with socket.create_connection(
        ("127.0.0.1", server.port), timeout=30
    ) as sock:
        sock.sendall(data)
        if hold_open:
            sock.settimeout(30)
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
    return b"".join(chunks)


def _parse(blob: bytes):
    head, __, body = blob.partition(b"\r\n\r\n")
    lines = head.split(b"\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, __, value = line.partition(b": ")
        headers[name.decode().lower()] = value.decode()
    return status, headers, json.loads(body) if body else None


# ----------------------------------------------------------------------
# satellite: per-connection limits (slowloris, oversize, malformed)
# ----------------------------------------------------------------------
class TestConnectionLimits:
    def test_stalled_client_gets_408_not_a_held_slot(self, make_server):
        server = make_server(read_timeout_s=0.2)
        started = time.perf_counter()
        # a slowloris client: half a request line, then silence
        blob = _raw(server, b"GET /search?q=Zu", hold_open=True)
        status, __, payload = _parse(blob)
        assert status == 408
        assert payload["kind"] == "read_timeout"
        assert "stalled client" in payload["error"]
        # the server answered at its read timeout, not ours
        assert time.perf_counter() - started < 10
        # and the connection slot is free: a normal request succeeds
        status, __, payload = _get(server, "/healthz")
        assert status == 200

    def test_oversize_request_line_is_413(self, make_server):
        server = make_server()
        target = "/search?q=" + "x" * 10_000
        blob = _raw(server, f"GET {target} HTTP/1.1\r\n\r\n".encode())
        status, __, payload = _parse(blob)
        assert status == 413
        assert payload["kind"] == "oversize"

    def test_oversize_headers_are_413(self, make_server):
        server = make_server()
        headers = "".join(f"X-Pad-{i}: {'y' * 500}\r\n" for i in range(40))
        blob = _raw(
            server, f"GET /healthz HTTP/1.1\r\n{headers}\r\n".encode()
        )
        status, __, payload = _parse(blob)
        assert status == 413
        assert payload["kind"] == "oversize"

    def test_oversize_body_is_rejected_before_reading_it(self, make_server):
        server = make_server()
        request = (
            b"POST /sql HTTP/1.1\r\n"
            b"Content-Length: 10485760\r\n\r\n"  # 10 MiB never sent
        )
        blob = _raw(server, request, hold_open=True)
        status, __, payload = _parse(blob)
        assert status == 413
        assert payload["kind"] == "oversize"

    def test_malformed_request_line_is_400(self, make_server):
        server = make_server()
        blob = _raw(server, b"NONSENSE\r\n\r\n")
        status, __, payload = _parse(blob)
        assert status == 400
        assert payload["kind"] == "malformed_request"

    def test_bad_content_length_is_400(self, make_server):
        server = make_server()
        blob = _raw(
            server,
            b"POST /sql HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        )
        status, __, payload = _parse(blob)
        assert status == 400
        assert payload["kind"] == "malformed_request"


# ----------------------------------------------------------------------
# tentpole: request deadlines with cooperative cancellation
# ----------------------------------------------------------------------
class TestRequestDeadlines:
    def test_deadline_503_and_the_engine_stays_consistent(
        self, soda, make_server
    ):
        faults = ServingFaultInjector(delay_s=0.05)
        server = make_server(faults=faults)
        fingerprint = soda.warehouse.database.catalog.fingerprint()
        status, headers, payload = _get(
            server, "/search?q=deadline+test+alpha&timeout_ms=20"
        )
        assert status == 503
        assert payload["kind"] == "deadline_exceeded"
        assert payload["timeout_ms"] == 20
        assert payload["elapsed_ms"] >= 20
        assert payload["where"]  # names the cooperative checkpoint
        assert "deadline" in payload["error"]
        assert headers.get("Retry-After")
        # cooperative unwind: no pins leaked, no state mutated
        assert soda.warehouse.database.catalog.fingerprint() == fingerprint
        # and the very next request (within budget) succeeds
        faults.set_delay(0.0)
        status, __, payload = _get(
            server, "/search?q=deadline+test+alpha&timeout_ms=30000"
        )
        assert status == 200

    def test_engine_config_default_applies_without_client_opt_in(self, soda):
        faults = ServingFaultInjector(delay_s=0.05)
        server = SodaServer(
            soda, port=0, request_timeout_ms=20, faults=faults
        )
        server.start_background()
        try:
            status, __, payload = _get(server, "/search?q=deadline+beta")
            assert status == 503
            assert payload["kind"] == "deadline_exceeded"
        finally:
            server.stop()

    def test_client_timeout_overrides_the_default(self, make_server):
        # server default would cancel everything; the client opts out
        server = make_server(request_timeout_ms=1)
        status, __, payload = _get(
            server, "/search?q=deadline+gamma&timeout_ms=30000"
        )
        assert status == 200

    @pytest.mark.parametrize("bad", ["abc", "0", "-5", "nan", "inf"])
    def test_bad_timeout_ms_is_400(self, make_server, bad):
        server = make_server()
        status, __, payload = _get(server, f"/healthz?x=1")
        assert status == 200  # warm up
        status, __, payload = _get(
            server, f"/search?q=Zurich&timeout_ms={bad}"
        )
        assert status == 400
        assert "timeout_ms" in payload["error"]

    def test_fractional_timeout_ms_is_accepted(self, make_server):
        # Deadline and request_timeout_ms take floats; the wire
        # parameter must too
        server = make_server()
        status, __, __ = _get(
            server, "/search?q=Zurich&timeout_ms=2500.5"
        )
        assert status == 200


# ----------------------------------------------------------------------
# tentpole: admission control + load shedding
# ----------------------------------------------------------------------
@pytest.mark.stress
class TestLoadShedding:
    def test_saturation_sheds_429_with_retry_after(self, make_server):
        faults = ServingFaultInjector(delay_s=0.3)
        server = make_server(
            workers=2,
            max_inflight=1,
            queue_depth=0,
            queue_timeout_ms=200.0,
            faults=faults,
        )
        results = []

        def client(i):
            results.append(
                _get(server, f"/search?q=shed+test+{i}&timeout_ms=30000")
            )

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        statuses = sorted(status for status, __, __ in results)
        assert 200 in statuses  # someone was served
        assert 429 in statuses  # someone was shed
        shed = next(r for r in results if r[0] == 429)
        __, headers, payload = shed
        assert payload["kind"] == "load_shed"
        assert payload["reason"] in ("queue_full", "queue_timeout")
        assert headers.get("Retry-After")

    def test_healthz_reports_admission_occupancy(self, make_server):
        server = make_server(max_inflight=3, queue_depth=7)
        status, __, payload = _get(server, "/healthz")
        assert status == 200
        admission = payload["admission"]
        assert admission["max_concurrent"] == 3
        assert admission["queue_depth"] == 7


# ----------------------------------------------------------------------
# tentpole: circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trip_fast_fail_and_recover(self, make_server):
        faults = ServingFaultInjector()
        server = make_server(
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=0.2),
            faults=faults,
        )
        # two injected engine failures -> 500s, breaker trips
        faults.fail_requests(2)
        for i in range(2):
            status, __, payload = _get(server, f"/search?q=breaker+{i}")
            assert status == 500
            assert payload["kind"] == "engine_failure"
            assert "injected" in payload["error"]
        # open: fast-fail without touching the engine
        calls_before = faults.calls
        status, headers, payload = _get(server, "/search?q=breaker+open")
        assert status == 503
        assert payload["kind"] == "circuit_open"
        assert payload["breaker"]["state"] == "open"
        assert headers.get("Retry-After")
        assert faults.calls == calls_before  # the engine was not called
        status, __, payload = _get(server, "/healthz")
        assert payload["status"] == "open"
        # cooldown -> half-open probe -> success closes the breaker
        time.sleep(0.25)
        status, __, payload = _get(server, "/healthz")
        assert payload["status"] == "degraded"
        status, __, __ = _get(server, "/search?q=breaker+probe")
        assert status == 200
        status, __, payload = _get(server, "/healthz")
        assert payload["status"] == "ok"
        assert payload["breaker"]["state"] == "closed"

    def test_deadline_exceeded_probe_does_not_wedge_the_breaker(
        self, make_server
    ):
        # A slow engine is exactly what trips the breaker, so the
        # half-open probe is likely to exceed its deadline too.  The
        # probe slot must be released on that path or every later
        # allow() returns False and the server 503s until restart.
        faults = ServingFaultInjector()
        server = make_server(
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=0.2),
            faults=faults,
        )
        faults.fail_requests(2)
        for i in range(2):
            status, __, __ = _get(server, f"/search?q=wedge+{i}")
            assert status == 500
        time.sleep(0.25)  # cooldown -> half-open
        faults.set_delay(0.05)
        status, __, payload = _get(
            server, "/search?q=wedge+probe&timeout_ms=20"
        )
        assert status == 503
        assert payload["kind"] == "deadline_exceeded"
        # the slot is free again: a healthy probe closes the breaker
        faults.set_delay(0.0)
        status, __, __ = _get(server, "/search?q=wedge+recovered")
        assert status == 200
        status, __, payload = _get(server, "/healthz")
        assert payload["status"] == "ok"

    def test_rejected_probe_releases_the_slot(self, make_server):
        # the probe dies before the engine runs (bad timeout_ms) —
        # again no verdict, again the slot must come back
        faults = ServingFaultInjector()
        server = make_server(
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=0.2),
            faults=faults,
        )
        faults.fail_requests(2)
        for i in range(2):
            status, __, __ = _get(server, f"/search?q=reject+{i}")
            assert status == 500
        time.sleep(0.25)  # cooldown -> half-open
        status, __, __ = _get(
            server, "/search?q=reject+probe&timeout_ms=abc"
        )
        assert status == 400
        status, __, __ = _get(server, "/search?q=reject+recovered")
        assert status == 200
        status, __, payload = _get(server, "/healthz")
        assert payload["status"] == "ok"

    def test_client_errors_do_not_trip_the_breaker(self, make_server):
        server = make_server(
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=60)
        )
        for __ in range(5):
            status, __unused, __p = _get(server, "/search")  # missing q
            assert status == 400
        status, __, payload = _get(server, "/healthz")
        assert payload["status"] == "ok"  # 400s prove the engine answers


# ----------------------------------------------------------------------
# satellite: idempotent stop(); tentpole: graceful drain
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_stop_on_a_never_started_server_is_a_noop(self, soda):
        server = SodaServer(soda, port=0)
        assert server.stop() == {"stopped": True, "stuck_threads": []}

    def test_stop_is_idempotent(self, soda):
        server = SodaServer(soda, port=0)
        server.start_background()
        first = server.stop()
        second = server.stop()
        assert first["stopped"] and second["stopped"]

    def test_start_background_is_idempotent(self, soda):
        server = SodaServer(soda, port=0)
        try:
            assert server.start_background() is server
            port = server.port
            assert server.start_background() is server
            assert server.port == port  # same listener, not a second bind
        finally:
            server.stop()

    def test_concurrent_stops_are_safe(self, soda):
        server = SodaServer(soda, port=0)
        server.start_background()
        reports = []
        threads = [
            threading.Thread(target=lambda: reports.append(server.stop()))
            for __ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(report["stopped"] for report in reports)

    def test_drain_finishes_inflight_requests(self, soda):
        faults = ServingFaultInjector(delay_s=0.3)
        server = SodaServer(
            soda, port=0, faults=faults, drain_timeout_s=10.0
        )
        server.start_background()
        outcome = {}

        def client():
            outcome["result"] = _get(
                server, "/search?q=drain+test&timeout_ms=30000"
            )

        thread = threading.Thread(target=client)
        thread.start()
        time.sleep(0.1)  # let the request reach the engine pool
        report = server.stop()
        thread.join(timeout=30)
        assert report["stopped"]
        status, __, __ = outcome["result"]
        assert status == 200  # the in-flight request completed

    def test_server_restarts_after_stop(self, soda):
        server = SodaServer(soda, port=0)
        server.start_background()
        status, __, __ = _get(server, "/search?q=Zurich")
        assert status == 200
        server.stop()
        server.start_background()
        try:
            status, __, __ = _get(server, "/healthz")
            assert status == 200
            # engine routes run on the worker pool, which the previous
            # stop shut down — the restart must serve them too
            status, __, payload = _get(server, "/search?q=Zurich")
            assert status == 200
            status, __, payload = _get(server, "/healthz")
            assert payload["status"] == "ok"  # no breaker fallout
        finally:
            server.stop()


# ----------------------------------------------------------------------
# tentpole: background maintenance rides the server lifecycle
# ----------------------------------------------------------------------
class TestMaintenanceIntegration:
    def test_maintenance_starts_and_stops_with_the_server(self, soda):
        ran = threading.Event()
        runner = MaintenanceRunner()
        runner.add_task("tick", ran.set, interval_s=0.01)
        server = SodaServer(soda, port=0, maintenance=runner)
        server.start_background()
        try:
            assert ran.wait(timeout=10)
            assert runner.running
            status, __, payload = _get(server, "/healthz")
            assert "tick" in payload["maintenance"]
        finally:
            server.stop()
        assert not runner.running
