"""Tests for the input pattern parser (paper Section 4.2.2 / 4.3)."""

import datetime

import pytest

from repro.core.input_patterns import parse_query
from repro.errors import QueryParseError


class TestKeywords:
    def test_plain_keywords(self):
        query = parse_query("private customers Switzerland")
        assert query.keywords == (("private", "customers", "switzerland"),)

    def test_and_splits_word_runs(self):
        query = parse_query("salary and birthday")
        assert query.keywords == (("salary",), ("birthday",))
        assert query.connectors == ("and",)

    def test_or_recorded(self):
        query = parse_query("customers or clients")
        assert query.connectors == ("or",)

    def test_case_normalised(self):
        query = parse_query("Credit SUISSE")
        assert query.keywords == (("credit", "suisse"),)

    def test_empty_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("   ")


class TestComparisons:
    def test_paper_query2(self):
        # paper Section 4.4.1, Query 2
        query = parse_query("salary >= x and birthday = date(1981-04-23)")
        assert len(query.comparisons) == 2
        first, second = query.comparisons
        assert first.left_words == ("salary",)
        assert first.op == ">="
        assert first.value == "x"
        assert second.left_words == ("birthday",)
        assert second.value == datetime.date(1981, 4, 23)

    def test_numeric_value(self):
        query = parse_query("salary >= 100000")
        assert query.comparisons[0].value == 100000

    def test_float_value(self):
        query = parse_query("rate < 1.5")
        assert query.comparisons[0].value == 1.5

    def test_date_operator(self):
        query = parse_query("trade order period > date(2011-09-01)")
        comparison = query.comparisons[0]
        assert comparison.left_words == ("trade", "order", "period")
        assert comparison.value == datetime.date(2011, 9, 1)

    def test_like_operator(self):
        query = parse_query("family name like gutt")
        assert query.comparisons[0].op == "like"
        assert query.comparisons[0].value == "gutt"

    def test_missing_value_raises(self):
        with pytest.raises(QueryParseError):
            parse_query("salary >=")

    def test_quoted_value(self):
        query = parse_query('city = "New York"')
        assert query.comparisons[0].value == "New York"


class TestRanges:
    def test_between_dates(self):
        # paper Section 4.4.2, variant a)
        query = parse_query(
            "transaction date between date(2010-01-01) date(2010-12-31)"
        )
        range_ = query.ranges[0]
        assert range_.left_words == ("transaction", "date")
        assert range_.low == datetime.date(2010, 1, 1)
        assert range_.high == datetime.date(2010, 12, 31)

    def test_between_numbers(self):
        query = parse_query("salary between 50000 100000")
        assert query.ranges[0].low == 50000
        assert query.ranges[0].high == 100000


class TestAggregations:
    def test_sum_with_group_by(self):
        # paper Query 3
        query = parse_query("sum (amount) group by (transaction date)")
        assert query.aggregations[0].func == "sum"
        assert query.aggregations[0].argument == "amount"
        assert query.group_by == ("transaction date",)

    def test_count_entity_group_by(self):
        # paper Query 4
        query = parse_query("count (transactions) group by (company name)")
        assert query.aggregations[0].argument == "transactions"
        assert query.group_by == ("company name",)

    def test_count_empty_parens(self):
        # paper Q9.0: "select count() private customers Switzerland"
        query = parse_query("select count() private customers Switzerland")
        assert query.aggregations[0].func == "count"
        assert query.aggregations[0].argument is None
        assert query.keywords == (("private", "customers", "switzerland"),)

    def test_select_keyword_swallowed(self):
        query = parse_query("select count() parties")
        assert all("select" not in words for words in query.keywords)

    def test_group_by_multiple_attributes(self):
        query = parse_query("sum(amount) group by (currency, status)")
        assert query.group_by == ("currency", "status")

    def test_has_aggregation(self):
        assert parse_query("sum(amount)").has_aggregation
        assert not parse_query("customers").has_aggregation


class TestTopN:
    def test_top_n_parsed(self):
        # paper Section 4.4.2
        query = parse_query("Top 10 trading volume customer")
        assert query.top_n == 10
        assert ("trading", "volume", "customer") in query.keywords

    def test_top_with_explicit_aggregate(self):
        query = parse_query(
            "Top 10 sum(amount) customer transaction date "
            "between date(1980-01-01) date(1990-01-01)"
        )
        assert query.top_n == 10
        assert query.aggregations[0].func == "sum"
        assert query.ranges


class TestDescribe:
    def test_describe_mentions_everything(self):
        query = parse_query(
            "top 5 sum(amount) customers salary >= 100 group by (currency)"
        )
        description = query.describe()
        assert "top 5" in description
        assert "sum(amount)" in description
        assert "group by (currency)" in description
        assert ">=" in description
