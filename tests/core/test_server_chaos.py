"""Chaos under sustained mixed load: the server degrades, never dies.

A few seconds of hostile traffic — engine faults injected mid-stream,
saturating bursts, malformed and stalled clients interleaved with
honest searches — against one server.  The invariant is not that every
request succeeds (they must not: that's what shedding and the breaker
are for) but that **every request gets a structured answer** from the
known status set and the server is still healthy and stoppable at the
end.

Marked ``stress``: `make test-stress` runs these on their own; they
also run in the tier-1 suite (a couple of seconds, bounded by design).
"""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.soda import Soda, SodaConfig
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import ServingFaultInjector
from repro.server import SodaServer
from repro.sqlengine.config import DEFAULT_SEGMENT_ROWS, EngineConfig
from repro.warehouse.minibank import build_minibank

pytestmark = pytest.mark.stress

#: every answer the server may give under this storm — anything else
#: (or a hung connection) fails the test
EXPECTED_STATUSES = {200, 400, 404, 408, 413, 429, 500, 503}

CLIENTS = 6
ROUNDS = 10


@pytest.fixture(scope="module")
def chaos_soda():
    warehouse = build_minibank(
        seed=42,
        scale=0.25,
        engine_config=EngineConfig(segment_rows=DEFAULT_SEGMENT_ROWS),
    )
    return Soda(warehouse, SodaConfig())


def test_fault_storm_yields_structured_answers_only(chaos_soda):
    faults = ServingFaultInjector(delay_s=0.01)
    server = SodaServer(
        chaos_soda,
        port=0,
        workers=2,
        max_inflight=2,
        queue_depth=2,
        queue_timeout_ms=100.0,
        read_timeout_s=0.3,
        breaker=CircuitBreaker(failure_threshold=3, cooldown_s=0.1),
        faults=faults,
    )
    server.start_background()
    base = f"http://127.0.0.1:{server.port}"
    outcomes: list = []
    errors: list = []
    lock = threading.Lock()

    def http(path):
        try:
            with urllib.request.urlopen(base + path, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def client(worker: int) -> None:
        for i in range(ROUNDS):
            step = worker * ROUNDS + i
            try:
                if step % 7 == 3:
                    faults.fail_requests(2)  # trip the breaker mid-stream
                if step % 5 == 4:
                    # a malformed client on a raw socket
                    with socket.create_connection(
                        ("127.0.0.1", server.port), timeout=30
                    ) as sock:
                        sock.sendall(b"BOGUS\r\n\r\n")
                        sock.recv(4096)
                    continue
                if step % 6 == 5:
                    # a stalled (slowloris) client: half a request line
                    with socket.create_connection(
                        ("127.0.0.1", server.port), timeout=30
                    ) as sock:
                        sock.sendall(b"GET /sear")
                        sock.settimeout(30)
                        sock.recv(4096)  # the 408 arrives, or "" on close
                    continue
                if step % 3 == 0:
                    status, payload = http(
                        f"/search?q=chaos+{step % 4}&timeout_ms=5000"
                    )
                elif step % 3 == 1:
                    status, payload = http("/search?q=Zurich&limit=2")
                else:
                    status, payload = http("/healthz")
                with lock:
                    outcomes.append((status, payload.get("kind")))
            except Exception as exc:  # noqa: BLE001 - the test's whole point
                with lock:
                    errors.append(f"{type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=client, args=(n,)) for n in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads), "clients hung"

    try:
        assert not errors, errors[:5]
        assert outcomes
        bad = [s for s, __ in outcomes if s not in EXPECTED_STATUSES]
        assert not bad, f"unexpected statuses: {sorted(set(bad))}"
        # after the storm the server still serves: let any breaker
        # cooldown lapse, then demand a healthy answer
        import time

        deadline = time.perf_counter() + 10
        while time.perf_counter() < deadline:
            # a search doubles as the half-open probe that closes a
            # tripped breaker once its cooldown has lapsed
            search_status, __p = http("/search?q=Zurich&limit=2")
            status, payload = http("/healthz")
            if (
                search_status == 200
                and status == 200
                and payload["status"] == "ok"
            ):
                break
            time.sleep(0.05)
        assert search_status == 200
        assert status == 200
        assert payload["status"] == "ok"
    finally:
        report = server.stop()
    assert report["stopped"], report
