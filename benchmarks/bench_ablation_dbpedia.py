"""Ablation — the DBpedia layer (the paper's future-work study).

"Since the use of DBpedia will naturally increase the number of possible
query results — the query complexity, we will study more advanced
ranking algorithms."  This bench measures exactly that effect: query
complexity and result counts with and without the DBpedia synonym layer.
"""

from repro.core.soda import Soda, SodaConfig

QUERIES = ("client", "company trade order", "share customers")


def test_dbpedia_ablation(warehouse, benchmark):
    with_dbpedia = Soda(warehouse, SodaConfig(use_dbpedia=True))
    without_dbpedia = Soda(warehouse, SodaConfig(use_dbpedia=False))

    def sweep(soda):
        return [soda.search(text, execute=False) for text in QUERIES]

    with_results = benchmark(sweep, with_dbpedia)
    without_results = sweep(without_dbpedia)

    print()
    print("DBpedia ablation (complexity / #results):")
    print(f"{'query':24s} {'with':>12s} {'without':>12s}")
    gain = 0
    for text, with_r, without_r in zip(QUERIES, with_results, without_results):
        print(
            f"{text:24s} "
            f"{with_r.complexity:>4d}/{len(with_r.statements):<4d}    "
            f"{without_r.complexity:>4d}/{len(without_r.statements):<4d}"
        )
        gain += with_r.complexity - without_r.complexity
    assert gain > 0  # DBpedia increases the interpretation space


def test_dbpedia_enables_synonym_queries(warehouse, benchmark):
    # "client" only exists as a DBpedia synonym of the customers term
    with_dbpedia = Soda(warehouse, SodaConfig(use_dbpedia=True))
    without_dbpedia = Soda(warehouse, SodaConfig(use_dbpedia=False))
    result = benchmark(with_dbpedia.search, "client", False)
    assert result.statements
    assert not without_dbpedia.search("client", execute=False).statements
