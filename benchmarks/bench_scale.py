"""Raw-speed scale benchmark: morsel-parallel + fused execution at 1M rows.

Correctness gate first: every engine configuration — row mode, the PR-5
batch engine (``fused=False``), fused codegen, fused + typed-array
column store, and fused + 4 morsel workers — must produce byte-identical
``ResultSet``s on the headline workload and a spread of secondary
queries.  Then the headline measurement: a filter + hash join + group-by
aggregation over ``BENCH_SCALE_ROWS`` fact rows (default 1,000,000) must
run at least **10x faster** fused than the row engine and at least
**2x faster** than the unfused batch engine — fusing the eight-conjunct
filter into one generated loop removes the per-batch closure chain and
its intermediate column materialisations, which dominate the unfused
profile.  All numbers land in ``BENCH_scale.json``.

The morsel-parallel variant is reported but only floored against the row
engine: under a single-core CPython interpreter the thread pool adds
coordination overhead without adding compute, so its value here is
architectural (ordered morsel merge, partial-aggregate combine) rather
than raw speed.

Run with::

    pytest benchmarks/bench_scale.py -q -s            # full 1M rows
    BENCH_SCALE_ROWS=50000 pytest benchmarks/bench_scale.py -q -s
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from bench_utils import speedup_floor
from repro.sqlengine.database import Database
from repro.sqlengine.parser import parse_select

SCALE_ROWS = int(os.environ.get("BENCH_SCALE_ROWS", "1000000"))
DIM_ROWS = 256
STATUSES = ["NEW", "OPEN", "HELD", "DONE"]

#: the headline workload: an eight-conjunct filter (one dictionary LIKE,
#: five comparisons, two compound arithmetic predicates), a hash join
#: against the dimension, per-region aggregation, and a group sort
HEADLINE_SQL = (
    "SELECT d.region, count(*), sum(f.amount), avg(f.qty) "
    "FROM facts f, dims d "
    "WHERE f.dim_id = d.id AND f.status LIKE 'D%' "
    "AND f.amount > 1500 AND f.amount < 9200 AND f.qty >= 5 AND f.qty < 85 "
    "AND f.amount * 0.5 + f.qty > 800 AND f.amount + f.qty * 3 < 12000 "
    "GROUP BY d.region ORDER BY sum(f.amount) DESC"
)

#: parity spread: TopN with bound pushdown, arithmetic projection, and a
#: NULL-sensitive aggregate, so every PR-7 layer sees real data
PARITY_SQL = [
    "SELECT f.id, f.amount FROM facts f WHERE f.amount > 9000 "
    "ORDER BY f.amount DESC, f.id LIMIT 25",
    "SELECT f.id, f.amount * 2 + f.qty FROM facts f "
    "WHERE f.status = 'HELD' AND f.qty < 3 ORDER BY f.id LIMIT 50",
    "SELECT f.status, count(*), min(f.qty), max(f.amount) FROM facts f "
    "GROUP BY f.status ORDER BY f.status",
]

#: (name, Database kwargs) for every engine configuration under test
VARIANTS = [
    ("row", {"execution_mode": "row"}),
    ("batch_unfused", {"fused": False}),
    ("batch_fused", {"fused": True}),
    ("fused_array", {"fused": True, "array_store": True}),
    ("fused_parallel4", {"fused": True, "parallel_workers": 4}),
]

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_scale.json"


def _dataset():
    rng = random.Random(11)
    dims = [(i, f"region {i % 16}") for i in range(DIM_ROWS)]
    facts = [
        (
            i,
            rng.randrange(DIM_ROWS),
            float(rng.randrange(1, 10_000)),
            rng.randrange(100),
            STATUSES[i % 4],
        )
        for i in range(SCALE_ROWS)
    ]
    return dims, facts


def make_db(dims, facts, **kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table(
        "dims", [("id", "INT"), ("region", "TEXT")], primary_key=["id"]
    )
    db.create_table(
        "facts",
        [("id", "INT"), ("dim_id", "INT"), ("amount", "REAL"),
         ("qty", "INT"), ("status", "TEXT")],
        primary_key=["id"],
    )
    db.insert_rows("dims", dims)
    db.insert_rows("facts", facts)
    return db


@pytest.fixture(scope="module")
def databases():
    dims, facts = _dataset()
    return {name: make_db(dims, facts, **kwargs) for name, kwargs in VARIANTS}


def _best_time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


class TestScaleParity:
    @pytest.mark.parametrize("sql", [HEADLINE_SQL] + PARITY_SQL)
    def test_every_variant_matches_row_mode(self, databases, sql):
        baseline = databases["row"].execute(sql)
        for name, __ in VARIANTS[1:]:
            got = databases[name].execute(sql)
            assert got.columns == baseline.columns, name
            assert got.rows == baseline.rows, name


class TestScaleSpeedup:
    def test_headline_floors_and_report(self, databases):
        select = parse_select(HEADLINE_SQL)
        plans, results = {}, {}
        for name, __ in VARIANTS:
            plans[name] = databases[name].planner.prepare(select)
            results[name] = plans[name].execute()
        baseline = results["row"]
        for name in plans:
            assert results[name].columns == baseline.columns, name
            assert results[name].rows == baseline.rows, name

        times = {
            name: _best_time(plan.execute,
                             repeats=2 if name == "row" else 3)
            for name, plan in plans.items()
        }
        fused = times["batch_fused"]
        speedups = {
            name: round(times[name] / fused, 2) for name in times
        }
        report = {
            "fact_rows": SCALE_ROWS,
            "dim_rows": DIM_ROWS,
            "headline": {
                "sql": HEADLINE_SQL,
                "times_s": {k: round(v, 6) for k, v in times.items()},
                "speedup_vs_fused": speedups,
                "row_over_fused": speedups["row"],
                "unfused_over_fused": speedups["batch_unfused"],
            },
        }
        BENCH_OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

        print(f"\nscale headline ({SCALE_ROWS} fact rows):")
        for name, seconds in times.items():
            print(f"  {name:16s} {seconds * 1e3:9.1f} ms   "
                  f"({speedups[name]:.2f}x of fused)")
        print(f"  -> {BENCH_OUTPUT.name} written")

        floor_row = speedup_floor(10.0)
        assert times["row"] / fused >= floor_row, (
            f"fused engine must be >= {floor_row}x over row mode, got "
            f"{times['row'] / fused:.2f}x"
        )
        floor_unfused = speedup_floor(2.0)
        assert times["batch_unfused"] / fused >= floor_unfused, (
            f"fused engine must be >= {floor_unfused}x over the unfused "
            f"batch engine, got {times['batch_unfused'] / fused:.2f}x"
        )
        # the array store and the morsel pool must never fall behind the
        # row engine; on a single-core GIL interpreter the thread pool
        # only adds overhead, so no stronger floor applies to it here
        floor_secondary = speedup_floor(2.0)
        for name in ("fused_array", "fused_parallel4"):
            assert times["row"] / times[name] >= floor_secondary, (
                f"{name} must stay >= {floor_secondary}x over row mode, "
                f"got {times['row'] / times[name]:.2f}x"
            )

    def test_parallel_variant_dispatches_morsels(self, databases):
        db = databases["fused_parallel4"]
        before = db.metrics().get(
            "engine.morsels_dispatched", {}
        ).get("value", 0)
        db.execute(HEADLINE_SQL)
        after = db.metrics()["engine.morsels_dispatched"]["value"]
        assert after > before
