"""Figure 9 — joins on a direct path between the entry points.

The paper keeps only join conditions on direct paths between entry
points; joins merely "attached" to such a path are ignored.  This bench
shows the selected joins for a multi-entry query and verifies that
attached-but-unneeded joins (e.g. the party_address bridge when a direct
domicile edge exists) are excluded; it benchmarks join selection.
"""

from repro.core.input_patterns import parse_query
from repro.core.ranking import rank

QUERY = "private customers Switzerland"


def test_fig9_direct_path_joins(soda, benchmark):
    lookup_result = soda._lookup.run(parse_query(QUERY))
    best = rank(lookup_result, top_n=1)[0]
    tables_result = benchmark(soda._tables.run, best.interpretation)

    print()
    print(f"Fig. 9 — selected joins for {QUERY!r}:")
    for join in tables_result.joins:
        print(f"  {join.condition_sql()}  [{join.name}]")

    conditions = {join.condition_sql() for join in tables_result.joins}
    # the direct path uses the inheritance join + the domicile edge ...
    assert "individuals.id = parties.id" in conditions
    assert "individuals.domicile_adr_id = addresses.id" in conditions
    # ... and ignores the attached party_address bridge (Fig. 9's greyed
    # out foreign keys)
    assert "party_address" not in tables_result.tables


def test_fig9_far_apart_entities(soda, benchmark):
    # entities beyond the join-traversal bound stay unjoined — the
    # paper's "too far apart in the schema graph" limitation
    from repro.core.soda import Soda, SodaConfig

    shallow = Soda(soda.warehouse, SodaConfig(join_depth=2))
    deep = Soda(soda.warehouse, SodaConfig(join_depth=20))

    result = benchmark(shallow.search, "Sara financial instruments", False)
    assert result.statements
    # with the shallow bound, some interpretations cannot reach the
    # financial instruments (the proper chain runs over transactions)
    shallow_disconnected = sum(1 for s in result.statements if s.disconnected)
    deep_result = deep.search("Sara financial instruments", execute=False)
    deep_disconnected = sum(1 for s in deep_result.statements if s.disconnected)
    print(
        f"\ndisconnected statements: depth 2 -> {shallow_disconnected}, "
        f"depth 20 -> {deep_disconnected}"
    )
    assert shallow_disconnected > 0
    assert deep_disconnected <= shallow_disconnected
