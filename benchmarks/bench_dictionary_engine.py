"""Engine perf round 2: dictionary encoding, hash LEFT JOIN, TOP-N.

Three locks over a 50k-row string-heavy warehouse workload, each
correctness-gated (byte-identical ``ResultSet``s across the row engine,
the unencoded batch engine and the encoded batch engine) before any
timing is trusted:

* **string filter + GROUP BY** — LIKE/IN/equality over dictionary-
  encoded TEXT columns plus a code-keyed aggregation must run at least
  **2x** faster than the same batch plan over unencoded columns (the
  PR-3 engine): LIKE evaluates its regex once per dictionary entry
  instead of once per row, equality/IN compare integer codes;
* **hash vs broadcast LEFT JOIN** — the gather-based hash path must
  beat the per-left-row broadcast evaluation by at least **2x** (in
  practice it is orders of magnitude on any non-trivial right side);
* **TOP-N pushdown** — the fused bounded-heap ``top-n`` operator must
  beat the unfused full Sort+Limit plan.

Timing floors clamp to ``BENCH_SPEEDUP_MIN`` on noisy shared runners
(see ``bench_utils.speedup_floor``); correctness asserts stay hard.
All measurements land in ``BENCH_dict.json``.

Run with::

    pytest benchmarks/bench_dictionary_engine.py -q -s
"""

import json
import random
import time
from pathlib import Path

import pytest

from bench_utils import speedup_floor
from repro.sqlengine.database import Database
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import build_physical, lower_select
from repro.sqlengine.planner import physical

FACT_ROWS = 50_000
DIM_ROWS = 400
LEFT_JOIN_ROWS = 5_000  # broadcast is O(left x right); keep the smoke quick

STATUSES = ["NEW", "OPEN", "HELD", "DONE", "SETTLED", "VOID"]
CITIES = [f"city {i}" for i in range(37)] + ["Hamburg", "Strasburg", "Augsburg"]
CLASSES = [f"class {i}" for i in range(24)]

STRING_GROUPBY_SQL = (
    "SELECT classification, count(*), sum(amount) FROM facts "
    "WHERE city LIKE '%burg%' AND status IN ('DONE', 'HELD') "
    "GROUP BY classification ORDER BY classification"
)
LEFT_JOIN_SQL = (
    "SELECT f.id, f.status, d.region FROM facts f "
    f"LEFT JOIN dims d ON f.dim_id = d.id AND d.region <> 'region 3' "
    f"WHERE f.id < {LEFT_JOIN_ROWS}"
)
TOPN_SQL = (
    "SELECT id, amount, status FROM facts "
    "ORDER BY amount DESC, id LIMIT 10"
)

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_dict.json"


def make_db(mode: str, dict_encoding_threshold: "int | None" = None) -> Database:
    rng = random.Random(11)
    db = Database(
        execution_mode=mode,
        dict_encoding_threshold=dict_encoding_threshold,
    )
    db.create_table(
        "facts",
        [("id", "INT"), ("status", "TEXT"), ("city", "TEXT"),
         ("classification", "TEXT"), ("amount", "REAL"), ("dim_id", "INT")],
        primary_key=["id"],
    )
    db.create_table(
        "dims", [("id", "INT"), ("region", "TEXT")], primary_key=["id"]
    )
    db.insert_rows(
        "facts",
        [
            (
                i,
                STATUSES[i % 6],
                CITIES[rng.randrange(len(CITIES))],
                CLASSES[rng.randrange(len(CLASSES))],
                float(rng.randrange(1, 10_000)),
                rng.randrange(DIM_ROWS),
            )
            for i in range(FACT_ROWS)
        ],
    )
    db.insert_rows("dims", [(i, f"region {i % 12}") for i in range(DIM_ROWS)])
    return db


@pytest.fixture(scope="module")
def row_db():
    return make_db("row")


@pytest.fixture(scope="module")
def encoded_db():
    return make_db("batch")


@pytest.fixture(scope="module")
def unencoded_db():
    return make_db("batch", dict_encoding_threshold=0)


def _best_time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _assert_three_way(row_db, encoded_db, unencoded_db, sql: str) -> None:
    reference = row_db.execute(sql)
    for db in (encoded_db, unencoded_db):
        result = db.execute(sql)
        assert result.columns == reference.columns, sql
        assert result.rows == reference.rows, sql


class TestDictionaryEngine:
    def test_fixture_is_encoded_as_expected(self, encoded_db, unencoded_db):
        assert encoded_db.table("facts").encoded_column_names() == [
            "status", "city", "classification",
        ]
        assert unencoded_db.table("facts").encoded_column_names() == []
        plan = encoded_db.explain(STRING_GROUPBY_SQL)
        assert "[dict:" in plan

    def test_speedups_and_report(self, row_db, encoded_db, unencoded_db):
        report = {
            "fact_rows": FACT_ROWS,
            "dim_rows": DIM_ROWS,
            "workloads": {},
        }

        # 1. dictionary encoding: string filter + GROUP BY ------------
        _assert_three_way(row_db, encoded_db, unencoded_db,
                          STRING_GROUPBY_SQL)
        select = parse_select(STRING_GROUPBY_SQL)
        encoded_plan = encoded_db.planner.prepare(select)
        unencoded_plan = unencoded_db.planner.prepare(select)
        encoded_s = _best_time(encoded_plan.execute)
        unencoded_s = _best_time(unencoded_plan.execute)
        report["workloads"]["string_filter_groupby"] = {
            "encoded_s": round(encoded_s, 6),
            "unencoded_s": round(unencoded_s, 6),
            "speedup": round(unencoded_s / encoded_s, 2),
        }

        # 2. LEFT JOIN: hash path vs PR-3 broadcast --------------------
        _assert_three_way(row_db, encoded_db, unencoded_db, LEFT_JOIN_SQL)
        join_select = parse_select(LEFT_JOIN_SQL)
        hash_plan = encoded_db.planner.prepare(join_select)
        assert physical.HASH_LEFT_JOIN_ENABLED
        physical.HASH_LEFT_JOIN_ENABLED = False
        try:
            broadcast_plan = build_physical(
                encoded_db.planner.plan_logical(join_select),
                encoded_db.catalog,
                mode="batch",
            )
        finally:
            physical.HASH_LEFT_JOIN_ENABLED = True
        assert broadcast_plan.execute().rows == hash_plan.execute().rows
        hash_s = _best_time(hash_plan.execute)
        broadcast_s = _best_time(broadcast_plan.execute)
        report["workloads"]["left_join"] = {
            "left_rows": LEFT_JOIN_ROWS,
            "hash_s": round(hash_s, 6),
            "broadcast_s": round(broadcast_s, 6),
            "speedup": round(broadcast_s / hash_s, 2),
        }

        # 3. TOP-N pushdown vs full Sort+Limit -------------------------
        _assert_three_way(row_db, encoded_db, unencoded_db, TOPN_SQL)
        topn_select = parse_select(TOPN_SQL)
        topn_plan = encoded_db.planner.prepare(topn_select)
        assert "top-n 10 by amount DESC, id" in encoded_db.explain(TOPN_SQL)
        sort_limit_plan = build_physical(
            lower_select(encoded_db.catalog, topn_select),
            encoded_db.catalog,
            mode="batch",
        )
        assert sort_limit_plan.execute().rows == topn_plan.execute().rows
        topn_s = _best_time(topn_plan.execute)
        sort_limit_s = _best_time(sort_limit_plan.execute)
        report["workloads"]["topn"] = {
            "topn_s": round(topn_s, 6),
            "sort_limit_s": round(sort_limit_s, 6),
            "speedup": round(sort_limit_s / topn_s, 2),
        }

        BENCH_OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

        print(f"\ndictionary engine round 2 ({FACT_ROWS} fact rows):")
        for name, numbers in report["workloads"].items():
            print(f"  {name:24s} {numbers['speedup']:6.2f}x  {numbers}")
        print(f"  -> {BENCH_OUTPUT.name} written")

        floor = speedup_floor(2.0)
        groupby = report["workloads"]["string_filter_groupby"]
        assert groupby["speedup"] >= floor, (
            f"encoded string filter + GROUP BY must be >= {floor}x over the "
            f"unencoded batch engine, got {groupby['speedup']}x"
        )
        join = report["workloads"]["left_join"]
        assert join["speedup"] >= floor, (
            f"hash LEFT JOIN must be >= {floor}x over broadcast, got "
            f"{join['speedup']}x"
        )
        topn_floor = speedup_floor(1.2)
        topn = report["workloads"]["topn"]
        assert topn["speedup"] >= topn_floor, (
            f"TopN must beat full Sort+Limit (>= {topn_floor}x), got "
            f"{topn['speedup']}x"
        )
