"""Per-table plan-cache invalidation under a mixed read/write workload.

Before this PR the plan cache keyed every entry on the *whole-catalog*
fingerprint, so any write anywhere evicted every prepared plan.  Now
each cache entry is stamped with the mutation versions of exactly the
tables its plan scans, so:

* a write to table A drops only the plans reading A (counted as
  ``invalidations``, asserted here), while prepared plans for B..H keep
  serving hits — the measured hit rate of a realistic mixed workload
  must stay far above what whole-catalog invalidation could deliver;
* stale plans really are dropped: an UPDATE followed by the same SELECT
  (and a SODA search over updated base data) must see the new values —
  those correctness asserts stay hard under any ``BENCH_SPEEDUP_MIN``.

All counters are deterministic (no timing), so this bench cannot flake
on shared runners.  Measurements are written to ``BENCH_dml.json``.

Run with::

    pytest benchmarks/bench_dml_invalidation.py -q -s
"""

import json
import random
import time
from pathlib import Path

import pytest

from repro.sqlengine.database import Database

TABLES = 8
ROWS_PER_TABLE = 2_000

#: reads per write in the mixed workload (a warehouse serves far more
#: searches than corrections)
READS_PER_WRITE = 9
WORKLOAD_OPS = 400

#: query templates cached per table (grp 0..4)
TEMPLATES_PER_TABLE = 5

#: a write staleness-drops at most the written table's templates, so
#: the long-run miss rate is bounded by writes * TEMPLATES_PER_TABLE /
#: reads (~0.55 here) and in practice lands well under it; whole-catalog
#: invalidation flushes all TABLES * TEMPLATES_PER_TABLE plans per write
HIT_RATE_FLOOR = 0.60

#: per-table invalidation must beat emulated whole-catalog flushing by
#: at least this much hit rate on the identical op sequence
HIT_RATE_MARGIN = 0.25

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_dml.json"


def make_db() -> Database:
    rng = random.Random(23)
    db = Database()
    for t in range(TABLES):
        name = f"t{t}"
        db.create_table(
            name,
            [("id", "INT"), ("grp", "INT"), ("amount", "REAL"),
             ("label", "TEXT")],
            primary_key=["id"],
        )
        db.insert_rows(
            name,
            [
                (i, i % 20, float(rng.randrange(1, 10_000)), f"label {i % 50}")
                for i in range(ROWS_PER_TABLE)
            ],
        )
    return db


def read_sql(table: str, grp: int) -> str:
    return (
        f"SELECT grp, count(*), sum(amount) FROM {table} "
        f"WHERE grp = {grp} GROUP BY grp"
    )


@pytest.fixture(scope="module")
def db():
    return make_db()


class TestPerTableInvalidation:
    def test_writes_to_one_table_do_not_evict_others(self, db):
        stats = db.planner.cache.stats
        # warm one prepared plan per table
        for t in range(TABLES):
            db.execute(read_sql(f"t{t}", 1))
        hits_before = stats.hits
        invalidations_before = stats.invalidations

        db.execute("UPDATE t0 SET amount = amount + 1 WHERE grp = 1")

        # every untouched table still hits its cached plan ...
        for t in range(1, TABLES):
            db.execute(read_sql(f"t{t}", 1))
        assert stats.hits == hits_before + (TABLES - 1)
        assert stats.invalidations == invalidations_before

        # ... while the written table's plan is dropped and re-prepared
        db.execute(read_sql("t0", 1))
        assert stats.invalidations == invalidations_before + 1

    def test_update_then_read_sees_new_values(self, db):
        sql = "SELECT sum(amount) FROM t1 WHERE grp = 3"
        before = db.execute(sql).rows[0][0]
        changed = db.execute(
            "UPDATE t1 SET amount = amount + 100.0 WHERE grp = 3"
        ).rowcount
        assert changed == ROWS_PER_TABLE // 20
        after = db.execute(sql).rows[0][0]
        assert after == pytest.approx(before + 100.0 * changed)

    def test_delete_then_read_sees_fewer_rows(self, db):
        sql = "SELECT count(*) FROM t2"
        before = db.execute(sql).rows[0][0]
        removed = db.execute("DELETE FROM t2 WHERE grp = 7").rowcount
        assert removed == ROWS_PER_TABLE // 20
        assert db.execute(sql).rows[0][0] == before - removed


def _run_workload(database: Database, flush_on_write: bool) -> dict:
    """Run the mixed workload; optionally emulate whole-catalog flushing.

    ``flush_on_write=True`` clears the entire plan cache after every
    write — exactly what the old fingerprint-keyed cache did — so the
    two runs measure per-table vs whole-catalog invalidation on the
    *identical* operation sequence.
    """
    rng = random.Random(5)
    stats = database.planner.cache.stats
    # warm: one template per (table, grp) like SODA's template-shaped
    # statements
    for t in range(TABLES):
        for grp in range(TEMPLATES_PER_TABLE):
            database.execute(read_sql(f"t{t}", grp))
    hits_at_warm = stats.hits
    misses_at_warm = stats.misses

    started = time.perf_counter()
    writes = 0
    for op in range(WORKLOAD_OPS):
        table = f"t{rng.randrange(TABLES)}"
        if op % (READS_PER_WRITE + 1) == READS_PER_WRITE:
            database.execute(
                f"UPDATE {table} SET amount = amount * 1.01 "
                f"WHERE grp = {rng.randrange(TEMPLATES_PER_TABLE)}"
            )
            if flush_on_write:
                database.planner.cache.clear()
            writes += 1
        else:
            database.execute(
                read_sql(table, rng.randrange(TEMPLATES_PER_TABLE))
            )
    elapsed = time.perf_counter() - started

    reads = WORKLOAD_OPS - writes
    hits = stats.hits - hits_at_warm
    misses = stats.misses - misses_at_warm
    return {
        "reads": reads,
        "writes": writes,
        "hits": hits,
        "misses_after_warm": misses,
        "invalidations": stats.invalidations,
        "hit_rate": round(hits / reads, 4),
        "elapsed_s": round(elapsed, 4),
    }


class TestMixedWorkloadHitRate:
    def test_hit_rate_survives_writes_and_report(self):
        per_table = _run_workload(make_db(), flush_on_write=False)
        whole_catalog = _run_workload(make_db(), flush_on_write=True)

        report = {
            "tables": TABLES,
            "rows_per_table": ROWS_PER_TABLE,
            "templates_per_table": TEMPLATES_PER_TABLE,
            "workload_ops": WORKLOAD_OPS,
            "per_table_invalidation": per_table,
            "whole_catalog_invalidation": whole_catalog,
        }
        BENCH_OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

        print(
            f"\nmixed workload ({per_table['reads']} reads / "
            f"{per_table['writes']} writes over {TABLES} tables):"
        )
        for name in ("per_table_invalidation", "whole_catalog_invalidation"):
            numbers = report[name]
            print(
                f"  {name:28s} {numbers['hits']:4d} hits "
                f"{numbers['misses_after_warm']:4d} misses "
                f"(hit rate {numbers['hit_rate']:.2%}) "
                f"in {numbers['elapsed_s'] * 1e3:.0f} ms"
            )
        print(f"  -> {BENCH_OUTPUT.name} written")

        # deterministic counter floors — hard even in CI:
        # per-table invalidation must keep most reads on cached plans ...
        assert per_table["hit_rate"] >= HIT_RATE_FLOOR, report
        # ... far above whole-catalog flushing on the same op sequence ...
        assert per_table["hit_rate"] >= (
            whole_catalog["hit_rate"] + HIT_RATE_MARGIN
        ), report
        # ... and only plans reading the written table may be dropped
        assert per_table["invalidations"] <= (
            per_table["writes"] * TEMPLATES_PER_TABLE
        ), report
