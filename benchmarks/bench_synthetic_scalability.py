"""Scalability study — SODA analysis time vs metadata size.

The paper: after the lookup product, "the remaining steps are all linear
in the size of the meta-data".  This bench runs generated keyword
workloads over synthetic warehouses of increasing schema scale and
reports per-step analysis times.
"""

import pytest

from repro.core.soda import Soda, SodaConfig
from repro.experiments.synthetic_workload import (
    build_synthetic_warehouse,
    generate_workload,
    run_scalability_study,
)
from repro.warehouse.synthetic import SyntheticConfig


def test_scalability_report(benchmark):
    points = benchmark.pedantic(
        run_scalability_study,
        kwargs={"factors": (0.05, 0.1, 0.2), "queries_per_scale": 5},
        rounds=1,
        iterations=1,
    )
    print()
    print("SODA analysis time vs metadata size (synthetic workloads):")
    print(f"{'factor':>7s} {'tables':>7s} {'triples':>8s} "
          f"{'lookup ms':>10s} {'tables ms':>10s} {'total ms':>9s}")
    for point in points:
        print(
            f"{point.factor:>7.2f} {point.tables:>7d} {point.triples:>8d} "
            f"{point.mean_lookup_ms:>10.2f} {point.mean_tables_ms:>10.2f} "
            f"{point.mean_total_ms:>9.2f}"
        )
    assert points[-1].triples > points[0].triples


def test_single_query_at_medium_scale(benchmark):
    warehouse = build_synthetic_warehouse(SyntheticConfig().scaled(0.1))
    soda = Soda(warehouse, SodaConfig())
    query = generate_workload(warehouse.definition, count=1)[0]
    result = benchmark(soda.search, query.text, False)
    assert result.complexity >= 1
