"""Shared helpers for the benchmark suite.

The speedup benchmarks gate real performance locks (vectorized engine
>= 3x, snapshot warm-start >= 5x, planned < naive).  On a quiet
development machine those floors hold with a wide margin, but shared CI
runners are noisy neighbours — so CI sets ``BENCH_SPEEDUP_MIN`` to a
relaxed absolute floor and every *timing* assertion clamps to it, while
*correctness* assertions (byte-identical results, parity, counters)
always stay hard.
"""

from __future__ import annotations

import os

#: environment variable holding the relaxed CI-wide speedup floor
SPEEDUP_MIN_ENV = "BENCH_SPEEDUP_MIN"


def speedup_floor(default: float) -> float:
    """The minimum speedup a timing assert should require.

    Locally (``BENCH_SPEEDUP_MIN`` unset or empty) this is *default* —
    the full lock.  When the variable is set, the floor is relaxed to
    ``min(default, BENCH_SPEEDUP_MIN)``: the override can only ever
    loosen a bound, never tighten one, so a misconfigured CI job cannot
    turn jitter into spurious failures *or* sneak a weaker lock past a
    local run.
    """
    raw = os.environ.get(SPEEDUP_MIN_ENV, "").strip()
    if not raw:
        return default
    return min(default, float(raw))
