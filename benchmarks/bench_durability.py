"""Durability costs: checkpoint warm-start speedup and WAL overhead.

The paper's warehouse amortizes long builds across many sessions; the
durable engine does the same for *data*: a columnar checkpoint lets a
restart skip re-ingesting every row.  This bench locks that trade at
100k rows:

* **cold-start**: opening a checkpointed data directory must be at
  least 5x faster than re-ingesting the same rows through the insert
  path (relaxable on noisy runners via ``BENCH_SPEEDUP_MIN``, like
  every timing floor in this suite);
* **byte-identical recovery** (hard assert, never relaxed): the
  recovered catalog's fingerprint, rows and columnar stores equal the
  original's exactly — both straight from the WAL and from a
  checkpoint + WAL tail;
* **WAL overhead** is measured and recorded (per-statement cost with
  fsync on, fsync off, and no durability at all) so regressions in the
  logging hot path show up in ``BENCH_durability.json`` history.

Run with::

    pytest benchmarks/bench_durability.py -q -s
"""

import json
import os
import tempfile
import time
from pathlib import Path

from bench_utils import speedup_floor

from repro.sqlengine.database import Database

ROWS = 100_000
CHUNK = 10_000

#: single-row INSERT statements for the WAL-overhead measurement
#: (kept modest: each durable statement pays a real fsync)
OVERHEAD_STATEMENTS = 200

COLD_START_SPEEDUP = 5.0

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_durability.json"


def generate_rows(count: int) -> list:
    return [
        (i, i % 97, float(i % 1009) * 0.5, f"label {i % 50}")
        for i in range(count)
    ]


def ingest(db: Database, rows) -> None:
    db.create_table(
        "facts",
        [("id", "INT"), ("grp", "INT"), ("amount", "REAL"), ("label", "TEXT")],
        primary_key=["id"],
    )
    for start in range(0, len(rows), CHUNK):
        db.insert_rows("facts", rows[start:start + CHUNK])


def catalog_state(db: Database) -> tuple:
    table = db.table("facts")
    return (
        db.catalog.fingerprint(),
        list(table.rows),
        [list(table.column_data(i)) for i in range(len(table.columns))],
    )


def measure_statement_cost(db: Database) -> float:
    started = time.perf_counter()
    for i in range(OVERHEAD_STATEMENTS):
        db.execute(
            f"INSERT INTO facts VALUES ({ROWS + i}, 0, 1.0, 'overhead')"
        )
    return (time.perf_counter() - started) / OVERHEAD_STATEMENTS


def test_durability_benchmarks():
    rows = generate_rows(ROWS)
    results = {"rows": ROWS}

    with tempfile.TemporaryDirectory(prefix="benchdur") as data_dir:
        # ---- ingest durably (WAL records everything) ------------------
        db = Database(data_dir=data_dir)
        started = time.perf_counter()
        ingest(db, rows)
        results["durable_ingest_seconds"] = time.perf_counter() - started
        original = catalog_state(db)
        results["wal_bytes"] = os.path.getsize(
            os.path.join(data_dir, "wal.0.log")
        )
        db.close()

        # ---- recovery from the raw WAL is byte-identical --------------
        replayed = Database(data_dir=data_dir)
        assert replayed.recovery_info["checkpoint"] is False
        assert catalog_state(replayed) == original  # hard, never relaxed

        # ---- checkpoint, then time the warm cold-start ----------------
        summary = replayed.checkpoint()
        results["checkpoint_bytes"] = summary["checkpoint_bytes"]
        replayed.close()

        best_recover = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            recovered = Database(data_dir=data_dir)
            best_recover = min(best_recover, time.perf_counter() - started)
            assert recovered.recovery_info == {
                "checkpoint": True,
                "replayed": 0,
                "generation": 1,
            }
            assert catalog_state(recovered) == original  # hard
            recovered.close()
        results["checkpoint_recover_seconds"] = best_recover

    # ---- the re-ingest baseline the checkpoint must beat --------------
    started = time.perf_counter()
    fresh = Database()
    ingest(fresh, rows)
    results["reingest_seconds"] = time.perf_counter() - started
    speedup = results["reingest_seconds"] / results["checkpoint_recover_seconds"]
    results["cold_start_speedup"] = speedup
    floor = speedup_floor(COLD_START_SPEEDUP)
    assert speedup >= floor, (
        f"checkpoint cold-start speedup {speedup:.2f}x below the "
        f"{floor:.2f}x floor"
    )

    # ---- WAL overhead per statement (recorded, not asserted) ----------
    baseline = measure_statement_cost(fresh)
    results["statement_seconds_memory"] = baseline
    for label, kwargs in [
        ("statement_seconds_wal_fsync", {"wal_sync": True}),
        ("statement_seconds_wal_nosync", {"wal_sync": False}),
    ]:
        with tempfile.TemporaryDirectory(prefix="benchdur") as data_dir:
            db = Database(data_dir=data_dir, **kwargs)
            ingest(db, rows[:CHUNK])  # a small base is enough here
            results[label] = measure_statement_cost(db)
            db.close()
    results["wal_fsync_overhead_x"] = (
        results["statement_seconds_wal_fsync"] / baseline
    )
    results["wal_nosync_overhead_x"] = (
        results["statement_seconds_wal_nosync"] / baseline
    )

    BENCH_OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print()
    print("durability bench (100k rows)")
    print(
        f"  durable ingest        {results['durable_ingest_seconds']:8.3f} s "
        f"(WAL {results['wal_bytes'] / 1e6:.1f} MB)"
    )
    print(
        f"  re-ingest baseline    {results['reingest_seconds']:8.3f} s"
    )
    print(
        f"  checkpoint cold-start {results['checkpoint_recover_seconds']:8.3f} s "
        f"({speedup:.1f}x, floor {floor:.1f}x; "
        f"image {results['checkpoint_bytes'] / 1e6:.1f} MB)"
    )
    print(
        f"  per-statement overhead: fsync "
        f"{results['wal_fsync_overhead_x']:.1f}x, nosync "
        f"{results['wal_nosync_overhead_x']:.1f}x over in-memory"
    )
    print(f"  wrote {BENCH_OUTPUT.name}")
