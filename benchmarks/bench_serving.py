"""Concurrent serving benchmarks: threaded search_many + the HTTP front end.

PR 9 restructured storage into frozen segments + delta so readers pin
snapshots and never block on writers, promoted the result memo to one
engine-wide cache, and put an asyncio HTTP front end (``repro serve``)
over a thread pool.  This bench locks the serving claims:

* **concurrent batch** — ``Soda.search_many(workers=4)`` over a
  duplicate-heavy 40-request workload must beat the same requests
  issued as a naive sequential per-request loop, with
  statement-for-statement identical results;
* **mixed read/write HTTP** — a background :class:`SodaServer` takes
  4 client threads of searches with an interleaved writer posting
  INSERTs through ``/sql``; every request must succeed, and the
  per-request p50/p99 latency and end-to-end QPS land in
  ``BENCH_serving.json``.

Timing floors relax under ``BENCH_SPEEDUP_MIN`` (noisy CI runners);
correctness asserts stay hard.  Run with::

    pytest benchmarks/bench_serving.py -q -s
"""

import json
import threading
import time
import urllib.parse
import urllib.request
from pathlib import Path

import pytest

from bench_utils import speedup_floor
from repro.core.soda import Soda, SodaConfig
from repro.server import SodaServer
from repro.sqlengine.config import DEFAULT_SEGMENT_ROWS, EngineConfig
from repro.warehouse.minibank import build_minibank

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

SERVE_WORKERS = 4
CLIENT_THREADS = 4
REQUESTS_PER_CLIENT = 12

#: a zipf-ish 40-request serving workload over 8 distinct texts —
#: duplicates included, as in real interactive traffic
UNIQUE_QUERIES = [
    "Zurich",
    "Sara Guttinger",
    "customers Zurich",
    "gold agreement",
    "private customers family name",
    "Credit Suisse",
    "customers names",
    "trade order",
]
WORKLOAD = [
    UNIQUE_QUERIES[i % len(UNIQUE_QUERIES) if i % 2 else i % 3]
    for i in range(40)
]

#: accumulated across tests; the last test writes BENCH_OUTPUT
RESULTS: dict = {}


@pytest.fixture(scope="module")
def serving_warehouse():
    """A private warehouse with the concurrent storage layout enabled."""
    return build_minibank(
        seed=42,
        scale=0.5,
        engine_config=EngineConfig(segment_rows=DEFAULT_SEGMENT_ROWS),
    )


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _fingerprints(results) -> list:
    return [
        [(s.sql, round(s.score, 12)) for s in result.statements]
        for result in results
    ]


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class TestConcurrentBatch:
    def test_concurrent_search_many_beats_sequential(self, serving_warehouse):
        warehouse = serving_warehouse

        # parity first (also warms the shared index/graph state): the
        # threaded batch must be statement-for-statement identical to
        # per-request serial searches
        reference = Soda(warehouse, SodaConfig())
        expected = _fingerprints([reference.search(t) for t in WORKLOAD])
        concurrent_engine = Soda(warehouse, SodaConfig())
        assert _fingerprints(
            concurrent_engine.search_many(WORKLOAD, workers=SERVE_WORKERS)
        ) == expected

        def sequential():
            soda = Soda(warehouse, SodaConfig())
            for text in WORKLOAD:
                soda.search(text)

        def concurrent():
            soda = Soda(warehouse, SodaConfig())
            soda.search_many(WORKLOAD, workers=SERVE_WORKERS)

        sequential_time = _best_of(sequential, 3)
        concurrent_time = _best_of(concurrent, 3)
        speedup = sequential_time / concurrent_time
        RESULTS["batch"] = {
            "requests": len(WORKLOAD),
            "unique_queries": len(set(WORKLOAD)),
            "workers": SERVE_WORKERS,
            "sequential_seconds": sequential_time,
            "concurrent_seconds": concurrent_time,
            "speedup_x": speedup,
            "sequential_qps": len(WORKLOAD) / sequential_time,
            "concurrent_qps": len(WORKLOAD) / concurrent_time,
        }
        print(
            f"\nconcurrent batch: {len(WORKLOAD)} requests "
            f"({len(set(WORKLOAD))} unique) — sequential "
            f"{sequential_time * 1e3:.0f} ms "
            f"({len(WORKLOAD) / sequential_time:.0f} q/s), "
            f"search_many(workers={SERVE_WORKERS}) "
            f"{concurrent_time * 1e3:.0f} ms "
            f"({len(WORKLOAD) / concurrent_time:.0f} q/s), {speedup:.2f}x"
        )
        assert speedup >= speedup_floor(1.3), (
            f"concurrent search_many speedup {speedup:.2f}x below floor"
        )


class TestHttpMixedLoad:
    def test_mixed_read_write_http_load(self, serving_warehouse):
        soda = Soda(serving_warehouse, SodaConfig())
        server = SodaServer(soda, port=0, workers=SERVE_WORKERS)
        server.start_background()
        base = f"http://127.0.0.1:{server.port}"
        latencies: list = []
        failures: list = []
        lock = threading.Lock()

        def request(path: str, body: "bytes | None" = None) -> None:
            started = time.perf_counter()
            try:
                req = urllib.request.Request(base + path, data=body)
                with urllib.request.urlopen(req, timeout=60) as response:
                    payload = json.loads(response.read())
                    status = response.status
            except urllib.error.HTTPError as exc:
                payload, status = json.loads(exc.read()), exc.code
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                if status != 200:
                    failures.append((path, status, payload))

        def client(worker: int) -> None:
            for i in range(REQUESTS_PER_CLIENT):
                step = worker * REQUESTS_PER_CLIENT + i
                if worker == 0 and i % 4 == 3:
                    # the writer: DML lands through /sql while the other
                    # threads keep searching against pinned snapshots
                    request(
                        "/sql",
                        f"INSERT INTO currencies VALUES "
                        f"('Z{step:02d}', 'Bench Coin {step}')".encode(),
                    )
                else:
                    text = UNIQUE_QUERIES[step % len(UNIQUE_QUERIES)]
                    query = urllib.parse.quote(text)
                    request(f"/search?q={query}&limit=3")

        try:
            started = time.perf_counter()
            threads = [
                threading.Thread(target=client, args=(n,))
                for n in range(CLIENT_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - started
        finally:
            server.stop()

        total = CLIENT_THREADS * REQUESTS_PER_CLIENT
        assert not failures, f"requests failed: {failures[:3]}"
        assert len(latencies) == total
        cache = soda.result_cache.stats()
        RESULTS["http"] = {
            "requests": total,
            "client_threads": CLIENT_THREADS,
            "server_workers": SERVE_WORKERS,
            "writes": len([i for i in range(REQUESTS_PER_CLIENT) if i % 4 == 3]),
            "wall_seconds": wall,
            "qps": total / wall,
            "p50_seconds": _percentile(latencies, 0.50),
            "p99_seconds": _percentile(latencies, 0.99),
            "result_cache_hits": cache["hits"],
            "result_cache_misses": cache["misses"],
        }
        http = RESULTS["http"]
        print(
            f"\nhttp mixed load: {total} requests on {CLIENT_THREADS} "
            f"client threads in {wall:.2f}s ({http['qps']:.0f} q/s), "
            f"p50 {http['p50_seconds'] * 1e3:.0f} ms, "
            f"p99 {http['p99_seconds'] * 1e3:.0f} ms, "
            f"cache {cache['hits']} hit(s) / {cache['misses']} miss(es)"
        )
        # the shared result cache must be doing real work under load
        assert cache["hits"] > 0

        BENCH_OUTPUT.write_text(json.dumps(RESULTS, indent=2) + "\n")
        print(f"  -> {BENCH_OUTPUT.name} written")
