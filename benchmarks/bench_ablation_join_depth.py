"""Ablation — join-traversal depth ("far-fetching patterns").

The paper: SODA "combines a directed graph traversal with a given set of
patterns" and may miss join paths between entities "too far apart in the
schema graph"; deeper ("far-fetching") traversal finds more paths but
costs more and can flood the result set.  This bench sweeps the depth
bound and reports connectivity vs analysis time.
"""

import time

import pytest

from repro.core.soda import Soda, SodaConfig

QUERY = "Sara financial instruments"  # needs the transactions chain


@pytest.mark.parametrize("depth", [2, 6, 10, 16, 24])
def test_join_depth_sweep(warehouse, depth, benchmark):
    soda = Soda(warehouse, SodaConfig(join_depth=depth))
    result = benchmark(soda.search, QUERY, False)
    connected = sum(1 for s in result.statements if not s.disconnected)
    print(
        f"\ndepth {depth:2d}: {len(result.statements)} statements, "
        f"{connected} connected"
    )


def test_depth_monotone_connectivity(warehouse, benchmark):
    def connected_at(depth):
        soda = Soda(warehouse, SodaConfig(join_depth=depth))
        result = soda.search(QUERY, execute=False)
        return sum(1 for s in result.statements if not s.disconnected)

    shallow = benchmark(connected_at, 2)
    deep = connected_at(20)
    print(f"\nconnected statements: depth 2 -> {shallow}, depth 20 -> {deep}")
    assert deep >= shallow
    assert deep > 0
