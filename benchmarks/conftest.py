"""Shared fixtures for the benchmark harness.

Every paper table/figure has one bench module.  Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the reproduced paper tables that each bench prints
alongside its timing measurements.
"""

from __future__ import annotations

import pytest

from repro.core.soda import Soda, SodaConfig
from repro.warehouse.minibank import build_minibank


@pytest.fixture(scope="session")
def warehouse():
    return build_minibank(seed=42, scale=1.0)


@pytest.fixture(scope="session")
def soda(warehouse):
    return Soda(warehouse, SodaConfig())


@pytest.fixture(scope="session")
def experiment_outcomes(warehouse):
    from repro.experiments.runner import ExperimentRunner

    return ExperimentRunner(warehouse=warehouse).run_all()
