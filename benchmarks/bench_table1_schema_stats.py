"""Table 1 — complexity of the schema graph.

Generates a synthetic warehouse at the paper's exact cardinalities
(226/985/243 conceptual, 436/2700/254 logical, 472/3181 physical),
builds the metadata graph, and prints the reproduced Table 1.  The
benchmark measures the graph build at full paper scale.
"""

import pytest

from repro.experiments.reporting import format_table1
from repro.warehouse.graphbuilder import build_metadata_graph, graph_statistics
from repro.warehouse.synthetic import SyntheticConfig, generate_definition


@pytest.fixture(scope="module")
def paper_scale_definition():
    return generate_definition(SyntheticConfig())


def test_table1_cardinalities(paper_scale_definition, benchmark):
    graph = benchmark(build_metadata_graph, paper_scale_definition)
    stats = paper_scale_definition.schema_statistics()
    print()
    print("Table 1: Complexity of the schema graph (measured vs paper)")
    print(format_table1(stats))
    print(f"graph triples: {graph_statistics(graph)['triples']}")
    assert stats["physical_tables"] == 472
    assert stats["physical_columns"] == 3181
    assert stats["conceptual_entities"] == 226


def test_table1_finbank_statistics(warehouse, benchmark):
    stats = benchmark(warehouse.statistics)
    print()
    print("Finbank (running example) schema statistics:")
    for key in (
        "conceptual_entities", "logical_entities", "physical_tables",
        "physical_columns", "graph_triples", "index_indexed_values",
        "total_rows",
    ):
        print(f"  {key:26s} {stats[key]}")
    assert stats["physical_tables"] == 21
