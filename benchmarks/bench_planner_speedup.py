"""Planned vs. naive execution, and plan-cache speedup.

The "naive" baseline executes the *canonical* (unoptimized) plan —
scans cross-joined in syntax order with every predicate applied on top,
exactly what ``lower_select`` produces before the optimizer runs.  The
planned path adds predicate pushdown, statistics-driven join ordering,
projection pruning and hash joins.  A third measurement shows the LRU
plan cache eliminating repeated planning work for SODA's
template-shaped statements.

Run with::

    pytest benchmarks/bench_planner_speedup.py --benchmark-only -s
"""

import random
import time

import pytest

from bench_utils import speedup_floor
from repro.sqlengine.database import Database
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import QueryPlanner

FACT_ROWS = 2_000
DIM_ROWS = 40
STATUSES = ["NEW", "OPEN", "HELD", "DONE"]

JOIN_SQL = (
    "SELECT count(*), d.name FROM facts f, dims d, categories c "
    "WHERE f.dim_id = d.id AND d.category_id = c.id "
    "AND c.label = 'cat 1' AND f.status = 'DONE' "
    "GROUP BY d.name ORDER BY count(*) DESC LIMIT 5"
)
PUSHDOWN_SQL = (
    "SELECT f.id, d.name FROM facts f, dims d "
    "WHERE f.dim_id = d.id AND f.status = 'DONE' AND f.amount > 9000"
)


def make_db() -> Database:
    rng = random.Random(11)
    db = Database()
    db.create_table(
        "categories", [("id", "INT"), ("label", "TEXT")], primary_key=["id"]
    )
    db.create_table(
        "dims",
        [("id", "INT"), ("category_id", "INT"), ("name", "TEXT")],
        primary_key=["id"],
    )
    db.create_table(
        "facts",
        [("id", "INT"), ("dim_id", "INT"), ("amount", "REAL"),
         ("status", "TEXT")],
        primary_key=["id"],
    )
    db.insert_rows("categories", [(i, f"cat {i}") for i in range(4)])
    db.insert_rows(
        "dims", [(i, i % 4, f"dim {i}") for i in range(DIM_ROWS)]
    )
    db.insert_rows(
        "facts",
        [
            (
                i,
                rng.randrange(DIM_ROWS),
                float(rng.randrange(1, 10_000)),
                STATUSES[i % 4],
            )
            for i in range(FACT_ROWS)
        ],
    )
    return db


@pytest.fixture(scope="module")
def db():
    return make_db()


@pytest.fixture(scope="module")
def naive_planner(db):
    return QueryPlanner(db.catalog, cache_size=0, optimize=False)


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


class TestJoinOrderAndPushdown:
    def test_planned_three_way_join(self, db, benchmark):
        select = parse_select(JOIN_SQL)
        result = benchmark(db.planner.execute, select)
        assert len(result.rows) == 5

    def test_planned_vs_naive_join(self, db, naive_planner):
        select = parse_select(JOIN_SQL)
        naive_result = naive_planner.execute(select)
        planned_result = db.planner.execute(select)
        assert sorted(naive_result.rows) == sorted(planned_result.rows)

        naive_time = _time(lambda: naive_planner.execute(select), 3)
        planned_time = _time(lambda: db.planner.execute(select), 3)
        speedup = naive_time / planned_time
        print(
            f"\n3-way join: naive {naive_time * 1e3:.1f} ms, "
            f"planned {planned_time * 1e3:.1f} ms ({speedup:.0f}x)"
        )
        assert naive_time / planned_time > speedup_floor(1.0)

    def test_planned_vs_naive_pushdown(self, db, naive_planner):
        select = parse_select(PUSHDOWN_SQL)
        naive_result = naive_planner.execute(select)
        planned_result = db.planner.execute(select)
        assert sorted(naive_result.rows) == sorted(planned_result.rows)

        naive_time = _time(lambda: naive_planner.execute(select), 3)
        planned_time = _time(lambda: db.planner.execute(select), 3)
        print(
            f"\npushdown filter: naive {naive_time * 1e3:.1f} ms, "
            f"planned {planned_time * 1e3:.1f} ms "
            f"({naive_time / planned_time:.0f}x)"
        )
        assert naive_time / planned_time > speedup_floor(1.0)


class TestPlanCache:
    def test_cached_planning(self, db, benchmark):
        select = parse_select(JOIN_SQL)
        db.planner.prepare(select)  # warm the cache
        benchmark(db.planner.prepare, select)

    def test_cache_reduces_planning_time(self, db):
        """Repeated template-shaped statements must skip re-planning."""
        select = parse_select(JOIN_SQL)
        cold_planner = QueryPlanner(db.catalog, cache_size=0)
        repeats = 50

        started = time.perf_counter()
        for __ in range(repeats):
            cold_planner.prepare(select)
        cold = time.perf_counter() - started

        db.planner.prepare(select)  # ensure it is resident
        started = time.perf_counter()
        for __ in range(repeats):
            db.planner.prepare(select)
        warm = time.perf_counter() - started

        print(
            f"\nplanning x{repeats}: cold {cold * 1e3:.1f} ms, "
            f"cached {warm * 1e3:.1f} ms ({cold / warm:.0f}x)"
        )
        assert cold / warm > speedup_floor(1.0)

    def test_cache_hit_rate_on_template_workload(self, db):
        statements = [
            f"SELECT f.id FROM facts f WHERE f.dim_id = {i % 5}"
            for i in range(40)
        ]
        planner = QueryPlanner(db.catalog, cache_size=16)
        for sql in statements:
            planner.execute(parse_select(sql))
        stats = planner.cache.stats
        print(
            f"\ntemplate workload: {stats.hits} hits / "
            f"{stats.misses} misses (rate {stats.hit_rate:.2f})"
        )
        assert stats.hits == 35  # 5 distinct statements, 40 executions
