"""Table 2 — the experiment queries.

Prints the workload in the paper's shape and benchmarks input-pattern
parsing over all thirteen queries.
"""

from repro.core.input_patterns import parse_query
from repro.experiments.reporting import format_table2
from repro.experiments.workload import WORKLOAD


def test_table2_workload(benchmark):
    def parse_all():
        return [parse_query(query.text) for query in WORKLOAD]

    parsed = benchmark(parse_all)
    print()
    print("Table 2: Experiment queries")
    print(format_table2())
    assert len(parsed) == 13


def test_table2_gold_standards_execute(warehouse, benchmark):
    def run_gold():
        total = 0
        for query in WORKLOAD:
            for sql in query.gold:
                total += len(warehouse.database.execute(sql).rows)
        return total

    total = benchmark(run_gold)
    print(f"\ngold-standard statements return {total} tuples in total")
    assert total > 0
