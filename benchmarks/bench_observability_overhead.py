"""Observability must be (nearly) free when it is switched off.

PR 6 threads metrics counters and trace spans through the hot paths of
both engines.  This bench locks the cost contract: with the registry
disabled and the null tracer active — the exact PR-5 execution path —
the 50k-row headline workload of ``bench_vectorized_engine`` may run at
most **5% slower** than with the shipping default (metrics enabled,
tracing off).  Tracing and EXPLAIN ANALYZE timings are recorded
informationally; correctness is hard: all instrumentation states must
return byte-identical results.

``BENCH_SPEEDUP_MIN`` (the CI-wide noise relaxation) can only *widen*
the overhead allowance, never tighten it below 5%.  Measurements go to
``BENCH_obs.json``.

Run with::

    pytest benchmarks/bench_observability_overhead.py -q -s
"""

import json
import os
import time
from pathlib import Path

from bench_utils import SPEEDUP_MIN_ENV
from bench_vectorized_engine import HEADLINE_SQL, make_db
from repro.obs.metrics import registry
from repro.obs.tracing import Tracer, activate

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: executions per timed sample; best-of keeps scheduler noise out
INNER_RUNS = 4
REPEATS = 8


def _overhead_allowance() -> float:
    """Enabled/disabled wall-time ratio the lock tolerates (>= 1.05)."""
    raw = os.environ.get(SPEEDUP_MIN_ENV, "").strip()
    if not raw:
        return 1.05
    return max(1.05, float(raw))


def _sample(fn) -> float:
    started = time.perf_counter()
    for __ in range(INNER_RUNS):
        fn()
    return time.perf_counter() - started


def _best_interleaved(states) -> list:
    """Best-of-REPEATS for every (setup, fn) in *states*, interleaved.

    Sampling the states round-robin (instead of one state's repeats
    back-to-back) exposes both to the same cache/frequency drift, so the
    comparison measures the code difference, not the machine's mood.
    """
    best = [float("inf")] * len(states)
    for __ in range(REPEATS):
        for index, (setup, fn) in enumerate(states):
            setup()
            best[index] = min(best[index], _sample(fn))
    return best


def test_disabled_instrumentation_overhead_under_allowance(capsys):
    db = make_db("batch")
    reg = registry()

    def run():
        return db.execute(HEADLINE_SQL)

    def run_traced():
        with activate(Tracer()):
            return db.execute(HEADLINE_SQL)

    db.execute(HEADLINE_SQL)  # warm the plan cache once for every state
    try:
        reg.enabled = True
        baseline = run()
        reg.enabled = False
        disabled_result = run()
        reg.enabled = True
        traced_result = run_traced()

        def _enable():
            reg.enabled = True

        def _disable():
            reg.enabled = False

        disabled_s, enabled_s, traced_s = _best_interleaved([
            (_disable, run),       # everything off — the PR-5 path
            (_enable, run),        # shipping default: metrics on
            (_enable, run_traced),  # informational: spans allocated too
        ])
        reg.enabled = True

        # informational: fully instrumented per-operator actuals
        analyze_started = time.perf_counter()
        db.explain(HEADLINE_SQL, analyze=True)
        analyze_s = time.perf_counter() - analyze_started
    finally:
        reg.enabled = True

    # correctness is unconditional: instrumentation state must never
    # change what a query returns
    for other in (disabled_result, traced_result):
        assert other.columns == baseline.columns
        assert other.rows == baseline.rows

    allowance = _overhead_allowance()
    overhead = enabled_s / disabled_s if disabled_s > 0 else 1.0
    assert enabled_s <= disabled_s * allowance, (
        f"metrics-enabled run {enabled_s:.4f}s exceeds disabled run "
        f"{disabled_s:.4f}s by more than {allowance:.2f}x"
    )

    payload = {
        "workload": "headline_50k",
        "sql": HEADLINE_SQL,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "overhead_ratio": overhead,
        "allowance": allowance,
        "traced_s": traced_s,
        "explain_analyze_s": analyze_s,
    }
    BENCH_OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print("\nObservability overhead (headline 50k workload):")
        print(f"  disabled (PR-5 path)   {disabled_s:.4f}s")
        print(
            f"  metrics enabled        {enabled_s:.4f}s "
            f"({(overhead - 1) * 100:+.1f}%, allowance "
            f"{(allowance - 1) * 100:.0f}%)"
        )
        print(f"  tracing active         {traced_s:.4f}s")
        print(f"  explain analyze (once) {analyze_s:.4f}s")
        print(f"  -> {BENCH_OUTPUT.name}")
