"""Figure 5 — query classification.

The paper's example: for "customers Zurich financial instruments",
"customers" is found once (domain ontology), "Zurich" once (base data)
and "financial instruments" twice (conceptual + logical schema), giving
a query complexity of 1 x 1 x 2 = 2.  This bench reproduces the figure
exactly and benchmarks the lookup step.
"""

QUERY = "customers Zurich financial instruments"


def test_fig5_query_classification(soda, benchmark):
    result = benchmark(soda.search, QUERY, False)
    summary = result.lookup.classification_summary()
    print()
    print(f"Fig. 5 — classification of {QUERY!r}:")
    for term, sources in summary.items():
        print(f"  {term:24s} found in: {', '.join(sources)}")
    print(f"  complexity = {result.complexity}")

    assert summary["customers"] == ["domain_ontology"]
    assert summary["zurich"] == ["base_data"]
    assert summary["financial instruments"] == [
        "conceptual_schema", "logical_schema"
    ]
    assert result.complexity == 2  # 1 x 1 x 2, as in the paper
