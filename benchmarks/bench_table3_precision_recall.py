"""Table 3 — precision and recall of the generated statements.

Runs the full 13-query workload end-to-end (SODA pipeline + evaluation
against the gold standards) and prints the reproduced Table 3 next to
the paper's published values.  The benchmark measures one representative
query (Q2.1) end to end including evaluation.
"""

from repro.core.evaluation import evaluate_sql
from repro.experiments.reporting import format_table3
from repro.experiments.runner import ExperimentRunner
from repro.experiments.workload import query_by_id


def test_table3_full_workload(experiment_outcomes, warehouse, benchmark):
    query = query_by_id("2.1")
    runner = ExperimentRunner(warehouse=warehouse)
    benchmark(runner.run_query, query)

    print()
    print("Table 3: Precision and recall (measured vs paper)")
    print(format_table3(experiment_outcomes))

    by_id = {o.query.qid: o for o in experiment_outcomes}
    # headline shape assertions (see EXPERIMENTS.md for the discussion)
    assert by_id["1.0"].best.precision == 1.0
    assert by_id["2.1"].best.recall == 0.2
    assert by_id["9.0"].best.is_zero
    assert 0 < by_id["5.0"].best.precision < 1


def test_table3_single_statement_evaluation(warehouse, benchmark):
    query = query_by_id("3.1")
    sql = (
        "SELECT * FROM organizations, parties "
        "WHERE organizations.id = parties.id "
        "AND organizations.org_nm LIKE '%credit suisse%'"
    )
    metrics = benchmark(evaluate_sql, warehouse.database, sql, query.gold)
    print(f"\nQ3.1 best statement: P={metrics.precision} R={metrics.recall}")
    assert metrics.precision == 1.0
