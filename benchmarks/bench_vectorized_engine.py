"""Vectorized batch engine vs. the row-at-a-time volcano engine.

Correctness gate first: the full operator matrix must produce
byte-identical ``ResultSet``s in both execution modes.  Then the
headline measurement: a 50k-row filter + hash join + group-by
aggregation workload must run at least **3x faster** vectorized —
the per-row closure/iterator overhead this PR removes is the dominant
cost of the row engine.  All measurements are written to
``BENCH_engine.json`` (workload -> wall-time + speedup) so the perf
trajectory is tracked across PRs.

Run with::

    pytest benchmarks/bench_vectorized_engine.py -q -s
"""

import json
import random
import time
from pathlib import Path

import pytest

from bench_utils import speedup_floor
from repro.sqlengine.database import Database
from repro.sqlengine.parser import parse_select

FACT_ROWS = 50_000
DIM_ROWS = 200
STATUSES = ["NEW", "OPEN", "HELD", "DONE"]

#: the headline workload: filter two columns, hash join the dimension,
#: aggregate per region with three accumulators, sort the groups
HEADLINE_SQL = (
    "SELECT d.region, count(*), sum(f.amount), avg(f.qty) "
    "FROM facts f, dims d "
    "WHERE f.dim_id = d.id AND f.status = 'DONE' AND f.amount > 2500 "
    "GROUP BY d.region ORDER BY sum(f.amount) DESC"
)

SECONDARY_WORKLOADS = {
    "filter_scan": (
        "SELECT f.id, f.amount FROM facts f "
        "WHERE f.status = 'DONE' AND f.amount > 7500"
    ),
    "join_project": (
        "SELECT f.id, d.name FROM facts f, dims d WHERE f.dim_id = d.id"
    ),
    "distinct_sort": (
        "SELECT DISTINCT f.status, f.qty FROM facts f "
        "ORDER BY f.status, f.qty LIMIT 100"
    ),
}

#: must match in both modes before any timing matters
OPERATOR_MATRIX = [
    "SELECT * FROM dims",
    "SELECT f.id FROM facts f WHERE f.amount BETWEEN 100 AND 200",
    "SELECT f.id FROM facts f WHERE f.status IN ('DONE', 'HELD') LIMIT 50",
    "SELECT f.id FROM facts f WHERE f.status LIKE 'D%' LIMIT 50",
    "SELECT count(*), min(amount), max(amount) FROM facts",
    "SELECT status, count(*) FROM facts GROUP BY status "
    "HAVING count(*) > 1 ORDER BY count(*) DESC",
    "SELECT d.region, f.status, count(*) FROM facts f, dims d "
    "WHERE f.dim_id = d.id GROUP BY d.region, f.status "
    "ORDER BY 3 DESC, 1, 2 LIMIT 10",
    "SELECT d.name, f.amount FROM dims d "
    "LEFT JOIN facts f ON d.id = f.dim_id AND f.amount > 9900 "
    "ORDER BY d.name, f.amount LIMIT 40",
    "SELECT DISTINCT status FROM facts ORDER BY status",
    "SELECT CASE WHEN amount > 5000 THEN 'hi' ELSE 'lo' END, count(*) "
    "FROM facts GROUP BY 1 ORDER BY 1",
    "SELECT id FROM facts WHERE qty IS NULL",
    "SELECT f.id FROM facts f WHERE f.amount > 9000 "
    "UNION SELECT d.id FROM dims d WHERE d.id < 5",
]

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def make_db(mode: str) -> Database:
    rng = random.Random(7)
    db = Database(execution_mode=mode)
    db.create_table(
        "dims",
        [("id", "INT"), ("name", "TEXT"), ("region", "TEXT")],
        primary_key=["id"],
    )
    db.create_table(
        "facts",
        [("id", "INT"), ("dim_id", "INT"), ("amount", "REAL"),
         ("status", "TEXT"), ("qty", "INT")],
        primary_key=["id"],
    )
    db.insert_rows(
        "dims",
        [(i, f"dim {i}", f"region {i % 10}") for i in range(DIM_ROWS)],
    )
    db.insert_rows(
        "facts",
        [
            (
                i,
                rng.randrange(DIM_ROWS),
                float(rng.randrange(1, 10_000)),
                STATUSES[i % 4],
                None if i % 97 == 0 else rng.randrange(100),
            )
            for i in range(FACT_ROWS)
        ],
    )
    return db


@pytest.fixture(scope="module")
def row_db():
    return make_db("row")


@pytest.fixture(scope="module")
def batch_db():
    return make_db("batch")


def _best_time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _measure(row_db: Database, batch_db: Database, sql: str) -> dict:
    select = parse_select(sql)
    row_plan = row_db.planner.prepare(select)
    batch_plan = batch_db.planner.prepare(select)
    row_rs = row_plan.execute()
    batch_rs = batch_plan.execute()
    assert batch_rs.columns == row_rs.columns
    assert batch_rs.rows == row_rs.rows
    row_s = _best_time(row_plan.execute)
    batch_s = _best_time(batch_plan.execute)
    return {
        "row_s": round(row_s, 6),
        "batch_s": round(batch_s, 6),
        "speedup": round(row_s / batch_s, 2),
    }


class TestOperatorMatrixParity:
    @pytest.mark.parametrize("sql", OPERATOR_MATRIX)
    def test_byte_identical_result_sets(self, row_db, batch_db, sql):
        row_rs = row_db.execute(sql)
        batch_rs = batch_db.execute(sql)
        assert batch_rs.columns == row_rs.columns
        assert batch_rs.rows == row_rs.rows


class TestVectorizedSpeedup:
    def test_headline_workload_3x_and_report(self, row_db, batch_db):
        report = {
            "fact_rows": FACT_ROWS,
            "dim_rows": DIM_ROWS,
            "workloads": {},
        }
        headline = _measure(row_db, batch_db, HEADLINE_SQL)
        report["workloads"]["filter_join_aggregate"] = headline
        for name, sql in SECONDARY_WORKLOADS.items():
            report["workloads"][name] = _measure(row_db, batch_db, sql)

        BENCH_OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

        print("\nvectorized engine vs row engine "
              f"({FACT_ROWS} fact rows):")
        for name, numbers in report["workloads"].items():
            print(
                f"  {name:22s} row {numbers['row_s'] * 1e3:7.1f} ms   "
                f"batch {numbers['batch_s'] * 1e3:7.1f} ms   "
                f"({numbers['speedup']:.2f}x)"
            )
        print(f"  -> {BENCH_OUTPUT.name} written")

        floor = speedup_floor(3.0)
        assert headline["speedup"] >= floor, (
            f"filter+join+aggregate must be >= {floor}x vectorized, got "
            f"{headline['speedup']}x"
        )
        # the secondary workloads must never regress below the row engine
        # (BENCH_SPEEDUP_MIN < 1 relaxes this on jittery shared runners)
        secondary_floor = speedup_floor(1.0)
        for name, numbers in report["workloads"].items():
            assert numbers["speedup"] > secondary_floor, (name, numbers)
