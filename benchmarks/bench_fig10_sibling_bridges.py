"""Figure 10 — bridge tables between inheritance siblings.

The associate_employment table bridges the individuals/organizations
siblings of the party inheritance.  For Q5.0 ("customers names") SODA
routes the sibling join through this bridge instead of producing two
separate queries — the paper's documented low-precision failure.  The
bench reproduces the routing and the degraded metrics.
"""

from repro.core.evaluation import evaluate_sql
from repro.core.input_patterns import parse_query
from repro.core.ranking import rank
from repro.experiments.workload import query_by_id

QUERY = "customers names"


def test_fig10_bridge_routing(soda, benchmark):
    lookup_result = soda._lookup.run(parse_query(QUERY))
    best = rank(lookup_result, top_n=1)[0]
    tables_result = benchmark(soda._tables.run, best.interpretation)

    print()
    print(f"Fig. 10 — Q5.0 join routing for {QUERY!r}:")
    for join in tables_result.joins:
        print(f"  {join.condition_sql()}")

    assert "associate_employment" in tables_result.tables
    conditions = {join.condition_sql() for join in tables_result.joins}
    assert "associate_employment.indiv_id = individuals.id" in conditions
    assert "associate_employment.org_id = organizations.id" in conditions
    # the second sibling lost its parent join (mutually exclusive children
    # cannot both join the parent in one statement)
    assert "organizations.id = parties.id" not in conditions


def test_fig10_degraded_precision(soda, warehouse, benchmark):
    query = query_by_id("5.0")
    result = soda.search(query.text, execute=False)

    def evaluate_best():
        best = None
        for statement in result.statements:
            metrics = evaluate_sql(
                warehouse.database, statement.sql, query.gold,
                estimated_rows=statement.estimated_rows,
            )
            if best is None or (metrics.precision, metrics.recall) > (
                best.precision, best.recall
            ):
                best = metrics
        return best

    best = benchmark(evaluate_best)
    print(f"\nQ5.0 best statement: P={best.precision:.2f} R={best.recall:.2f} "
          f"(paper: P=0.12 R=0.56)")
    assert 0 < best.precision < 1
    assert 0 < best.recall < 1
