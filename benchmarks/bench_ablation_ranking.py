"""Ablation — ranking strategies (the paper's Section 6.3 discussion).

The paper uses the simple location heuristic and points at "more
sophisticated ranking algorithms such as BLINKS" as future work.  This
bench compares the default *location* ranking with the *specificity*
strategy (ambiguous terms discounted) on the workload: for each query,
the rank at which the first correct statement (P, R > 0) appears.
"""

import pytest

from repro.core.evaluation import evaluate_sql
from repro.core.soda import Soda, SodaConfig
from repro.experiments.workload import WORKLOAD


def first_correct_rank(soda, query, database) -> "int | None":
    result = soda.search(query.text, execute=False)
    for position, statement in enumerate(result.statements, start=1):
        metrics = evaluate_sql(
            database, statement.sql, query.gold,
            estimated_rows=statement.estimated_rows,
        )
        if metrics.is_positive:
            return position
    return None


def test_ranking_strategy_comparison(warehouse, benchmark):
    location = Soda(warehouse, SodaConfig(ranking="location"))
    specificity = Soda(warehouse, SodaConfig(ranking="specificity"))

    benchmark(location.search, "Sara given name", False)

    print()
    print("Rank of first correct statement (lower is better):")
    print(f"{'Q':6s} {'location':>10s} {'specificity':>12s}")
    summary = {"location": 0, "specificity": 0, "answered": 0}
    for query in WORKLOAD:
        rank_location = first_correct_rank(location, query, warehouse.database)
        rank_specificity = first_correct_rank(
            specificity, query, warehouse.database
        )
        print(f"{query.qid:6s} {str(rank_location):>10s} "
              f"{str(rank_specificity):>12s}")
        if rank_location is not None and rank_specificity is not None:
            summary["location"] += rank_location
            summary["specificity"] += rank_specificity
            summary["answered"] += 1
    print(f"total over {summary['answered']} answered queries: "
          f"location={summary['location']}, "
          f"specificity={summary['specificity']}")
    # both strategies must answer the same queries; ordering may differ
    assert summary["answered"] >= 10
