"""Microbenchmarks for the relational-engine substrate.

Not a paper artifact, but the substrate's performance bounds the whole
harness (the paper's end-to-end times were dominated by SQL execution).
Measures parse, filter scan, hash join and aggregation throughput at
several data sizes.
"""

import random

import pytest

from repro.sqlengine.database import Database
from repro.sqlengine.parser import parse_select


def make_db(rows: int) -> Database:
    rng = random.Random(7)
    db = Database()
    db.create_table(
        "facts",
        [("id", "INT"), ("dim_id", "INT"), ("amount", "REAL"),
         ("status", "TEXT")],
        primary_key=["id"],
    )
    db.create_table(
        "dims", [("id", "INT"), ("name", "TEXT")], primary_key=["id"]
    )
    db.insert_rows(
        "dims", [(i, f"dim {i}") for i in range(max(10, rows // 10))]
    )
    statuses = ["NEW", "OPEN", "DONE"]
    db.insert_rows(
        "facts",
        [
            (
                i,
                rng.randrange(max(10, rows // 10)),
                float(rng.randrange(1, 10_000)),
                statuses[i % 3],
            )
            for i in range(rows)
        ],
    )
    return db


@pytest.fixture(scope="module", params=[1_000, 10_000])
def sized_db(request):
    return request.param, make_db(request.param)


def test_parse_throughput(benchmark):
    sql = (
        "SELECT count(*), dims.name FROM facts, dims "
        "WHERE facts.dim_id = dims.id AND facts.status = 'DONE' "
        "GROUP BY dims.name ORDER BY count(*) DESC LIMIT 10"
    )
    benchmark(parse_select, sql)


def test_filter_scan(sized_db, benchmark):
    rows, db = sized_db
    result = benchmark(
        db.execute, "SELECT id FROM facts WHERE amount > 5000"
    )
    print(f"\n{rows} rows -> {len(result.rows)} filtered")
    assert 0 < len(result.rows) < rows


def test_hash_join(sized_db, benchmark):
    rows, db = sized_db
    result = benchmark(
        db.execute,
        "SELECT count(*) FROM facts, dims WHERE facts.dim_id = dims.id",
    )
    assert result.rows[0][0] == rows


def test_aggregation(sized_db, benchmark):
    rows, db = sized_db
    result = benchmark(
        db.execute,
        "SELECT status, sum(amount), count(*) FROM facts GROUP BY status",
    )
    assert sum(count for __, __, count in result.rows) == rows


def test_order_limit(sized_db, benchmark):
    rows, db = sized_db
    result = benchmark(
        db.execute,
        "SELECT id, amount FROM facts ORDER BY amount DESC LIMIT 10",
    )
    amounts = [amount for __, amount in result.rows]
    assert amounts == sorted(amounts, reverse=True)
