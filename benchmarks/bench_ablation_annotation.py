"""Ablation — metadata repair (the paper's Section 5.3.1 war story).

The Q2.x recall loss is caused by a bi-temporal historization join key
missing from the schema graph.  The paper's remedy: "the schema graph
needs to be annotated with join relationships that reflect bi-temporal
historization.  Note that SODA provides a very flexible way of
incorporating these changes."  This bench measures Q2.2 before and after
annotating the missing join at runtime.
"""

import pytest

from repro.core.evaluation import evaluate_sql
from repro.core.soda import Soda
from repro.experiments.workload import query_by_id
from repro.warehouse.minibank import build_minibank


def best_metrics(soda, query):
    result = soda.search(query.text, execute=False)
    best = None
    for statement in result.statements:
        metrics = evaluate_sql(
            soda.warehouse.database, statement.sql, query.gold,
            estimated_rows=statement.estimated_rows,
        )
        if best is None or (metrics.precision, metrics.recall) > (
            best.precision, best.recall
        ):
            best = metrics
    return best


def test_annotation_repairs_recall(benchmark):
    query = query_by_id("2.2")
    wh = build_minibank(seed=42, scale=1.0)

    before = best_metrics(Soda(wh), query)
    wh.annotate_join("j_indiv_name_hist")
    after = benchmark(best_metrics, Soda(wh), query)

    print()
    print("Metadata-repair ablation (Q2.2 'Sara given name'):")
    print(f"  before annotation: P={before.precision:.2f} R={before.recall:.2f}")
    print(f"  after  annotation: P={after.precision:.2f} R={after.recall:.2f}")
    assert before.recall == pytest.approx(0.2)
    assert after.recall == 1.0
    assert after.precision == 1.0


def test_ignore_annotation_disables_bridge(benchmark):
    wh = build_minibank(seed=42, scale=1.0)
    wh.ignore_join("j_assoc_indiv")
    wh.ignore_join("j_assoc_org")
    soda = Soda(wh)
    result = benchmark(soda.search, "customers names", False)
    assert result.best is not None
    print(f"\nwith ignored sibling bridge: {result.best.sql[:90]}")
    assert "associate_employment" not in result.best.statement.tables
