"""Figure 3 — the metadata graph and relational data.

Builds the finbank metadata graph (DBpedia -> ontologies -> conceptual
-> logical -> physical -> base data) and prints the per-layer node
counts; benchmarks graph construction and inverted-index build.
"""

from repro.index.inverted import InvertedIndex
from repro.warehouse.graphbuilder import build_metadata_graph, graph_statistics
from repro.warehouse.minibank import build_definition


def test_fig3_graph_layers(benchmark):
    definition = build_definition()
    graph = benchmark(build_metadata_graph, definition)
    stats = graph_statistics(graph)
    print()
    print("Fig. 3 — metadata graph layers (node counts):")
    for key in (
        "dbpedia_terms", "ontology_terms", "business_terms",
        "conceptual_entities", "conceptual_attributes",
        "logical_entities", "logical_attributes",
        "physical_tables", "physical_columns",
        "join_nodes", "inheritance_nodes", "triples",
    ):
        print(f"  {key:24s} {stats[key]}")
    assert stats["dbpedia_terms"] > 0
    assert stats["ontology_terms"] > 0
    assert stats["physical_tables"] == 21


def test_fig3_base_data_connection(warehouse, benchmark):
    # the base data connects to the metadata via table/column names; the
    # inverted index realises the BASE DATA box of Fig. 3
    index = benchmark(InvertedIndex.build, warehouse.database.catalog)
    summary = index.size_summary()
    print()
    print(f"inverted index: {summary}")
    assert summary["indexed_values"] > 0
