"""Scale sweep — SODA analysis time vs warehouse size.

The paper reports that the lookup product grows with ambiguity while the
remaining steps are "linear in the size of the meta-data".  This bench
sweeps (a) the data scale of the finbank warehouse and (b) the schema
scale of the synthetic generator, and reports SODA analysis times.
"""

import pytest

from repro.core.soda import Soda, SodaConfig
from repro.warehouse.graphbuilder import build_metadata_graph
from repro.warehouse.minibank import build_minibank
from repro.warehouse.synthetic import SyntheticConfig, generate_definition

QUERY = "customers Zurich financial instruments"


@pytest.mark.parametrize("scale", [0.25, 0.5, 1.0, 2.0])
def test_data_scale_sweep(scale, benchmark):
    warehouse = build_minibank(seed=42, scale=scale)
    soda = Soda(warehouse, SodaConfig())
    result = benchmark(soda.search, QUERY, False)
    rows = sum(warehouse.row_counts().values())
    print(f"\nscale {scale}: {rows} rows, complexity {result.complexity}")
    assert result.complexity == 2  # ambiguity is schema-, not data-driven


@pytest.mark.parametrize("factor", [0.1, 0.25, 0.5, 1.0])
def test_schema_scale_sweep(factor, benchmark):
    definition = generate_definition(SyntheticConfig().scaled(factor))
    graph = benchmark(build_metadata_graph, definition)
    print(
        f"\nschema factor {factor}: "
        f"{definition.schema_statistics()['physical_tables']} tables, "
        f"{len(graph)} triples"
    )
    assert len(graph) > 0
