"""Figure 4 — the five-step SODA pipeline.

Runs a representative query through the pipeline and prints the per-step
wall-clock breakdown (lookup, rank, tables, filters, SQL, execute);
benchmarks the full pipeline.
"""

QUERY = "customers Zurich financial instruments"


def test_fig4_step_breakdown(soda, benchmark):
    result = benchmark(soda.search, QUERY)
    timings = result.timings
    print()
    print(f"Fig. 4 — pipeline steps for {QUERY!r}:")
    rows = [
        ("1 lookup (entry points)", timings.lookup),
        ("2 rank and top N", timings.rank),
        ("3 tables (patterns + joins)", timings.tables),
        ("4 filters", timings.filters),
        ("5 SQL generation", timings.sql),
        ("execute (snippets)", timings.execute),
    ]
    for label, seconds in rows:
        print(f"  {label:30s} {seconds * 1000:8.2f} ms")
    print(f"  {'SODA total (steps 1-5)':30s} {timings.soda_total * 1000:8.2f} ms")
    assert timings.soda_total > 0
    assert result.statements
