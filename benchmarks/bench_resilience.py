"""Resilience benchmarks: load shedding under saturation + deadlines.

PR 10's serving-resilience claim, locked as a benchmark: when offered
load runs at ~2x what the admission gate can carry, the server **sheds
the excess with 429s** instead of queueing unboundedly, and the p99
latency of the *accepted* requests stays bounded by the knobs (queue
wait + one slot's service time), no matter how hard the clients hammer.
A second measurement shows a request deadline cancelling a real search
cooperatively: the structured 503 arrives in a fraction of the time the
full search would have taken.

Saturation is deterministic, not hopeful: a
:class:`~repro.resilience.faults.ServingFaultInjector` pins per-request
service time, so "2x capacity" is arithmetic, not luck.  Results land
in ``BENCH_resilience.json``.  Timing floors relax under
``BENCH_SPEEDUP_MIN`` (noisy CI); the shed/answered correctness asserts
stay hard.  Run with::

    pytest benchmarks/bench_resilience.py -q -s
"""

import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from bench_utils import speedup_floor
from repro.core.soda import Soda, SodaConfig
from repro.resilience.faults import ServingFaultInjector
from repro.server import SodaServer
from repro.sqlengine.config import DEFAULT_SEGMENT_ROWS, EngineConfig
from repro.warehouse.minibank import build_minibank

pytestmark = pytest.mark.stress

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

#: pinned per-request service time on the engine pool (seconds)
SERVICE_S = 0.05
MAX_INFLIGHT = 2
QUEUE_DEPTH = 2
QUEUE_TIMEOUT_MS = 200.0
#: 2x saturation: twice as many always-busy clients as the gate can
#: hold (in flight + queued)
CLIENT_THREADS = 2 * (MAX_INFLIGHT + QUEUE_DEPTH)
REQUESTS_PER_CLIENT = 8

#: the hard bound on an accepted request: its queue wait is capped at
#: QUEUE_TIMEOUT_MS, then one service slot — plus generous slack for
#: the interpreter and the loopback stack
ACCEPTED_P99_BOUND_S = 1.0

RESULTS: dict = {}


@pytest.fixture(scope="module")
def resilience_soda():
    warehouse = build_minibank(
        seed=42,
        scale=0.25,
        engine_config=EngineConfig(segment_rows=DEFAULT_SEGMENT_ROWS),
    )
    return Soda(warehouse, SodaConfig())


def _request(base: str, path: str):
    started = time.perf_counter()
    try:
        with urllib.request.urlopen(base + path, timeout=60) as response:
            status = response.status
            payload = json.loads(response.read())
    except urllib.error.HTTPError as exc:
        status, payload = exc.code, json.loads(exc.read())
    return status, payload, time.perf_counter() - started


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class TestLoadSheddingUnderSaturation:
    def test_2x_saturation_sheds_and_bounds_accepted_p99(
        self, resilience_soda
    ):
        faults = ServingFaultInjector(delay_s=SERVICE_S)
        server = SodaServer(
            resilience_soda,
            port=0,
            workers=MAX_INFLIGHT,
            max_inflight=MAX_INFLIGHT,
            queue_depth=QUEUE_DEPTH,
            queue_timeout_ms=QUEUE_TIMEOUT_MS,
            faults=faults,
        )
        server.start_background()
        base = f"http://127.0.0.1:{server.port}"
        # warm the result cache so engine time is the injected delay,
        # making the saturation arithmetic exact
        status, __, __elapsed = _request(base, "/search?q=Zurich&limit=2")
        assert status == 200

        outcomes: list = []
        lock = threading.Lock()

        def client():
            for __ in range(REQUESTS_PER_CLIENT):
                outcome = _request(base, "/search?q=Zurich&limit=2")
                with lock:
                    outcomes.append(outcome)

        started = time.perf_counter()
        threads = [
            threading.Thread(target=client) for __ in range(CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        try:
            status, payload, __elapsed = _request(base, "/healthz")
            assert status == 200
            admission = payload["admission"]
        finally:
            server.stop()

        statuses = sorted({status for status, __, __e in outcomes})
        accepted = [e for status, __, e in outcomes if status == 200]
        shed = [
            (status, payload)
            for status, payload, __ in outcomes
            if status == 429
        ]
        total = CLIENT_THREADS * REQUESTS_PER_CLIENT
        assert len(outcomes) == total

        # hard correctness: overload degrades into 200s and 429s only —
        # no 500s, no hung requests, and every shed response is
        # structured with a Retry-After hint in the body
        assert set(statuses) <= {200, 429}, statuses
        assert shed, "2x saturation produced no shedding"
        assert accepted, "the server shed everything"
        for __, payload in shed:
            assert payload["kind"] == "load_shed"
            assert payload["reason"] in ("queue_full", "queue_timeout")
        # the admission gate agrees with the client-side tally
        assert admission["shed"] >= len(shed)

        p50 = _percentile(accepted, 0.50)
        p99 = _percentile(accepted, 0.99)
        RESULTS["saturation"] = {
            "client_threads": CLIENT_THREADS,
            "requests": total,
            "max_inflight": MAX_INFLIGHT,
            "queue_depth": QUEUE_DEPTH,
            "queue_timeout_ms": QUEUE_TIMEOUT_MS,
            "service_s": SERVICE_S,
            "wall_seconds": wall,
            "accepted": len(accepted),
            "shed_429": len(shed),
            "shed_fraction": len(shed) / total,
            "accepted_p50_seconds": p50,
            "accepted_p99_seconds": p99,
            "accepted_p99_bound_seconds": ACCEPTED_P99_BOUND_S,
        }
        print(
            f"\n2x saturation: {total} requests from {CLIENT_THREADS} "
            f"clients in {wall:.2f}s — {len(accepted)} accepted, "
            f"{len(shed)} shed (429), accepted p50 {p50 * 1e3:.0f} ms, "
            f"p99 {p99 * 1e3:.0f} ms (bound {ACCEPTED_P99_BOUND_S:.1f}s)"
        )
        # the locked claim: accepted-request p99 is bounded by the
        # admission knobs.  BENCH_SPEEDUP_MIN < 1 widens the bound on
        # noisy runners; the shed/no-500 asserts above never relax.
        bound = ACCEPTED_P99_BOUND_S / speedup_floor(1.0)
        assert p99 <= bound, (
            f"accepted p99 {p99:.3f}s exceeds the {bound:.3f}s bound — "
            "requests are queueing unboundedly"
        )
        # written here too so a skipped deadline test still leaves the
        # saturation lock on disk
        BENCH_OUTPUT.write_text(json.dumps(RESULTS, indent=2) + "\n")


class TestDeadlineCancellation:
    def test_deadline_503_beats_running_the_search_out(
        self, resilience_soda
    ):
        server = SodaServer(resilience_soda, port=0, workers=2)
        server.start_background()
        base = f"http://127.0.0.1:{server.port}"
        try:
            # an uncached multi-term search (~8ms of pipeline at this
            # scale) with a 2ms budget: the pipeline must unwind
            # cooperatively, not run to completion
            status, payload, elapsed = _request(
                base, "/search?q=customers+Zurich+gold&timeout_ms=2"
            )
            if status == 200:  # a machine fast enough to beat 2ms
                pytest.skip("search completed inside the 2ms budget")
            assert status == 503
            assert payload["kind"] == "deadline_exceeded"
            assert payload["where"]
            # the same text without a deadline still works (clean unwind)
            status, __, full_elapsed = _request(
                base, "/search?q=customers+Zurich+gold&timeout_ms=60000"
            )
            assert status == 200
        finally:
            server.stop()
        RESULTS["deadline"] = {
            "timeout_ms": 2,
            "cancelled_after_seconds": elapsed,
            "full_search_seconds": full_elapsed,
            "where": payload["where"],
        }
        print(
            f"deadline: 2ms budget cancelled at {payload['where']!r} in "
            f"{elapsed * 1e3:.0f} ms (full search: "
            f"{full_elapsed * 1e3:.0f} ms)"
        )

        BENCH_OUTPUT.write_text(json.dumps(RESULTS, indent=2) + "\n")
        print(f"  -> {BENCH_OUTPUT.name} written")
