"""Table 5 — qualitative comparison with DBExplorer, DISCOVER, BANKS,
SQAK and Keymantic.

All five baselines run the 13-query workload; marks are derived from the
measured outcomes and printed next to the paper's published marks.  The
benchmark measures one full baseline sweep (DBExplorer over the
workload).
"""

import pytest

from repro.baselines.capabilities import (
    capability_matrix,
    default_systems,
    evaluate_system,
    format_table5,
    soda_evaluation,
)
from repro.warehouse.minibank import build_minibank


@pytest.fixture(scope="module")
def bench_warehouse():
    # BANKS builds a tuple-level data graph; a reduced scale keeps the
    # benchmark honest without dominating the suite
    return build_minibank(seed=42, scale=0.5)


def test_table5_capability_matrix(bench_warehouse, benchmark):
    systems = default_systems(bench_warehouse)
    dbexplorer = systems[0]

    benchmark(evaluate_system, dbexplorer, bench_warehouse)

    evaluations = [
        evaluate_system(system, bench_warehouse) for system in systems
    ]
    from repro.experiments.runner import ExperimentRunner

    outcomes = ExperimentRunner(warehouse=bench_warehouse).run_all()
    evaluations.append(soda_evaluation(outcomes))

    matrix = capability_matrix(evaluations)
    print()
    print("Table 5: Qualitative comparison (measured [paper])")
    print(format_table5(matrix, [e.system for e in evaluations]))

    # headline shape: SODA is the only system supporting every query type
    def supported(mark):
        return mark in ("X", "(X)")

    from repro.baselines.capabilities import QUERY_TYPE_ROWS

    assert all(
        supported(matrix[(tag, "SODA")]) for __, tag in QUERY_TYPE_ROWS
    )
    assert matrix[("B", "SQAK")] == "NO"
    assert not supported(matrix[("P", "Keymantic")])
    assert not supported(matrix[("P", "BANKS")])
