"""Serving-path benchmarks: snapshot warm-start and batch search.

The paper amortizes a 24-hour index build across many interactive
searches.  This bench shows the reproduction doing the same at its own
scale, with hard assertions:

* **warm-start** — loading a saved index snapshot must be at least 5x
  faster than the cold build (full catalog scan + classification
  build) it replaces;
* **batch serving** — ``Soda.search_many`` over a realistic 20-query
  batch (duplicates included, as in real traffic) must beat the same
  queries issued as N sequential ``search`` calls, while returning
  statement-for-statement identical results;
* **incremental maintenance** — applying an insert delta through the
  write-through maintainer must beat rebuilding the index from
  scratch.

Run with::

    pytest benchmarks/bench_search_serving.py -q -s
"""

import time

import pytest

from bench_utils import speedup_floor
from repro.core.soda import Soda, SodaConfig
from repro.index.inverted import InvertedIndex
from repro.index.snapshot import load_snapshot
from repro.warehouse.graphbuilder import build_classification_index
from repro.warehouse.minibank import build_minibank

#: a zipf-ish 20-query serving batch over 8 distinct texts
UNIQUE_QUERIES = [
    "Zurich",
    "Sara Guttinger",
    "customers Zurich",
    "gold agreement",
    "private customers family name",
    "Credit Suisse",
    "customers names",
    "trade order",
]
BATCH = [
    UNIQUE_QUERIES[i % len(UNIQUE_QUERIES) if i < 8 else i % 4]
    for i in range(20)
]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _fingerprints(results) -> list:
    return [
        [(s.sql, round(s.score, 12)) for s in result.statements]
        for result in results
    ]


@pytest.fixture(scope="module")
def big_warehouse():
    """Large enough that index-build work dominates fixed costs."""
    return build_minibank(seed=42, scale=6.0)


class TestWarmStart:
    def test_snapshot_warm_start_at_least_5x_faster(
        self, big_warehouse, tmp_path
    ):
        warehouse = big_warehouse
        warehouse.classification_index()  # materialize the default variant
        path = tmp_path / "snapshot.json"
        warehouse.save_index_snapshot(path)

        def cold_build():
            InvertedIndex.build(warehouse.database.catalog)
            build_classification_index(warehouse.graph)

        def warm_start():
            load_snapshot(path)

        cold = _best_of(cold_build, 5)
        warm = _best_of(warm_start, 5)
        speedup = cold / warm
        print(
            f"\nwarm-start: cold build {cold * 1e3:.1f} ms, "
            f"snapshot load {warm * 1e3:.1f} ms ({speedup:.1f}x)"
        )
        # correctness: the loaded index equals the built one
        loaded = load_snapshot(path)
        assert loaded.inverted.size_summary() == (
            warehouse.inverted.size_summary()
        )
        assert speedup >= speedup_floor(5.0)

    def test_snapshot_loads_what_was_saved(self, big_warehouse, tmp_path):
        path = tmp_path / "roundtrip.json"
        big_warehouse.save_index_snapshot(path)
        loaded = load_snapshot(path)
        assert loaded.inverted.lookup("zurich") == (
            big_warehouse.inverted.lookup("zurich")
        )


class TestBatchServing:
    def test_search_many_beats_sequential_on_20_query_batch(self, warehouse):
        sequential_soda = Soda(warehouse, SodaConfig())
        batched_soda = Soda(warehouse, SodaConfig())

        # parity first (also warms both engines equally)
        expected = _fingerprints(
            [sequential_soda.search(text) for text in BATCH]
        )
        assert _fingerprints(batched_soda.search_many(BATCH)) == expected

        def sequential():
            soda = Soda(warehouse, SodaConfig())
            for text in BATCH:
                soda.search(text)

        def batched():
            soda = Soda(warehouse, SodaConfig())
            soda.search_many(BATCH)

        sequential_time = _best_of(sequential, 3)
        batched_time = _best_of(batched, 3)
        speedup = sequential_time / batched_time
        print(
            f"\nbatch serving: {len(BATCH)} queries "
            f"({len(set(BATCH))} unique) — sequential "
            f"{sequential_time * 1e3:.0f} ms "
            f"({len(BATCH) / sequential_time:.0f} q/s), search_many "
            f"{batched_time * 1e3:.0f} ms "
            f"({len(BATCH) / batched_time:.0f} q/s), {speedup:.2f}x"
        )
        assert speedup > speedup_floor(1.0)

    def test_warm_engine_throughput(self, warehouse):
        """Second batch over the same engine: memoized steps dominate."""
        soda = Soda(warehouse, SodaConfig())
        soda.search_many(BATCH)  # warm
        warm_time = _best_of(lambda: soda.search_many(BATCH), 3)
        print(
            f"\nwarm engine: {len(BATCH)} queries in "
            f"{warm_time * 1e3:.0f} ms ({len(BATCH) / warm_time:.0f} q/s)"
        )
        assert warm_time < 5.0  # sanity bound, not a race


class TestIncrementalMaintenance:
    def test_write_through_beats_rebuild(self, big_warehouse):
        warehouse = big_warehouse
        delta = [
            ("XX%03d" % i, f"Synthetic Currency {i}") for i in range(50)
        ]

        def incremental():
            index = InvertedIndex.from_dict(warehouse.inverted.to_dict())
            for code, name in delta:
                index.add("currencies", "currency_nm", name)

        def rebuild():
            InvertedIndex.build(warehouse.database.catalog)

        incremental_time = _best_of(incremental, 3)
        rebuild_time = _best_of(rebuild, 3)
        print(
            f"\nmaintenance: {len(delta)}-row delta applied in "
            f"{incremental_time * 1e3:.1f} ms vs full rebuild "
            f"{rebuild_time * 1e3:.1f} ms"
        )
        assert rebuild_time / incremental_time > speedup_floor(1.0)
