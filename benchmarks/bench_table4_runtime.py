"""Table 4 — query complexity and runtime.

Prints the measured complexity / result-count / runtime table next to
the paper's values, and benchmarks the SODA analysis time (generation
only, without executing the generated SQL) for every workload query.

Absolute times differ from the paper by construction (their backend was
a 220 GB Oracle installation); the preserved *shape* is that SODA's
analysis is a small fraction of total end-to-end time.
"""

import pytest

from repro.experiments.reporting import format_table4
from repro.experiments.workload import WORKLOAD


def test_table4_report(experiment_outcomes, benchmark):
    rendered = benchmark(format_table4, experiment_outcomes)
    print()
    print("Table 4: Query complexity and runtime (measured vs paper)")
    print(rendered)
    for outcome in experiment_outcomes:
        assert outcome.complexity >= 1


@pytest.mark.parametrize("query", WORKLOAD, ids=[q.qid for q in WORKLOAD])
def test_soda_analysis_time(soda, query, benchmark):
    result = benchmark(soda.search, query.text, False)
    assert result.complexity >= 1


def test_soda_fraction_of_total(experiment_outcomes, benchmark):
    # the paper: "the overhead for the SODA query processing is a small
    # fraction compared to the total query execution time" — on our
    # in-memory scale we assert generation stays within the same order
    total_soda = benchmark(
        lambda: sum(o.soda_seconds for o in experiment_outcomes)
    )
    total_exec = sum(o.execute_seconds for o in experiment_outcomes)
    print(f"\nSODA analysis: {total_soda:.3f}s, evaluation/execution: "
          f"{total_exec:.3f}s")
    assert total_soda < 10.0
