"""Figures 1 & 2 — conceptual vs logical running-example schema.

Prints both layers of the finbank warehouse (the paper's mini-bank) and
benchmarks definition construction + validation.
"""

from repro.warehouse.minibank import build_definition


def test_fig1_fig2_schema_layers(benchmark):
    definition = benchmark(build_definition)

    print()
    print("Fig. 1 — conceptual schema (business layer):")
    for entity in definition.conceptual_entities:
        print(f"  {entity.name:22s} attrs: {', '.join(entity.attributes)}")

    print()
    print("Fig. 2 — logical schema (with inheritance and splits):")
    for entity in definition.logical_entities:
        refines = f" -> refines {entity.refines}" if entity.refines else ""
        print(f"  {entity.name:32s}{refines}")
    for inheritance in definition.inheritances:
        if inheritance.layer == "logical":
            print(
                f"  X {inheritance.parent} <- "
                f"{', '.join(inheritance.children)} (mutually exclusive)"
            )

    # Fig. 2's key refinements: addresses split out, transactions split
    logical_names = {e.name for e in definition.logical_entities}
    assert "Addresses" in logical_names
    assert "FinancialInstrumentTransactions" in logical_names
    assert "MoneyTransactions" in logical_names
