"""Figure 6 — output of the Tables step.

For the Fig. 5 query the paper reports exactly seven tables: parties,
individuals, organizations, addresses, financial_instruments,
fi_contains_sec and securities.  This bench reproduces the set and
benchmarks the tables step (traversal + pattern matching + join
selection).
"""

from repro.core.input_patterns import parse_query
from repro.core.ranking import rank

QUERY = "customers Zurich financial instruments"

FIG6_TABLES = {
    "parties", "individuals", "organizations", "addresses",
    "financial_instruments", "fi_contains_sec", "securities",
}


def test_fig6_seven_tables(soda, benchmark):
    lookup_result = soda._lookup.run(parse_query(QUERY))
    best = rank(lookup_result, top_n=1)[0]

    tables_result = benchmark(soda._tables.run, best.interpretation)

    print()
    print(f"Fig. 6 — tables step output for {QUERY!r}:")
    for name in tables_result.tables:
        print(f"  {name}")
    assert set(tables_result.tables) == FIG6_TABLES
