"""Quickstart: keyword search over a data warehouse in a few lines.

Builds the *finbank* warehouse (the paper's running example: a mini-bank
with customers buying and selling financial instruments), points SODA at
it, and runs the three queries the paper opens with:

1. Find all financial instruments of customers in Zurich.
2. What is the total trading volume?
3. What is the address of Sara Guttinger?

Run with:  python examples/quickstart.py
"""

from repro import Soda, build_minibank


def show(result, limit=3):
    print(f"  complexity: {result.complexity}, "
          f"{len(result.statements)} SQL statement(s) generated")
    for position, statement in enumerate(result.statements[:limit], start=1):
        marker = " [disconnected]" if statement.disconnected else ""
        print(f"  #{position} (score {statement.score:.2f}){marker}")
        print(f"     {statement.sql}")
        if statement.snippet is not None and statement.snippet.rows:
            first = statement.snippet.rows[0]
            print(f"     first tuple: {first}")
    print()


def main():
    print("building the finbank warehouse (schema, data, metadata graph)...")
    warehouse = build_minibank(seed=42, scale=1.0)
    stats = warehouse.statistics()
    print(
        f"  {stats['physical_tables']} tables, {stats['total_rows']} rows, "
        f"{stats['graph_triples']} metadata triples\n"
    )

    soda = Soda(warehouse)

    print("Query: 'customers Zurich financial instruments'")
    show(soda.search("customers Zurich financial instruments"))

    print("Query: 'Top 10 trading volume customers'")
    show(soda.search("Top 10 trading volume customers"))

    print("Query: 'Sara Guttinger'")
    show(soda.search("Sara Guttinger"))


if __name__ == "__main__":
    main()
