"""Run the same queries through SODA and all five related systems.

Reproduces the experience behind the paper's Table 5: DBExplorer,
DISCOVER and BANKS handle base-data keywords; SQAK only speaks
aggregates; Keymantic works metadata-only; SODA handles everything by
exploiting the metadata graph.

Run with:  python examples/baseline_comparison.py
"""

from repro import Soda, build_minibank
from repro.baselines import default_systems

QUERIES = (
    "Credit Suisse",                                # base data (B)
    "private customers family name",                # ontology + schema (D/S/I)
    "trade order period > date(2011-09-01)",        # predicate (P)
    "sum(investments) group by (currency)",         # aggregate (A)
)


def main():
    warehouse = build_minibank(seed=42, scale=0.5)
    soda = Soda(warehouse)
    systems = default_systems(warehouse)

    for text in QUERIES:
        print("=" * 72)
        print(f"Query: {text}")
        print("=" * 72)

        for system in systems:
            answer = system.answer(text)
            if not answer.supported:
                print(f"  {system.name:12s} NO  — {answer.note}")
            elif not answer.sqls:
                print(f"  {system.name:12s} (no statement) — {answer.note}")
            else:
                caveat = f"  [caveat: {answer.caveat}]" if answer.caveat else ""
                print(f"  {system.name:12s} {answer.sqls[0][:80]}{caveat}")

        result = soda.search(text, execute=False)
        if result.best is not None:
            print(f"  {'SODA':12s} {result.best.sql[:80]}")
        else:
            print(f"  {'SODA':12s} (no statement)")
        print()


if __name__ == "__main__":
    main()
