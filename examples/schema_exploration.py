"""Exploratory use of SODA (the paper's Section 5.3.2 "war stories").

The feedback groups in the paper used SODA beyond plain search:

* spotting data items spread across several tables via the inverted
  index ("Credit Suisse" lives in organizations *and* in agreements),
* exploring which entities relate to which (the tables/joins SODA picks
  reveal schema structure),
* diagnosing schema/data-quality issues (unjoinable tables expose
  missing join annotations — the bi-temporal historization gap).

Run with:  python examples/schema_exploration.py
"""

from repro import Soda, build_minibank
from repro.experiments.reporting import format_table1


def main():
    warehouse = build_minibank(seed=42, scale=1.0)
    soda = Soda(warehouse)

    print("=" * 72)
    print("Warehouse overview (cf. the paper's Table 1)")
    print("=" * 72)
    print(format_table1(warehouse.definition.schema_statistics()))
    print()

    # ------------------------------------------------------------------
    print("=" * 72)
    print("Ambiguity discovery: where does 'Credit Suisse' live?")
    print("=" * 72)
    result = soda.search("Credit Suisse")
    for slot in result.lookup.slots:
        for entry in slot.alternatives:
            print(f"  {entry.describe()}")
    print(f"\nSODA generates {len(result.statements)} alternative statements;")
    print("the analyst picks the intended one from the result page:")
    for statement in result.statements[:4]:
        print(f"  - {statement.sql[:100]}")
    print()

    # ------------------------------------------------------------------
    print("=" * 72)
    print("Relationship exploration: how do customers reach instruments?")
    print("=" * 72)
    result = soda.search("customers Zurich financial instruments",
                         execute=False)
    best = result.best
    print("tables SODA discovered (the paper's Fig. 6):")
    for name in best.tables_result.tables:
        print(f"  {name}")
    print("join conditions on the direct paths (Fig. 9):")
    for join in best.tables_result.joins:
        print(f"  {join.condition_sql()}")
    print()

    # ------------------------------------------------------------------
    print("=" * 72)
    print("Data-quality diagnosis: unjoinable tables")
    print("=" * 72)
    result = soda.search("Sara given name", execute=False)
    for statement in result.statements:
        if statement.disconnected:
            components = statement.tables_result.components
            print(f"  statement over {statement.statement.tables} is "
                  f"DISCONNECTED: {components}")
            print("  -> the individual_name_hist join key is not annotated")
            print("     in the schema graph (bi-temporal historization gap);")
            print("     annotating j_indiv_name_hist would fix Q2.x recall.")
            break
    print()

    # ------------------------------------------------------------------
    print("=" * 72)
    print("Schema browser: dive deeper into one table / one term")
    print("=" * 72)
    from repro.warehouse import SchemaBrowser

    browser = SchemaBrowser(warehouse)
    print(browser.describe_table("individual_name_hist").render())
    print()
    print(browser.describe_term("financial instruments").render())
    print()
    print("unannotated joins (data-quality report):")
    for join in browser.unannotated_joins():
        print(f"  {join.name}: {join.left_table}.{join.left_column} = "
              f"{join.right_table}.{join.right_column}")
    print()

    # ------------------------------------------------------------------
    print("=" * 72)
    print("Classification index: what terms do business users get?")
    print("=" * 72)
    terms = soda.classification.terms()
    print(f"  {len(terms)} searchable metadata terms, e.g.:")
    for term in terms[:15]:
        print(f"    {term}")


if __name__ == "__main__":
    main()
