"""Porting SODA to your own warehouse.

The paper's pitch: *"To port SODA to a different data warehouse involves
adjusting the patterns to the specific structures used in that data
warehouse"* — while the algorithm stays the same.  This example builds a
small retail warehouse from scratch (three schema layers, one ontology,
one inheritance, one metadata-defined filter), loads data, and runs SODA
against it without touching any finbank code.

Run with:  python examples/custom_warehouse.py
"""

import datetime

from repro import Soda, Warehouse
from repro.warehouse import (
    ConceptualEntity,
    DbpediaEntry,
    FilterSpec,
    Inheritance,
    JoinRelationship,
    LogicalEntity,
    Ontology,
    OntologyTerm,
    PhysicalColumn,
    PhysicalTable,
    WarehouseDefinition,
)


def column(name, sql_type, refines=None, pk=False):
    return PhysicalColumn(name=name, sql_type=sql_type, refines=refines,
                          primary_key=pk)


def build_retail_definition() -> WarehouseDefinition:
    return WarehouseDefinition(
        name="retail",
        conceptual_entities=[
            ConceptualEntity("Products", attributes=("product name", "price")),
            ConceptualEntity("Stores", attributes=("store name", "city")),
            ConceptualEntity("Sales", attributes=("sale date", "revenue")),
        ],
        logical_entities=[
            LogicalEntity("Products", refines="Products",
                          attributes=("product name", "price")),
            LogicalEntity("FoodProducts", label="food products",
                          attributes=("product name",)),
            LogicalEntity("ElectronicsProducts", label="electronics products",
                          attributes=("product name",)),
            LogicalEntity("Stores", refines="Stores",
                          attributes=("store name", "city")),
            LogicalEntity("Sales", refines="Sales",
                          attributes=("sale date", "revenue")),
        ],
        physical_tables=[
            PhysicalTable(
                "prod_td", refines="Products",
                columns=(
                    column("id", "INT", pk=True),
                    column("prod_nm", "TEXT", refines=("Products",
                                                       "product name")),
                    column("price", "REAL", refines=("Products", "price")),
                ),
            ),
            PhysicalTable(
                "food_td", refines="FoodProducts",
                columns=(
                    column("id", "INT", pk=True),
                    column("organic_fl", "TEXT"),
                ),
            ),
            PhysicalTable(
                "elec_td", refines="ElectronicsProducts",
                columns=(
                    column("id", "INT", pk=True),
                    column("voltage", "INT"),
                ),
            ),
            PhysicalTable(
                "store_td", refines="Stores",
                columns=(
                    column("id", "INT", pk=True),
                    column("store_nm", "TEXT", refines=("Stores", "store name")),
                    column("city_nm", "TEXT", refines=("Stores", "city")),
                ),
            ),
            PhysicalTable(
                "sales_td", refines="Sales",
                columns=(
                    column("id", "INT", pk=True),
                    column("prod_id", "INT"),
                    column("store_id", "INT"),
                    column("sale_dt", "DATE", refines=("Sales", "sale date")),
                    column("revenue", "REAL", refines=("Sales", "revenue")),
                ),
            ),
        ],
        join_relationships=[
            JoinRelationship("j_food_prod", "food_td", "id", "prod_td", "id",
                             kind="inheritance"),
            JoinRelationship("j_elec_prod", "elec_td", "id", "prod_td", "id",
                             kind="inheritance"),
            JoinRelationship("j_sales_prod", "sales_td", "prod_id",
                             "prod_td", "id"),
            JoinRelationship("j_sales_store", "sales_td", "store_id",
                             "store_td", "id"),
        ],
        inheritances=[
            Inheritance("inh_products", "prod_td", ("food_td", "elec_td"),
                        layer="physical"),
        ],
        ontologies=[
            Ontology(
                name="retail_ontology",
                terms=(
                    OntologyTerm("premium products",
                                 classifies=("logical:Products",),
                                 filter=FilterSpec("prod_td", "price", ">=",
                                                   500)),
                ),
            ),
        ],
        dbpedia=[
            DbpediaEntry("shop", synonym_of=("logical:Stores",)),
        ],
    )


def populate(db):
    db.insert_rows("prod_td", [
        (1, "Espresso Beans", 18.5),
        (2, "Alpine Cheese", 24.0),
        (3, "Laptop Pro 15", 1899.0),
        (4, "Noise Cancelling Headphones", 349.0),
        (5, "Studio Display", 1299.0),
    ])
    db.insert_rows("food_td", [(1, "Y"), (2, "Y")])
    db.insert_rows("elec_td", [(3, 230), (4, 5), (5, 230)])
    db.insert_rows("store_td", [
        (10, "Main Station Shop", "Zurich"),
        (11, "Old Town Shop", "Bern"),
    ])
    db.insert_rows("sales_td", [
        (100, 1, 10, datetime.date(2011, 5, 2), 55.5),
        (101, 3, 10, datetime.date(2011, 5, 3), 1899.0),
        (102, 2, 11, datetime.date(2011, 6, 1), 48.0),
        (103, 5, 11, datetime.date(2011, 6, 9), 1299.0),
    ])


def main():
    definition = build_retail_definition()
    warehouse = Warehouse.build(definition, populate=populate)
    soda = Soda(warehouse)

    for text in (
        "Zurich",                               # base data
        "premium products",                     # metadata-defined filter
        "sum(revenue) group by (city)",         # aggregation over a join
        "food products",                        # inheritance child + parent
        "shop",                                 # DBpedia synonym
    ):
        result = soda.search(text)
        print(f"Query: {text!r}")
        if result.best is None:
            print("  (no statement)\n")
            continue
        print(f"  {result.best.sql}")
        if result.best.snippet is not None:
            for row in result.best.snippet.rows[:4]:
                print(f"    {row}")
        print()


if __name__ == "__main__":
    main()
