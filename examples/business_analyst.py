"""Business-analyst scenarios from Section 4.4 of the paper.

Shows every input-pattern family on realistic analyst questions:

* keyword filters (Query 1: "Sara Guttinger"),
* comparison operators and dates (Query 2: salary/birthday),
* metadata-defined predicates ("wealthy customers" — the threshold lives
  in the domain ontology, not in the query),
* aggregations with grouping (Query 3: sum of amounts per trading day),
* entity rankings (Query 4 / top-N trading volume).

Run with:  python examples/business_analyst.py
"""

from repro import Soda, build_minibank


def headline(text):
    print("=" * 72)
    print(text)
    print("=" * 72)


def run(soda, text, rows=5):
    print(f"\nSODA query:  {text}")
    result = soda.search(text)
    best = result.best
    if best is None:
        print("  (no result)")
        return
    print(f"generated SQL:\n  {best.sql}")
    if best.snippet is not None:
        print(f"result snippet ({len(best.snippet.rows)} of up to 20 tuples):")
        print(f"  columns: {best.snippet.columns}")
        for row in best.snippet.rows[:rows]:
            print(f"  {row}")
    print()


def main():
    warehouse = build_minibank(seed=42, scale=1.0)
    soda = Soda(warehouse)

    headline("1. Keyword filters (paper Query 1)")
    run(soda, "Sara Guttinger")

    headline("2. Comparison operators and dates (paper Query 2)")
    run(soda, "salary >= 200000")
    run(soda, "birthday = date(1981-04-23)")

    headline("3. Metadata-defined predicates: wealthy customers")
    print("\nThe ontology defines: wealthy customer := salary >= 1'000'000.")
    print("The analyst never types the threshold — SODA reads it from the")
    print("metadata graph (the paper's flagship business-term example).")
    run(soda, "wealthy customers")

    headline("4. Aggregation with grouping (paper Query 3)")
    run(soda, "sum (amount) group by (transaction date)", rows=3)
    run(soda, "sum(investments) group by (currency)", rows=6)

    headline("5. Entity ranking (paper Section 4.4.2)")
    run(soda, "Top 10 trading volume customers", rows=10)

    headline("6. Time-range analysis (paper Q6.0)")
    run(soda, "trade order period > date(2011-09-01)", rows=3)


if __name__ == "__main__":
    main()
